#![warn(missing_docs)]
//! # rational-fair-consensus
//!
//! Umbrella crate for the reproduction of *Rational Fair Consensus in the
//! GOSSIP Model* (Clementi, Gualà, Proietti, Scornavacca; IPDPS 2017).
//!
//! This crate re-exports the whole workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`gossip_net`] — the synchronous GOSSIP network simulator (push/pull
//!   rounds, topologies, permanent faults, message metering).
//! * [`rfc_core`] — protocol `P`: Voting-Intention, Commitment, Voting,
//!   Find-Min, Coherence, Verification; plus good-execution auditing and
//!   the async-GOSSIP extension.
//! * [`adversary`] — rational coalitions and the deviation-strategy suite
//!   used to test the whp t-strong equilibrium claim.
//! * [`baselines`] — LOCAL-model all-to-all fair election, naive gossip
//!   min-id election, push/pull rumor spreading, 3-majority dynamics.
//! * [`rfc_stats`] — χ², total-variation distance, Wilson intervals,
//!   log-fits.
//! * [`experiments`] — the parallel Monte-Carlo harness regenerating every
//!   experiment in `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use rational_fair_consensus::prelude::*;
//!
//! // 64 agents, 3 colors split 32/16/16, no faults, honest everyone.
//! let cfg = RunConfig::builder(64)
//!     .colors(vec![32, 16, 16])
//!     .gamma(3.0)
//!     .build();
//! let report = run_protocol(&cfg, 0xC0FFEE);
//! match report.outcome {
//!     Outcome::Consensus(c) => println!("winning color: {c}"),
//!     Outcome::Fail => println!("protocol failed"),
//! }
//! ```

pub use adversary;
pub use baselines;
pub use experiments;
pub use gossip_net;
pub use rfc_core;
pub use rfc_stats;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use gossip_net::prelude::*;
    pub use rfc_core::prelude::*;
}
