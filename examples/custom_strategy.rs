//! Writing your own deviation strategy against protocol `P`.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```
//!
//! Theorem 7 quantifies over *every* restricted protocol for the
//! coalition; the built-in suite covers the proof's attack surfaces, but
//! the point of the library is that anyone can implement a new strategy
//! and measure it. This example builds a **self-promoter** from scratch:
//! an agent that follows the protocol except that during Find-Min it
//! never adopts anyone else's certificate and always advertises its own
//! (a mild, "deniable" censorship). The harness then compares it against
//! honest play.
//!
//! ## The `Custom` escape hatch
//!
//! Built-in agents live in dedicated [`AgentSlot`] variants — a
//! monomorphic enum the network dispatches through a jump table. An
//! out-of-tree strategy cannot add a variant, so its `build` returns
//! [`AgentSlot::Custom`] (a `Box<dyn ConsensusAgent>`): *that slot* pays
//! one boxed indirect call per delivery, while every honest agent in the
//! same run still rides the enum fast path. Note the deliveries are
//! by-reference (`&Msg`); clone only what you keep.
//!
//! Prediction: self-promotion cannot help. The deviator's own `k` is
//! still uniform (it cannot choose it), honest agents learn the true
//! minimum from each other, and if its stubborn certificate ever survives
//! into Coherence alongside the real minimum, the mismatch fails the run.

use rational_fair_consensus::adversary::coalition::Coalition;
use rational_fair_consensus::adversary::prelude::*;
use rational_fair_consensus::gossip_net::agent::{Agent, Op, RoundCtx};
use rational_fair_consensus::gossip_net::ids::AgentId;
use rational_fair_consensus::rfc_core::agent_plane::AgentSlot;
use rational_fair_consensus::rfc_core::engine::{ConsensusAgent, ProtocolCore, Role};
use rational_fair_consensus::rfc_core::msg::Msg;
use rational_fair_consensus::rfc_core::params::Phase;
use rational_fair_consensus::rfc_core::sharing::Shared;

/// The strategy object: a factory for deviating agents.
#[derive(Debug)]
struct SelfPromoter;

impl Strategy for SelfPromoter {
    fn name(&self) -> &'static str {
        "self-promoter"
    }
    fn description(&self) -> &'static str {
        "never adopt other certificates; always advertise one's own"
    }
    fn build(&self, core: ProtocolCore, _coalition: Coalition) -> AgentSlot {
        // Out-of-tree agent ⇒ the boxed escape hatch. Everything else in
        // the network keeps jump-table dispatch.
        AgentSlot::custom(SelfPromoterAgent { core })
    }
}

/// The agent: honest everywhere except certificate adoption/advertising.
struct SelfPromoterAgent {
    core: ProtocolCore,
}

impl Agent<Msg> for SelfPromoterAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            Phase::Coherence => {
                // Push own certificate, not the network minimum.
                self.core.ensure_certificate();
                let own = Shared::clone(self.core.own_cert.as_ref().unwrap());
                let peer = ctx
                    .topology
                    .sample_peer(self.core.id, &mut self.core.rng);
                Some(Op::push(peer, Msg::Cert(own)))
            }
            _ => self.core.act_honest(ctx),
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        if matches!(query, Msg::QMinCert) && self.core.phase(ctx.round) >= Phase::FindMin {
            // Advertise own certificate, whatever we have seen.
            self.core.ensure_certificate();
            return Some(Msg::Cert(Shared::clone(self.core.own_cert.as_ref().unwrap())));
        }
        self.core.on_pull_honest(from, query, ctx)
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        // Ignore Coherence mismatches against ourselves; accept votes.
        if let (Phase::Coherence, Msg::Cert(_)) = (self.core.phase(ctx.round), msg) {
            return;
        }
        self.core.on_push_honest(from, msg, ctx)
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        if self.core.phase(ctx.round) == Phase::FindMin {
            return; // the defining move: never adopt
        }
        self.core.on_reply_honest(from, reply, ctx)
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for SelfPromoterAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("self-promoter")
    }
}

fn main() {
    let n = 64;
    let trials = 200;
    println!("custom strategy 'self-promoter' vs honest play on K_{n} ({trials} paired trials)\n");
    for t in [1usize, 4, 8] {
        let spec = AttackSpec {
            strategy: &SelfPromoter,
            t,
            selection: CoalitionSelection::Random,
            chi: 1.0,
        };
        let rep = run_equilibrium(n, 3.0, &spec, trials, 0xC057);
        println!(
            "t = {t}: honest win {:.3}, deviating win {:.3}, dev fails {:.3}, Δ utility {:+.3} → {}",
            rep.honest.coalition_color_wins as f64 / rep.honest.trials as f64,
            rep.deviating.coalition_color_wins as f64 / rep.deviating.trials as f64,
            rep.deviating.fail_rate(),
            rep.utility_delta(),
            if rep.no_significant_gain() {
                "no gain"
            } else {
                "GAIN (!)"
            }
        );
    }
    println!(
        "\nas predicted: self-promotion either changes nothing (its own k loses the\n\
         lottery anyway) or survives into Coherence and burns the run to ⊥ — it\n\
         cannot manufacture wins. Implementing a strategy = one Agent impl + one\n\
         Strategy impl returning AgentSlot::custom(...); the harness does the rest,\n\
         and only the deviating slots pay for dynamic dispatch."
    );
}
