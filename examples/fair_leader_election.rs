//! Fair leader election — the paper's motivating special case.
//!
//! ```sh
//! cargo run --release --example fair_leader_election
//! ```
//!
//! Every agent supports its own id as its "color", so the consensus
//! winner *is* the elected leader and fairness means every active agent
//! is elected with probability exactly `1/|A|`. We run many elections,
//! print the win histogram, and χ²-test it against uniform — then repeat
//! with a 25% faulty minority to show faulty agents are never elected
//! while the rest stay uniform.

use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_stats::chi_square_gof;
use rational_fair_consensus::rfc_core::election::{election_config_with_faults, result_of};
use rational_fair_consensus::gossip_net::fault::Placement;
use rational_fair_consensus::rfc_core::run_protocol;

fn main() {
    let n = 32;
    let trials = 1600u64;

    println!("fair leader election on K_{n}, {trials} elections\n");
    let cfg = election_config(n, 3.0);
    let mut wins = vec![0u64; n];
    let mut fails = 0u64;
    for seed in 0..trials {
        match elect_leader(&cfg, seed) {
            ElectionResult::Leader(id) => wins[id as usize] += 1,
            ElectionResult::Failed => fails += 1,
        }
    }
    let decided: u64 = wins.iter().sum();
    println!("fails: {fails} / {trials}");
    println!("win counts (expected ≈ {:.1} each):", decided as f64 / n as f64);
    for (id, chunk) in wins.chunks(8).enumerate() {
        let row: Vec<String> = chunk.iter().map(|w| format!("{w:>4}")).collect();
        println!("  agents {:>2}..{:>2}: {}", id * 8, id * 8 + 7, row.join(" "));
    }
    let expected = vec![decided as f64 / n as f64; n];
    let gof = chi_square_gof(&wins, &expected);
    println!(
        "χ² = {:.2} (df {}), p = {:.3} → {}",
        gof.statistic,
        gof.df,
        gof.p_value,
        if gof.consistent_at(0.01) { "uniform ✓" } else { "BIASED ✗" }
    );

    // Now with a faulty low-id quarter.
    println!("\nwith α = 0.25 (agents 0..8 faulty), γ(α)-sized:");
    let cfg = election_config_with_faults(n, 4.0, 0.25, Placement::LowIds);
    let mut wins = vec![0u64; n];
    let mut fails = 0u64;
    for seed in 0..trials {
        match result_of(&run_protocol(&cfg, seed)) {
            ElectionResult::Leader(id) => wins[id as usize] += 1,
            ElectionResult::Failed => fails += 1,
        }
    }
    let faulty_wins: u64 = wins[..8].iter().sum();
    println!("fails: {fails} / {trials}");
    println!("faulty agents elected: {faulty_wins} (must be 0)");
    let active: Vec<u64> = wins[8..].to_vec();
    let decided: u64 = active.iter().sum();
    let expected = vec![decided as f64 / active.len() as f64; active.len()];
    let gof = chi_square_gof(&active, &expected);
    println!(
        "active-agent uniformity: p = {:.3} → {}",
        gof.p_value,
        if gof.consistent_at(0.01) { "uniform over A ✓" } else { "BIASED ✗" }
    );
}
