//! Quickstart: one run of the rational fair consensus protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a complete network of 64 agents with three colors split
//! 32/16/16, runs protocol `P` (Clementi et al., IPDPS 2017), and prints
//! the outcome together with the communication metrics the paper's
//! Theorem 4 bounds: `O(log n)` rounds, `O(log² n)`-bit messages,
//! `O(n log³ n)` total bits.

use rational_fair_consensus::prelude::*;

fn main() {
    let n = 64;
    let cfg = RunConfig::builder(n)
        .colors(vec![32, 16, 16]) // initial support: c0 = 1/2, c1 = c2 = 1/4
        .gamma(3.0) // q = 3·log2(n) rounds per phase
        .build();

    println!("rational fair consensus on K_{n} (γ = 3, m = n³)\n");
    for seed in 0..10 {
        let report = run_protocol(&cfg, seed);
        match report.outcome {
            Outcome::Consensus(color) => println!(
                "seed {seed}: consensus on color {color} (winner: agent {:?}, {} rounds)",
                report.winner.unwrap(),
                report.rounds
            ),
            Outcome::Fail => println!("seed {seed}: protocol failed (⊥)"),
        }
    }

    // Communication accounting for one run.
    let report = run_protocol(&cfg, 42);
    let m = &report.metrics;
    println!("\ncommunication (seed 42):");
    println!("  rounds               {}", m.rounds);
    println!("  messages             {}", m.messages_sent);
    println!("  total bits           {}", m.bits_sent);
    println!("  largest message      {} bits (O(log² n) = {} ballpark)", m.max_message_bits, {
        let l = (n as f64).log2();
        (l * l) as u64
    });
    println!("  max active links     {} (GOSSIP bound: n = {n})", m.max_active_links);
    for (name, tally) in &m.phases {
        println!(
            "    {name:<12} {:>8} msgs  {:>10} bits  (max {} bits)",
            tally.messages, tally.bits, tally.max_message_bits
        );
    }

    // Fairness over many seeds: color 0 should win ≈ 1/2 of the time.
    let trials = 400;
    let mut wins = [0u32; 3];
    for seed in 0..trials {
        if let Outcome::Consensus(c) = run_protocol(&cfg, seed).outcome {
            wins[c as usize] += 1;
        }
    }
    println!("\nfairness over {trials} runs (target 0.50 / 0.25 / 0.25):");
    for (c, w) in wins.iter().enumerate() {
        println!("  color {c}: {:.3}", *w as f64 / trials as f64);
    }
}
