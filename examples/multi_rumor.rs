//! Multi-instance plane: two concurrent rumor votes over one network.
//!
//! ```sh
//! cargo run --release --example multi_rumor
//! ```
//!
//! Hosts two independent k-of-n rumor-vote instances on the same
//! 32-agent complete graph — one `High` priority, one `Low` — and runs
//! them through `rfc_core::run_plane`. Every message an agent emits
//! toward a peer in a round rides one `Batch` (the first part's
//! instance tag is elided, so a lone instance pays zero wire overhead),
//! yet each instance keeps its own phase clock, RNG/loss streams, and
//! payload meters. The second half of the example re-runs instance 0
//! *alone* and prints the co-hosting-invariance witness: its report is
//! identical with or without the co-hosted instance.

use rfc_core::instances::InstanceReport;
use rfc_core::runner::RunConfig;
use rfc_core::{run_plane, InstanceKind, InstancePlan, InstanceSpec, Priority};

fn describe(report: &InstanceReport) -> String {
    format!(
        "kind {:?}  priority {:?}  decided {}  rounds-to-decision {:?}  \
         msgs {}  payload bits {}",
        report.spec.kind,
        report.spec.priority,
        report.decided,
        report.rounds_to_decision,
        report.metrics.messages_sent,
        report.metrics.bits_sent,
    )
}

fn main() {
    let n = 32;
    let k = 24; // an agent decides once it has collected k of n votes
    let plan = InstancePlan {
        specs: Vec::new(),
        send_budget: None,
    }
    .with_spec(InstanceSpec::new(InstanceKind::RumorVote { k }).priority(Priority::High))
    .with_spec(InstanceSpec::new(InstanceKind::RumorVote { k }).priority(Priority::Low));
    let cfg = RunConfig::builder(n).gamma(3.0).instances(plan).build();

    println!("two concurrent {k}-of-{n} rumor votes on K_{n}\n");
    let plane = run_plane(&cfg, 7);
    for (j, inst) in plane.instances.iter().enumerate() {
        println!("instance {j}: {}", describe(inst));
    }
    println!(
        "\nengine: {} rounds, aggregate {} messages / {} bits \
         (aggregate − Σ payload = batch tag overhead: {} bits)",
        plane.rounds,
        plane.aggregate.messages_sent,
        plane.aggregate.bits_sent,
        plane.aggregate.bits_sent
            - plane.instances.iter().map(|i| i.metrics.bits_sent).sum::<u64>(),
    );

    // Co-hosting invariance: instance 0 run alone is *identical* —
    // per-instance RNG and loss streams are keyed by instance id, so a
    // co-hosted instance never perturbs a neighbor.
    let alone_plan = InstancePlan {
        specs: Vec::new(),
        send_budget: None,
    }
    .with_spec(InstanceSpec::new(InstanceKind::RumorVote { k }).priority(Priority::High));
    let alone = run_plane(&RunConfig::builder(n).gamma(3.0).instances(alone_plan).build(), 7);
    let same = format!("{:?}", alone.instances[0]) == format!("{:?}", plane.instances[0]);
    println!("\ninstance 0 alone vs co-hosted: reports identical = {same}");
    assert!(same, "co-hosting must not perturb instance 0");
}
