//! Run forensics: inspect one protocol execution round by round.
//!
//! ```sh
//! cargo run --release --example inspect_run
//! ```
//!
//! Uses the network's operation log and the good-execution audit to show
//! what actually happened on the wire: per-phase operation counts, the
//! vote-count distribution, the k-lottery outcome, and the verification
//! verdicts. Useful both as a debugging aid and as a worked tour of the
//! protocol's mechanics.

use rational_fair_consensus::gossip_net::OpKind;
use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_core::engine::ConsensusAgent;
use rational_fair_consensus::rfc_core::runner::{
    build_network, collect_report, drive_network,
};
use rational_fair_consensus::rfc_core::{HonestAgent, Params, ProtocolCore};

fn main() {
    let n = 24;
    let seed = 7;
    let cfg = RunConfig::builder(n)
        .gamma(3.0)
        .colors(vec![12, 8, 4])
        .record_ops(true)
        .build();
    let params = cfg.params();
    let q = params.q;

    let mut factory = |id,
                       params: Params,
                       color,
                       rng,
                       topo: &rational_fair_consensus::gossip_net::Topology| {
        let core = ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
        Box::new(HonestAgent::new(core)) as Box<dyn ConsensusAgent>
    };
    let mut net = build_network(&cfg, seed, &mut factory);
    drive_network(&mut net, &cfg);

    println!("protocol P on K_{n}, seed {seed}: q = {q}, m = n³ = {}\n", params.m);

    // Phase-by-phase wire activity from the op log.
    println!("{:<12} {:>8} {:>8} {:>10}", "phase", "pushes", "pulls", "unanswered");
    for (name, lo, hi) in [
        ("commitment", 0, q),
        ("voting", q, 2 * q),
        ("find-min", 2 * q, 3 * q),
        ("coherence", 3 * q, 4 * q),
    ] {
        let ops: Vec<_> = net.oplog().in_rounds(lo as u32, hi as u32).collect();
        let pushes = ops.iter().filter(|e| e.kind == OpKind::Push).count();
        let pulls = ops.iter().filter(|e| e.kind == OpKind::Pull).count();
        let silent = ops
            .iter()
            .filter(|e| e.kind == OpKind::PullUnanswered)
            .count();
        println!("{name:<12} {pushes:>8} {pulls:>8} {silent:>10}");
    }

    // The k-lottery: every agent's accumulated value, the winner starred.
    println!("\nthe k-lottery (k_u = Σ votes received mod m):");
    let mut ks: Vec<(u32, u64, usize)> = (0..n as u32)
        .map(|id| {
            let core = net.agent(id).core();
            (
                id,
                core.own_cert.as_ref().map(|c| c.k).unwrap_or(0),
                core.votes.len(),
            )
        })
        .collect();
    ks.sort_by_key(|&(_, k, _)| k);
    for (rank, (id, k, votes)) in ks.iter().take(5).enumerate() {
        let marker = if rank == 0 { "  ← minimum (the winner)" } else { "" };
        println!("  #{rank}: agent {id:>2}  k = {k:>14}  ({votes} votes){marker}");
    }
    println!("  … ({} agents total)", n);

    // Verification verdicts and the outcome.
    let report = collect_report(&net, &cfg);
    let audit = report.audit.as_ref().unwrap();
    println!("\naudit: votes/agent min {} mean {:.1} max {};  k distinct: {};  minima agree: {}",
        audit.votes_min, audit.votes_mean, audit.votes_max,
        audit.k_values_distinct, audit.minima_agree);
    match report.outcome {
        Outcome::Consensus(c) => println!(
            "outcome: consensus on color {c} (winner agent {}, initial color {})",
            report.winner.unwrap(),
            report.initial_colors[report.winner.unwrap() as usize]
        ),
        Outcome::Fail => {
            println!("outcome: ⊥  — failure kinds: {:?}", report.failure_histogram())
        }
    }
    println!(
        "wire totals: {} messages, {} bits, largest {} bits",
        report.metrics.messages_sent, report.metrics.bits_sent, report.metrics.max_message_bits
    );
}
