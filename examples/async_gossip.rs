//! Sequential (asynchronous) GOSSIP — the paper's second open problem.
//!
//! ```sh
//! cargo run --release --example async_gossip
//! ```
//!
//! In the sequential GOSSIP model only one uniformly-random agent wakes
//! per tick. Protocol `P` adapts by stretching each phase to
//! `slack·n·q` ticks so that every agent gets at least `q` activations
//! per phase w.h.p. — the protocol core itself is unchanged. This example
//! sweeps `slack`, showing graceful failure when activations are
//! under-provisioned and w.h.p. success from `slack = 2` on, and compares
//! the tick count against the synchronous round count.

use rational_fair_consensus::prelude::*;

fn main() {
    let n = 48;
    let gamma = 3.0;
    let trials = 40u64;
    let cfg = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![24, 24])
        .build();
    let q = cfg.params().q;

    println!("sequential GOSSIP on K_{n} (γ = {gamma}, q = {q}), {trials} trials per slack\n");
    println!("{:>6} {:>12} {:>12} {:>12}", "slack", "ticks", "sync rounds", "success");
    for slack in 1..=4usize {
        let ok = (0..trials)
            .filter(|&seed| {
                run_protocol_async(&cfg, seed, slack)
                    .outcome
                    .is_consensus()
            })
            .count();
        println!(
            "{slack:>6} {:>12} {:>12} {:>12.3}",
            4 * slack * n * q,
            4 * q,
            ok as f64 / trials as f64
        );
    }

    // One async run in detail.
    let report = run_protocol_async(&cfg, 7, 2);
    println!("\none run at slack = 2 (seed 7):");
    println!("  outcome         {:?}", report.outcome);
    println!("  ticks           {}", report.metrics.ticks);
    println!("  messages        {}", report.metrics.messages_sent);
    println!("  bits            {}", report.metrics.bits_sent);
    println!(
        "\nper-activation the protocol is unchanged; only the phase clock stretches\n\
         from q rounds to slack·n·q ticks (Θ(n log n) activations per phase)."
    );
}
