//! Coalition attacks: why the naive protocol falls and `P` stands.
//!
//! ```sh
//! cargo run --release --example coalition_attack
//! ```
//!
//! Part 1 rigs the *naive* min-badge gossip election with a single
//! cheater claiming badge 0 — it wins every run. Part 2 throws the whole
//! deviation suite (certificate forgery, vote rigging, adaptive spying,
//! play-dead, equivocation, censorship, spite) at protocol `P` with a
//! coalition of 8 of 64 agents and prints the equilibrium verdicts:
//! every attack either stays at the fair share or burns the run to `⊥`.

use rational_fair_consensus::adversary::prelude::*;
use rational_fair_consensus::baselines::naive_min_id::run_naive_election;

fn main() {
    // ── Part 1: the naive protocol is trivially rigged ──────────────
    let n = 64;
    println!("naive min-badge election on K_{n}, agent 13 claims badge 0:");
    let colors: Vec<u32> = (0..n as u32).collect();
    let mut cheater_wins = 0;
    let trials = 200;
    for seed in 0..trials {
        let run = run_naive_election(n, &colors, &[13], 3.0, seed);
        if run.winner.owner == 13 {
            cheater_wins += 1;
        }
    }
    println!(
        "  cheater won {cheater_wins}/{trials} runs (fair share would be {:.1}) — rigged.\n",
        trials as f64 / n as f64
    );

    // ── Part 2: the same greed against protocol P ────────────────────
    let t = 8;
    let trials = 120;
    println!(
        "protocol P on K_{n}: coalition of {t} (fair share {:.3}), {trials} paired trials per strategy:\n",
        t as f64 / n as f64
    );
    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>10}  verdict",
        "strategy", "honest win", "deviating win", "dev fails", "Δ utility"
    );
    for strategy in standard_attacks() {
        let spec = AttackSpec {
            strategy: strategy.as_ref(),
            t,
            selection: CoalitionSelection::Random,
            chi: 1.0,
        };
        let rep = run_equilibrium(n, 3.0, &spec, trials, 0xA77AC);
        let verdict = if rep.no_significant_gain() {
            "no gain"
        } else {
            "GAIN (!)"
        };
        println!(
            "{:<18} {:>14.3} {:>14.3} {:>10.3} {:>+10.3}  {}",
            rep.strategy,
            rep.honest.coalition_color_wins as f64 / rep.honest.trials as f64,
            rep.deviating.coalition_color_wins as f64 / rep.deviating.trials as f64,
            rep.deviating.fail_rate(),
            rep.utility_delta(),
            verdict
        );
    }
    println!("\nTheorem 7: P is a whp t-strong equilibrium for t = o(n / log n) —");
    println!("no strategy beats the fair share; forgeries turn losses into ⊥ (utility −χ).");
}
