//! Fault tolerance: sweeping the fault fraction α and sizing γ(α).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```
//!
//! The adversary permanently crashes αn agents before round 0 (worst
//! case placement — which, as the run shows, buys it nothing: the
//! protocol is id-symmetric). Theorem 4 promises consensus w.h.p. for
//! *any* constant α < 1 provided the phase budget constant γ grows like
//! γ(α) ~ 1/(1−α). We sweep α at fixed γ = 3 and at the Chernoff-sized
//! γ(α) and print both success-rate columns.

use rational_fair_consensus::gossip_net::fault::Placement;
use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_stats::gamma_for_fault_tolerance;

fn success_rate(n: usize, gamma: f64, alpha: f64, trials: u64) -> f64 {
    let cfg = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![n - n / 2, n / 2])
        .faults(alpha, Placement::Random { seed: 99 })
        .build();
    let ok = (0..trials)
        .filter(|&seed| run_protocol(&cfg, seed).outcome.is_consensus())
        .count();
    ok as f64 / trials as f64
}

fn main() {
    let n = 128;
    let trials = 60;
    println!("protocol P under αn worst-case permanent faults (n = {n}, {trials} trials/cell)\n");
    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>14}",
        "α", "γ fixed", "success", "γ(α)", "success"
    );
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9] {
        let adaptive = (gamma_for_fault_tolerance(alpha, 1.0) + 1.0).max(3.0);
        let s_fixed = success_rate(n, 3.0, alpha, trials);
        let s_adapt = success_rate(n, adaptive, alpha, trials);
        println!(
            "{alpha:>5.2} {:>12.2} {s_fixed:>14.3} {adaptive:>12.2} {s_adapt:>14.3}",
            3.0
        );
    }

    println!("\nplacement does not matter (α = 0.5, γ = 4):");
    for (name, placement) in [
        ("low ids", Placement::LowIds),
        ("high ids", Placement::HighIds),
        ("strided", Placement::Strided),
        ("random", Placement::Random { seed: 5 }),
    ] {
        let cfg = RunConfig::builder(n)
            .gamma(4.0)
            .colors(vec![64, 64])
            .faults(0.5, placement)
            .build();
        let ok = (0..trials)
            .filter(|&seed| run_protocol(&cfg, seed).outcome.is_consensus())
            .count();
        println!("  {name:<9} {:.3}", ok as f64 / trials as f64);
    }
    println!("\nTheorem 4: any constant α < 1 is tolerated with a suitable γ(α).");
}
