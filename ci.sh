#!/usr/bin/env bash
# CI entry point: the tier-1 verify line plus the targets that must not
# bitrot (benches, all seven examples, the experiment registry binary).
#
# Usage: ./ci.sh
# Env:   PROPTEST_CASES — optional cap on property-test cases (the vendored
#        proptest shim honors it; unset means per-suite defaults).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package: integration + doc tests)"
cargo test -q

echo "==> workspace tests (all member crates)"
cargo test --workspace -q

echo "==> tier-2: golden-run regression corpus (pinned seed->digest matrix)"
# Thread count pinned for a stable wall clock; the corpus itself is
# thread-independent (each row is one single-threaded run). Budget:
# the full matrix is ~15 debug-mode runs at n <= 48 — seconds, not
# minutes; if it ever creeps past ~60 s, shrink rows before raising
# the budget.
RUST_TEST_THREADS=2 cargo test -q --test golden_runs

echo "==> tier-2: sharded golden rows at RFC_THREADS=1,2,8 (digest must be identical at every count)"
# The sharded (PerAgent-discipline) corpus: each row runs once per
# listed thread count and the suite asserts all digests agree AND match
# the pinned capture — the staged engine's thread-invariance contract.
RFC_THREADS=1,2,8 RUST_TEST_THREADS=2 cargo test -q --test sharded_engine

echo "==> tier-2: checkpoint/resume equivalence corpus (static + sharded + equilibrium rows)"
# Every golden row snapshotted mid-run, restored, and run to completion
# must be bit-identical (digest, Metrics, op-log) to straight-through;
# sharded rows repeat at every RFC_THREADS count incl. cross-thread
# resume. Negative paths (truncated/corrupt/mismatched files) ride along.
RFC_THREADS=1,2,8 RUST_TEST_THREADS=2 cargo test -q --test checkpoint_resume

echo "==> tier-2: checkpoint/resume property sweep (random topology x adversity x snapshot round)"
cargo test -q --test checkpoint_prop

echo "==> benches compile"
cargo build --benches

echo "==> bench smoke: one-shot throughput run (round engine + trial fold)"
cargo bench -p rfc-bench --bench throughput

echo "==> bench smoke: dispatch head-to-head (boxed-dyn vs enum vs enum+arena)"
cargo bench -p rfc-bench --bench dispatch

echo "==> examples build (release)"
cargo build --release --examples

echo "==> experiment registry lists"
cargo run --release -q -p experiments --bin rfc-experiments -- list

echo "==> dynamics smoke: e15 --quick (churn / partition-heal / loss bursts)"
cargo run --release -q -p experiments --bin rfc-experiments -- e15 --quick >/dev/null

echo "==> staged-engine smoke: e16 --quick (intra-trial shard sweep + digest assert)"
cargo run --release -q -p experiments --bin rfc-experiments -- e16 --quick >/dev/null

echo "==> staged-engine speedup: e16 sharded >= monolithic at n=4096 (needs >1 core)"
# The tentpole claim of the SoA/parallel-ledger work: with real cores,
# two shards must beat one at n >= 4096 (below that the shard floor
# falls back to the monolithic engine by design), and with >= 4 cores
# four shards must too — the drained serial sections (sharded metering,
# scattered op log, scattered plan concat) are what keeps the curve
# from flattening. On a 1-core box the comparison is meaningless — all
# rows time-slice the same core and the sharded ones pay dispatch
# overhead — so it is skipped, documented here: the digest-equality
# assertions inside e16 still run everywhere.
if [ "$(nproc)" -ge 2 ]; then
    shard_list="1,2"; threads=2
    if [ "$(nproc)" -ge 4 ]; then shard_list="1,2,4"; threads=4; fi
    rm -rf target/e16-speedup
    cargo run --release -q -p experiments --bin rfc-experiments -- \
        e16 --sizes 4096 --shards "$shard_list" --threads "$threads" --json target/e16-speedup >/dev/null
    r1=$(grep -oE '\["4096","[0-9]+","1","[^"]+","[0-9.]+"' target/e16-speedup/e16_0.json | sed -E 's/.*"([0-9.]+)"$/\1/')
    r2=$(grep -oE '\["4096","[0-9]+","2","[^"]+","[0-9.]+"' target/e16-speedup/e16_0.json | sed -E 's/.*"([0-9.]+)"$/\1/')
    if [ -z "$r1" ] || [ -z "$r2" ]; then
        echo "FAIL: could not extract e16 rounds/s cells for the speedup check" >&2
        exit 1
    fi
    if ! awk -v mono="$r1" -v sharded="$r2" 'BEGIN { exit !(sharded >= mono) }'; then
        echo "FAIL: staged 2-shard run ($r2 rounds/s) is slower than monolithic ($r1 rounds/s) at n=4096" >&2
        exit 1
    fi
    echo "    speedup OK: n=4096 monolithic $r1 rounds/s -> 2 shards $r2 rounds/s"
    if [ "$(nproc)" -ge 4 ]; then
        r4=$(grep -oE '\["4096","[0-9]+","4","[^"]+","[0-9.]+"' target/e16-speedup/e16_0.json | sed -E 's/.*"([0-9.]+)"$/\1/')
        if [ -z "$r4" ]; then
            echo "FAIL: could not extract the e16 4-shard rounds/s cell" >&2
            exit 1
        fi
        if ! awk -v mono="$r1" -v sharded="$r4" 'BEGIN { exit !(sharded >= mono) }'; then
            echo "FAIL: staged 4-shard run ($r4 rounds/s) is slower than monolithic ($r1 rounds/s) at n=4096" >&2
            exit 1
        fi
        echo "    speedup OK: n=4096 monolithic $r1 rounds/s -> 4 shards $r4 rounds/s"
    else
        echo "    4-shard check skipped: $(nproc) core(s) < 4"
    fi
else
    echo "    skipped: $(nproc) core(s) — sharding cannot win without parallel hardware"
fi

echo "==> instance-plane smoke: e17 --quick (10^1..10^4 instance sweep + interference assert)"
# The run itself asserts: High-priority instances never rank behind Low
# under a send budget, and a consensus instance's report is identical
# with 0 vs 1000 co-hosted instances (per-instance stream independence).
cargo run --release -q -p experiments --bin rfc-experiments -- e17 --quick >/dev/null

echo "==> checkpoint/resume smoke: e16 --quick with --checkpoint-every, then --resume-from"
# Two full CLI invocations: the first writes a checkpoint file per row,
# the second restores each row from its file and runs it to completion.
# The digest column (16 hex chars per row) of both JSON outputs must be
# identical — the end-to-end resume seam, exercised through the binary
# rather than the library API.
rm -rf target/ckpt-smoke target/ckpt-json-a target/ckpt-json-b
cargo run --release -q -p experiments --bin rfc-experiments -- \
    e16 --quick --checkpoint-every 16 --checkpoint-dir target/ckpt-smoke \
    --json target/ckpt-json-a >/dev/null
cargo run --release -q -p experiments --bin rfc-experiments -- \
    e16 --quick --resume-from target/ckpt-smoke \
    --json target/ckpt-json-b >/dev/null
grep -oE '[0-9a-f]{16}' target/ckpt-json-a/e16_0.json > target/ckpt-smoke/digests-a
grep -oE '[0-9a-f]{16}' target/ckpt-json-b/e16_0.json > target/ckpt-smoke/digests-b
if ! diff -q target/ckpt-smoke/digests-a target/ckpt-smoke/digests-b >/dev/null; then
    echo "FAIL: resumed e16 digests differ from checkpointed straight run" >&2
    diff target/ckpt-smoke/digests-a target/ckpt-smoke/digests-b >&2 || true
    exit 1
fi
echo "    resume smoke OK: $(wc -l < target/ckpt-smoke/digests-a) row digests identical across the seam"

echo "==> node smoke: two rfc-node processes over a Unix socket must agree (outcome + digest)"
# The real-wire acceptance check: serve and join are *separate OS
# processes* talking through the codec frames on an actual socket. Both
# print "<mode> outcome=... digest=0x..."; consensus AND bit-identical
# digests are required. Loopback (in-process socketpair) rides along as
# the fallback diagnostic if the two-process form ever fails.
rm -f target/rfc-node-smoke.sock
cargo build --release -q -p rfc-node
./target/release/rfc-node serve --listen unix:target/rfc-node-smoke.sock \
    --n 16 --gamma 3.0 --seed 21 --slack 3 > target/rfc-node-serve.out &
serve_pid=$!
./target/release/rfc-node join --connect unix:target/rfc-node-smoke.sock \
    --n 16 --gamma 3.0 --seed 21 --slack 3 > target/rfc-node-join.out
wait "$serve_pid"
grep -q "outcome=Consensus" target/rfc-node-serve.out
grep -q "outcome=Consensus" target/rfc-node-join.out
digest_serve=$(grep -oE 'digest=0x[0-9a-f]+' target/rfc-node-serve.out)
digest_join=$(grep -oE 'digest=0x[0-9a-f]+' target/rfc-node-join.out)
if [ -z "$digest_serve" ] || [ "$digest_serve" != "$digest_join" ]; then
    echo "FAIL: rfc-node endpoints disagree (serve: ${digest_serve:-none}, join: ${digest_join:-none})" >&2
    cat target/rfc-node-serve.out target/rfc-node-join.out >&2
    exit 1
fi
echo "    node smoke OK: both processes $(grep -oE 'outcome=[A-Za-z()0-9]+' target/rfc-node-serve.out | head -1), $digest_serve"

echo "==> perf snapshot: e14/e16/e17 --quick + codec + serial -> fresh JSON (two captures for a best-of-2 gate)"
cargo run --release -q -p experiments --bin rfc-experiments -- e14 e16 e17 --quick --json target/bench-json >/dev/null
cargo run --release -q -p experiments --bin rfc-experiments -- e14 e16 e17 --quick --json target/bench-json2 >/dev/null
cargo run --release -q -p rfc-bench --bin rfc-bench -- codec target/bench-json/codec_0.json >/dev/null
cargo run --release -q -p rfc-bench --bin rfc-bench -- codec target/bench-json2/codec_0.json >/dev/null
cargo run --release -q -p rfc-bench --bin rfc-bench -- serial target/bench-json/serial_0.json >/dev/null
cargo run --release -q -p rfc-bench --bin rfc-bench -- serial target/bench-json2/serial_0.json >/dev/null

echo "==> perf gate: self-test (injected 50% slowdown must trip the comparator)"
cargo run --release -q -p rfc-bench --bin rfc-bench -- selftest BENCH_scale.json

echo "==> perf gate: fresh throughput + ΔRSS vs committed BENCH_scale.json (tolerance ${RFC_GATE_TOLERANCE:-0.20})"
# Gates every rounds/s column as a floor AND every ΔRSS MiB column as a
# ceiling (committed·(1+tol) + 8 MiB slack): the best of the two fresh
# captures — max throughput, min memory — must stay within tolerance of
# the committed baseline, and the check runs *before* the baseline is
# refreshed below. Both noises are one-sided (a busy machine reads
# throughput low and memory high, never the opposite), so best-of-2
# damps flakes without hiding regressions that show in every sample.
# Override with RFC_GATE_TOLERANCE=0.35 ./ci.sh on a persistently noisy
# machine.
cargo run --release -q -p rfc-bench --bin rfc-bench -- gate BENCH_scale.json \
    target/bench-json/e14_0.json target/bench-json/e14_1.json target/bench-json/e16_0.json \
    target/bench-json/e17_0.json target/bench-json/codec_0.json target/bench-json/serial_0.json \
    target/bench-json2/e14_0.json target/bench-json2/e14_1.json target/bench-json2/e16_0.json \
    target/bench-json2/e17_0.json target/bench-json2/codec_0.json target/bench-json2/serial_0.json

# Six JSON lines: the trial-level scale sweep (E14), the enum-vs-dyn
# dispatch comparison (E14b), the intra-trial shard sweep (E16), the
# instance-plane sweep (E17), the wire-codec throughput row (E18), and
# the serial-section drain micro-bench (E19) — the perf trajectory
# tracked across PRs. The committed BENCH_scale.json is the gate's
# baseline and is deliberately a *floor* (per-cell minimum over repeated
# captures), so CI does NOT overwrite it; refresh it on purpose with the
# line below when the floor genuinely moves:
#     cp target/BENCH_scale.fresh.json BENCH_scale.json
cat target/bench-json/e14_0.json target/bench-json/e14_1.json target/bench-json/e16_0.json target/bench-json/e17_0.json target/bench-json/codec_0.json target/bench-json/serial_0.json > target/BENCH_scale.fresh.json
echo "    wrote target/BENCH_scale.fresh.json (scale sweep + dispatch + intra-trial shard + instance-plane + codec + serial-section rows)"

echo "CI OK"
