#!/usr/bin/env bash
# CI entry point: the tier-1 verify line plus the targets that must not
# bitrot (benches, all seven examples, the experiment registry binary).
#
# Usage: ./ci.sh
# Env:   PROPTEST_CASES — optional cap on property-test cases (the vendored
#        proptest shim honors it; unset means per-suite defaults).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package: integration + doc tests)"
cargo test -q

echo "==> workspace tests (all member crates)"
cargo test --workspace -q

echo "==> tier-2: golden-run regression corpus (pinned seed->digest matrix)"
# Thread count pinned for a stable wall clock; the corpus itself is
# thread-independent (each row is one single-threaded run). Budget:
# the full matrix is ~15 debug-mode runs at n <= 48 — seconds, not
# minutes; if it ever creeps past ~60 s, shrink rows before raising
# the budget.
RUST_TEST_THREADS=2 cargo test -q --test golden_runs

echo "==> tier-2: sharded golden rows at RFC_THREADS=1,2,8 (digest must be identical at every count)"
# The sharded (PerAgent-discipline) corpus: each row runs once per
# listed thread count and the suite asserts all digests agree AND match
# the pinned capture — the staged engine's thread-invariance contract.
RFC_THREADS=1,2,8 RUST_TEST_THREADS=2 cargo test -q --test sharded_engine

echo "==> benches compile"
cargo build --benches

echo "==> bench smoke: one-shot throughput run (round engine + trial fold)"
cargo bench -p rfc-bench --bench throughput

echo "==> bench smoke: dispatch head-to-head (boxed-dyn vs enum vs enum+arena)"
cargo bench -p rfc-bench --bench dispatch

echo "==> examples build (release)"
cargo build --release --examples

echo "==> experiment registry lists"
cargo run --release -q -p experiments --bin rfc-experiments -- list

echo "==> dynamics smoke: e15 --quick (churn / partition-heal / loss bursts)"
cargo run --release -q -p experiments --bin rfc-experiments -- e15 --quick >/dev/null

echo "==> staged-engine smoke: e16 --quick (intra-trial shard sweep + digest assert)"
cargo run --release -q -p experiments --bin rfc-experiments -- e16 --quick >/dev/null

echo "==> perf snapshot: e14/e16 --quick -> BENCH_scale.json"
cargo run --release -q -p experiments --bin rfc-experiments -- e14 e16 --quick --json target/bench-json >/dev/null
# Three JSON lines: the trial-level scale sweep (E14), the enum-vs-dyn
# dispatch comparison (E14b), and the intra-trial shard sweep (E16) —
# the perf trajectory tracked across PRs.
cat target/bench-json/e14_0.json target/bench-json/e14_1.json target/bench-json/e16_0.json > BENCH_scale.json
echo "    wrote BENCH_scale.json (scale sweep + dispatch + intra-trial shard rows)"

echo "CI OK"
