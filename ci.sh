#!/usr/bin/env bash
# CI entry point: the tier-1 verify line plus the targets that must not
# bitrot (benches, all seven examples, the experiment registry binary).
#
# Usage: ./ci.sh
# Env:   PROPTEST_CASES — optional cap on property-test cases (the vendored
#        proptest shim honors it; unset means per-suite defaults).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package: integration + doc tests)"
cargo test -q

echo "==> workspace tests (all member crates)"
cargo test --workspace -q

echo "==> benches compile"
cargo build --benches

echo "==> examples build (release)"
cargo build --release --examples

echo "==> experiment registry lists"
cargo run --release -q -p experiments --bin rfc-experiments -- list

echo "CI OK"
