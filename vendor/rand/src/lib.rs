//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace (`SmallRng`, `RngCore`, `SeedableRng`, `Rng::gen_range`).
//!
//! The build container has no network access to a cargo registry, so the
//! real crates.io `rand` cannot be fetched. This shim is API-compatible for
//! the call sites in `gossip-net` (the only crate that touches `rand`
//! directly); it is **not** value-compatible with upstream `rand` — all the
//! workspace needs is a deterministic, statistically sound generator, which
//! xoshiro256++ (the same algorithm upstream `SmallRng` uses on 64-bit
//! targets) provides.

use core::fmt;

/// Error type returned by fallible RNG methods. The shim's generators are
/// infallible, so this is never constructed outside `try_fill_bytes`
/// plumbing.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Core trait for random number generators (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-size seed (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64, as used by rand_core::SeedableRng::seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let range = (high as $wide).wrapping_sub(low as $wide);
                if range == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                // Classic rejection sampling: reject the tail that would
                // bias the modulus. `zone` is the largest multiple of
                // `range` minus one representable in the wide type.
                let ints_to_reject = (<$wide>::MAX - range + 1) % range;
                let zone = <$wide>::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u64() as $wide;
                    if v <= zone {
                        return low.wrapping_add((v % range) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + (high - low) * unit
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                if hi == <$t>::MAX {
                    // Shift down to avoid overflowing hi + 1.
                    return <$t>::sample_range(rng, lo - 1, hi) + 1;
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draw one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) from 53 mantissa bits, like rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension trait with user-facing sampling helpers (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution (`[0,1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open (or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++, the algorithm
    /// upstream `rand 0.8` uses for `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state words (checkpoint support).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words captured by
        /// [`SmallRng::state`]. The all-zero state is rejected the same
        /// way `from_seed` rejects it, so a restored generator is always
        /// a valid xoshiro256++ instance.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro's state must not be all zero.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_from_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 4);
        }

        #[test]
        fn gen_range_in_bounds_and_covers() {
            let mut r = SmallRng::seed_from_u64(7);
            let mut seen = [false; 10];
            for _ in 0..1000 {
                let v = r.gen_range(0u64..10);
                assert!(v < 10);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn gen_range_f64_in_bounds() {
            let mut r = SmallRng::seed_from_u64(9);
            for _ in 0..1000 {
                let v = r.gen_range(1.5f64..4.0);
                assert!((1.5..4.0).contains(&v));
            }
        }

        #[test]
        fn fill_bytes_fills_everything() {
            let mut r = SmallRng::seed_from_u64(11);
            let mut buf = [0u8; 37];
            r.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        }
    }
}
