//! Offline vendored shim for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build container cannot reach a cargo registry, so the real
//! `proptest` cannot be fetched. This shim keeps the same *surface* for the
//! call sites in the repo's test suites — `proptest! { ... }`, range/tuple/
//! `collection::vec` strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `prop_map`, `prop::sample::Index`, `prop_assert*!`, `prop_assume!`,
//! `ProptestConfig::with_cases` — with two deliberate simplifications:
//!
//! 1. **No shrinking.** A failing case reports its case index, attempt,
//!    and derived RNG seed but is not minimized.
//! 2. **Deterministic by default.** Case inputs derive from a fixed
//!    per-test seed (a hash of the test name) plus the case and attempt
//!    indices, so a green suite stays green: there is no run-to-run
//!    lottery.
//!
//! `prop_assume!` rejections are retried with fresh inputs (up to 1024
//! attempts per case, mirroring proptest's global rejection cap); a case
//! whose assumption never holds panics rather than silently passing.
//!
//! The number of cases per test is `min(config.cases, $PROPTEST_CASES)`
//! when the `PROPTEST_CASES` environment variable is set, so CI can cap
//! the whole suite without touching source.

pub mod test_runner {
    //! Test-runner configuration and error plumbing.

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Cases actually run: `cases`, capped by `$PROPTEST_CASES` if set.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
                Some(cap) => self.cases.min(cap),
                None => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The RNG handed to strategies. Deterministic: seeded from the test
    /// name and case index.
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// The seed used for attempt `attempt` of case `case` of the test
        /// named `name`; reported on failure so a case can be replayed.
        pub fn seed_for(name: &str, case: u32, attempt: u32) -> u64 {
            // FNV-1a over the test name, mixed with the case/attempt indices.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
        }

        /// RNG for one (case, attempt) pair of the test named `name`.
        /// Attempts beyond 0 are `prop_assume!` retries.
        pub fn for_case(name: &str, case: u32, attempt: u32) -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::SmallRng::seed_from_u64(Self::seed_for(name, case, attempt)))
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }

        /// Uniform sample from `[low, high)` for any supported type.
        pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
            use rand::Rng;
            self.0.gen_range(range)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union over `options`; each generation picks one
        /// uniformly at random.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any::<T>()`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for "any `T` at all".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    /// A position into a collection whose length is only known at use
    /// time; mirrors `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Project onto `[0, size)`. Panics when `size == 0`, like the
        /// real `proptest::sample::Index`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies (`collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible length range for [`vec`]; built from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy: each generation draws a length from `size`, then
    /// that many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let cases = cfg.effective_cases();
            for case in 0..cases {
                // Rejected inputs (prop_assume!) are regenerated with a
                // fresh attempt stream rather than skipped, so filtered
                // properties still execute on `cases` real inputs.
                let mut attempt: u32 = 0;
                loop {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case, attempt);
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __proptest_rng);)*
                    let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __proptest_result {
                        Ok(()) => break,
                        Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            attempt += 1;
                            if attempt >= 1024 {
                                panic!(
                                    "proptest case #{case}: 1024 consecutive prop_assume! \
                                     rejections (last: {why}) — assumption is near-unsatisfiable"
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{case} of {cases} (attempt {attempt}, rng seed \
                                 {:#018x}) failed: {msg}",
                                $crate::test_runner::TestRng::seed_for(
                                    stringify!($name), case, attempt)
                            );
                        }
                    }
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_respect_env_cap() {
        let cfg = ProptestConfig::with_cases(64);
        assert!(cfg.effective_cases() <= 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        fn vec_lengths_in_range(v in prop::collection::vec(0u64..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!(v >= 1 && v < 5);
        }

        fn index_projects(ix in any::<prop::sample::Index>()) {
            let i = ix.index(7);
            prop_assert!(i < 7);
        }

        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case("t", c, 0)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case("t", c, 0)))
            .collect();
        assert_eq!(a, b);
    }
}
