//! Offline vendored shim for the subset of the `parking_lot` API this
//! workspace uses (`Mutex`/`RwLock` without lock poisoning). Backed by
//! `std::sync`; poison errors are swallowed by taking the inner guard,
//! which matches parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock without poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning, like `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
