//! Offline vendored shim for the subset of the Criterion API this
//! workspace's benches use.
//!
//! The build container cannot reach a cargo registry, so the real
//! `criterion` cannot be fetched. This shim keeps the bench sources
//! compiling and produces simple wall-clock measurements:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is
//!   warmed up and then timed over a short adaptive loop, reporting the
//!   mean time per iteration;
//! * under `cargo test` (no `--bench` argument), each benchmark routine
//!   runs exactly once as a smoke test — the same behavior real Criterion
//!   has in test mode — so `cargo test` stays fast while keeping bench
//!   code exercised.
//!
//! No statistics, plots, or baselines; this is a compile-and-smoke
//! harness until a real registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many logical units one benchmark iteration processes; used only
/// for reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark point within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean nanoseconds per iteration from the last `iter` call.
    last_ns: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `cargo bench`: measure.
    Bench,
    /// `cargo test`: run once.
    Test,
}

impl Bencher {
    /// Time `routine`, storing the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.last_ns = f64::NAN;
            }
            Mode::Bench => {
                // Warmup.
                for _ in 0..3 {
                    black_box(routine());
                }
                // Adaptive: iterate until ~100ms or 1000 iters.
                let budget = Duration::from_millis(100);
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < budget && iters < 1000 {
                    black_box(routine());
                    iters += 1;
                }
                self.last_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
            }
        }
    }

    /// Like [`Bencher::iter`], but re-running `setup` before every
    /// iteration; only the routine is (approximately) timed.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                self.last_ns = f64::NAN;
            }
            Mode::Bench => {
                for _ in 0..3 {
                    black_box(routine(setup()));
                }
                let budget = Duration::from_millis(100);
                let loop_start = Instant::now();
                let mut spent = Duration::ZERO;
                let mut iters = 0u64;
                while loop_start.elapsed() < budget && iters < 1000 {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    spent += t.elapsed();
                    iters += 1;
                }
                self.last_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "smoke-ran".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench` under `cargo bench`;
        // under `cargo test` the flag is absent and we run in smoke mode.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion { mode: if bench { Mode::Bench } else { Mode::Test } }
    }
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher { mode: self.mode, last_ns: f64::NAN };
        f(&mut b);
        println!("bench {:<40} {}", id.to_string(), format_ns(b.last_ns));
        self
    }
}

/// A named collection of benchmark points.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accept (and ignore) a sample-size hint, for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accept (and ignore) a measurement-time hint, for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput, for API parity.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark point in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mode: self.criterion.mode, last_ns: f64::NAN };
        f(&mut b);
        println!("bench {:<40} {}", format!("{}/{id}", self.name), format_ns(b.last_ns));
        self
    }

    /// Run one benchmark point that takes a borrowed input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mode: self.criterion.mode, last_ns: f64::NAN };
        f(&mut b, input);
        println!("bench {:<40} {}", format!("{}/{id}", self.name), format_ns(b.last_ns));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("run", 8).to_string(), "run/8");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Test };
        let mut count = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn iter_with_setup_runs() {
        let mut c = Criterion { mode: Mode::Test };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_with_setup(|| vec![0u64; n as usize], |v| v.len())
        });
        group.finish();
    }
}
