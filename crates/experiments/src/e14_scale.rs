//! E14 — production-scale throughput: the streaming-fold pipeline at
//! large `n` and large trial counts.
//!
//! The ROADMAP's north star is a harness that runs "as fast as the
//! hardware allows" on regimes the paper's w.h.p. claims actually concern
//! (Clementi et al. analyze asymptotics; Becchetti et al.'s many-opinions
//! work routinely quotes `n ≥ 10⁵`). This experiment sweeps `n` up to
//! 10⁵ with an agent-trial budget that gives the smallest size 10⁴+
//! trials, folding every trial into O(threads) mergeable accumulators
//! ([`run_trials_fold_with_stats`]) — the buffered `Vec`-of-results
//! harness would hold every `RunReport` alive and could not touch this
//! workload class.
//!
//! Reported per sweep point:
//!
//! * **rounds/s** and **agent·rounds/s** — simulated protocol rounds per
//!   wall-clock second (all worker threads combined);
//! * **bytes/agent** — mean wire traffic per agent per run (exact
//!   [`Tally`] over `bits_sent`, which overflows f64 precision at scale);
//! * **ΔRSS** — growth of the process high-water mark (`VmHWM` from
//!   `/proc/self/status`) across the sweep point. `VmHWM` is a
//!   process-global monotone, so the *delta* is what attributes memory
//!   to a point: a 10⁴-trial point that adds ~nothing is the "no
//!   O(trials) buffer exists" witness;
//! * **fold window** — the engine's peak count of unmerged block
//!   partials, which stays ≤ 3·threads however many trials stream by.
//!
//! Unlike E1–E13, the throughput and RSS columns are *measurements of
//! this machine*, not pure functions of the seed; the count columns
//! (trials, consensus, bytes/agent) remain seed-deterministic.
//!
//! A second table (E14b) measures the **agent-plane dispatch** head to
//! head: the legacy boxed-dyn pipeline (rebuild + vtables) against the
//! monomorphic enum plane with per-worker reusable [`TrialArena`]s —
//! the speedup that PR's refactor is accountable for, tracked in
//! BENCH_scale.json across PRs.

use crate::opts::ExpOptions;
use crate::parallel::{run_trials_fold_with_scratch, run_trials_fold_with_stats};
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol_boxed, RunConfig, TrialArena};
use rfc_stats::Tally;

/// Agent-trials budgeted per sweep point (trials(n) = budget / n), so the
/// per-point simulation cost is roughly flat across the sweep. Full mode
/// gives the smallest `n` 10⁴ trials; quick mode divides by 8 as usual.
const AGENT_TRIAL_BUDGET: usize = 2_560_000;

/// Streaming per-point aggregate — O(1) in the trial count.
#[derive(Default)]
struct Acc {
    trials: u64,
    consensus: u64,
    rounds: Tally,
    bits: Tally,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        self.trials += other.trials;
        self.consensus += other.consensus;
        self.rounds.merge(&other.rounds);
        self.bits.merge(&other.bits);
    }
}

/// Process peak-RSS proxy in MiB (`VmHWM` from `/proc/self/status`);
/// `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Run E14 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    run_with_budget(opts, opts.trials(AGENT_TRIAL_BUDGET))
}

/// [`run`] with an explicit agent-trial budget (tests use a small one;
/// the registry entry always passes the production budget).
pub fn run_with_budget(opts: &ExpOptions, budget: usize) -> Vec<Table> {
    let gamma = 3.0;
    let sizes: Vec<usize> = [256, 512, 1024, 4096, 16384, 65536, 100_000]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(100_000))
        .collect();

    let mut table = Table::new(
        format!(
            "E14 — streaming-fold throughput sweep (γ = {gamma}, {budget} agent-trials/point)"
        ),
        &[
            "n",
            "q",
            "trials",
            "consensus",
            "rounds/s",
            "Magent·rounds/s",
            "bytes/agent",
            "ΔRSS MiB",
            "fold window",
        ],
    );
    for &n in &sizes {
        let trials = (budget / n).max(4);
        let threads = opts.threads_for(trials);
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![n - n / 2, n / 2])
            .build();
        let rss_before = peak_rss_mib();
        let started = std::time::Instant::now();
        // Per-worker TrialArena: each worker re-arms one network across
        // all its trials (enum dispatch, no per-trial agent boxing).
        let (acc, stats) = run_trials_fold_with_scratch(
            trials,
            threads,
            opts.seed,
            TrialArena::new,
            Acc::default,
            |acc, arena, _i, seed| {
                let r = arena.run_protocol(&cfg, seed);
                acc.trials += 1;
                acc.consensus += r.outcome.is_consensus() as u64;
                acc.rounds.add(r.rounds as u64);
                acc.bits.add(r.metrics.bits_sent);
            },
            Acc::merge,
        );
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let rounds_per_s = acc.rounds.sum() as f64 / secs;
        let agent_rounds_per_s = rounds_per_s * n as f64 / 1e6;
        let bytes_per_agent = acc.bits.mean() / 8.0 / n as f64;
        let rss_growth = match (rss_before, peak_rss_mib()) {
            (Some(before), Some(after)) => fmt::f2(after - before),
            _ => "n/a".into(),
        };
        table.row(vec![
            n.to_string(),
            cfg.params().q.to_string(),
            trials.to_string(),
            fmt::rate_ci(acc.consensus, acc.trials),
            format!("{rounds_per_s:.0}"),
            fmt::f2(agent_rounds_per_s),
            fmt::f2(bytes_per_agent),
            rss_growth,
            format!("{} (≤ {})", stats.peak_pending, 3 * threads),
        ]);
    }
    table.note("streaming fold: O(threads) aggregation memory — no per-trial result buffer exists at any n");
    table.note("per-worker TrialArena: agent storage, network scratch buffers, metrics and op-log recycled across trials");
    table.note("ΔRSS = VmHWM growth across the point (VmHWM is process-global and monotone; the delta attributes memory to the point)");
    table.note("rounds/s and ΔRSS are wall-clock measurements of this machine; trials/consensus/bytes are seed-deterministic");
    vec![table, dispatch_table(opts, budget)]
}

/// E14b — the agent-plane head-to-head: the same honest workload through
/// the legacy boxed-dyn pipeline (rebuild `Vec<Box<dyn ConsensusAgent>>`
/// every trial, vtable dispatch every call) vs the monomorphic enum
/// plane with per-worker reusable arenas. Both are exact: bit-identical
/// `RunReport`s (pinned by `dispatch_equivalence.rs`), so the speedup
/// column is pure representation cost.
fn dispatch_table(opts: &ExpOptions, budget: usize) -> Table {
    let gamma = 3.0;
    let sizes: Vec<usize> = [256, 1024, 4096]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(4096))
        .collect();
    let mut table = Table::new(
        format!("E14b — dispatch comparison: boxed-dyn rebuild vs enum+arena (γ = {gamma})"),
        &[
            "n",
            "trials",
            "dyn Magent·rounds/s",
            "enum Magent·rounds/s",
            "speedup",
        ],
    );
    for &n in &sizes {
        let trials = (budget / n).clamp(4, 2_000);
        let threads = opts.threads_for(trials);
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![n - n / 2, n / 2])
            .build();
        let throughput = |magent_rounds: u64, secs: f64| magent_rounds as f64 / secs / 1e6;

        let started = std::time::Instant::now();
        let (dyn_rounds, _) = run_trials_fold_with_stats(
            trials,
            threads,
            opts.seed,
            || 0u64,
            |acc, _i, seed| *acc += run_protocol_boxed(&cfg, seed).rounds as u64,
            |a, b| *a += b,
        );
        let dyn_tput = throughput(dyn_rounds * n as u64, started.elapsed().as_secs_f64().max(1e-9));

        let started = std::time::Instant::now();
        let (enum_rounds, _) = run_trials_fold_with_scratch(
            trials,
            threads,
            opts.seed,
            TrialArena::new,
            || 0u64,
            |acc, arena: &mut TrialArena, _i, seed| {
                *acc += arena.run_protocol(&cfg, seed).rounds as u64
            },
            |a, b| *a += b,
        );
        let enum_tput =
            throughput(enum_rounds * n as u64, started.elapsed().as_secs_f64().max(1e-9));

        assert_eq!(dyn_rounds, enum_rounds, "paths must simulate identical rounds");
        table.row(vec![
            n.to_string(),
            trials.to_string(),
            fmt::f2(dyn_tput),
            fmt::f2(enum_tput),
            format!("{:.2}x", enum_tput / dyn_tput.max(1e-12)),
        ]);
    }
    table.note("dyn arm: Vec<Box<dyn ConsensusAgent>> rebuilt per trial, vtable dispatch per agent call");
    table.note("enum arm: Network<Msg, AgentSlot> per worker, reset in place per trial, jump-table dispatch");
    table.note("both arms produce bit-identical RunReports (tests/dispatch_equivalence.rs); the ratio is pure dispatch+allocation cost");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_sweeps_and_stays_consistent() {
        // Small explicit budget: the sweep logic is identical to the
        // production path, just cheap enough for debug-mode CI.
        let tables = run_with_budget(&ExpOptions::quick(), 12_000);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        assert!(t.rows.len() >= 2, "quick mode still sweeps multiple sizes");
        for row in &t.rows {
            // Consensus w.h.p. at γ = 3 for every size in the sweep.
            assert!(
                row[3].starts_with("1.000") || row[3].starts_with("0.9"),
                "consensus should hold w.h.p.: {row:?}"
            );
            // The fold window bound is printed and respected: "k (≤ m)".
            let parts: Vec<&str> = row[8].split(|c| c == ' ' || c == '(' || c == ')' || c == '≤')
                .filter(|s| !s.is_empty())
                .collect();
            let window: usize = parts[0].parse().unwrap();
            let bound: usize = parts[1].parse().unwrap();
            assert!(window <= bound, "fold window exceeded its bound: {row:?}");
        }
    }

    #[test]
    fn e14_dispatch_table_reports_both_arms() {
        let tables = run_with_budget(&ExpOptions::quick(), 4_000);
        let d = &tables[1];
        assert!(d.title.contains("dispatch"));
        assert!(!d.rows.is_empty());
        for row in &d.rows {
            let dyn_tput: f64 = row[2].parse().unwrap();
            let enum_tput: f64 = row[3].parse().unwrap();
            assert!(dyn_tput > 0.0 && enum_tput > 0.0, "throughputs must be measured: {row:?}");
            assert!(row[4].ends_with('x'), "speedup column malformed: {row:?}");
        }
    }

    #[test]
    fn e14_quick_caps_the_sweep() {
        let t = &run_with_budget(&ExpOptions::quick(), 4_000)[0];
        let max_n: usize = t.rows.iter().map(|r| r[0].parse().unwrap()).max().unwrap();
        assert!(max_n <= 512, "quick mode must cap n for CI");
    }
}
