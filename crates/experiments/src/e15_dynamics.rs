//! E15 — dynamic adversity: churn, partitions, and scheduled loss
//! bursts over the streaming-fold pipeline.
//!
//! The paper's adversary commits before round 0; E1–E14 inherit that.
//! This experiment drives the scenario-script subsystem
//! ([`rfc_core::ScenarioScript`], [`rfc_core::LossSchedule`]) through
//! the same E14-style fold harness (per-worker [`TrialArena`]s, `n` up
//! to 10⁴) to measure how protocol `P` behaves when adversity is a
//! *function of time* — the regime Halpern & Vilaça's recovering agents
//! and Becchetti et al.'s dynamic stabilizing adversary point at:
//!
//! * **E15a (churn)** — a quarter of the agents crash at a scripted
//!   round and possibly recover later. Timing is everything: a crash at
//!   round 0 *is* a plan fault (consensus w.h.p. over survivors), and a
//!   crash at a phase boundary is the tolerated "play dead" deviation —
//!   but a *mid-Voting* crash leaves half-declared vote sets behind,
//!   which Verification cannot distinguish from lying (the E13
//!   mechanism), so it fails the run by design. Recovery re-admits
//!   agents into the survivor set without repairing what they missed.
//! * **E15b (partition-heal)** — the network splits into two halves at
//!   the start of Find-Min and heals `h` rounds later. Find-Min is pull
//!   rumor spreading, so each half spreads its own minimum; consensus
//!   survives iff the post-heal window suffices to re-spread the global
//!   minimum (~`log n` rounds — the re-stabilization question).
//! * **E15c (loss bursts)** — a total blackout (`p = 1`) of `w` rounds
//!   placed either in Voting or in Find-Min. E13 showed constant loss
//!   is fatal because lost *votes* are indistinguishable from lying;
//!   the burst placement shows the asymmetry: Find-Min shrugs off
//!   blackout rounds (silence is a legal pull outcome), Voting does not.
//!
//! Outcome accounting is over the survivor set (agents active at
//! finalization); every number is a pure function of `(opts.seed)` —
//! the undelivered column measures the metered-but-suppressed traffic
//! the scenario induced.

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold_with_scratch;
use crate::table::{fmt, Table};
use rfc_core::runner::{RunConfig, RunConfigBuilder, TrialArena};
use rfc_core::{LossSchedule, PartitionCut, ScenarioScript};
use rfc_stats::Tally;

/// Agent-trials budgeted per sweep point (trials(n) = budget / n), so
/// cost stays roughly flat across the n sweep; quick mode divides by 8.
const AGENT_TRIAL_BUDGET: usize = 512_000;

/// Streaming per-point aggregate — O(1) in the trial count.
#[derive(Default)]
struct Acc {
    trials: u64,
    consensus: u64,
    survivors: u64,
    undelivered: Tally,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        self.trials += other.trials;
        self.consensus += other.consensus;
        self.survivors += other.survivors;
        self.undelivered.merge(&other.undelivered);
    }
}

/// Fold `trials` runs of `cfg` into an [`Acc`] through per-worker arenas.
fn measure(opts: &ExpOptions, cfg: &RunConfig, trials: usize) -> Acc {
    let (acc, _) = run_trials_fold_with_scratch(
        trials,
        opts.threads_for(trials),
        opts.seed,
        TrialArena::new,
        Acc::default,
        |acc: &mut Acc, arena: &mut TrialArena, _i, seed| {
            let r = arena.run_protocol(cfg, seed);
            acc.trials += 1;
            acc.consensus += r.outcome.is_consensus() as u64;
            acc.survivors += r.n_active as u64;
            acc.undelivered.add(r.metrics.undelivered);
        },
        Acc::merge,
    );
    acc
}

fn base_cfg(n: usize, gamma: f64) -> RunConfigBuilder {
    RunConfig::builder(n).gamma(gamma).colors(vec![n - n / 2, n / 2])
}

/// Run E15 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let budget = opts.trials(AGENT_TRIAL_BUDGET);
    vec![
        churn_table(opts, budget),
        partition_table(opts, budget),
        burst_table(opts, budget),
    ]
}

/// E15a — churn: crash the top quarter of ids, with and without
/// recovery, at different points of the protocol timeline.
fn churn_table(opts: &ExpOptions, budget: usize) -> Table {
    let gamma = 3.0;
    let sizes: Vec<usize> = [64, 256, 1024, 4096, 10_000]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(10_000))
        .collect();
    let mut table = Table::new(
        format!("E15a — churn: crash n/4 agents, optional recovery (γ = {gamma}, {budget} agent-trials/point)"),
        &["n", "q", "scenario", "trials", "consensus", "survivors/n", "undeliv/trial"],
    );
    for &n in &sizes {
        let trials = (budget / n).max(4);
        let q = base_cfg(n, gamma).build().params().q;
        let k = n / 4;
        let set: Vec<u32> = ((n - k) as u32..n as u32).collect();
        let variants: [(&str, ScenarioScript); 4] = [
            (
                "crash@0 (≈ plan faults)",
                ScenarioScript::new().crash(0, set.clone()),
            ),
            (
                "crash@1.5q (mid-Voting)",
                ScenarioScript::new().crash(3 * q / 2, set.clone()),
            ),
            (
                "crash@2q (phase boundary)",
                ScenarioScript::new().crash(2 * q, set.clone()),
            ),
            (
                "crash@1.5q, recover@2.5q",
                ScenarioScript::new()
                    .crash(3 * q / 2, set.clone())
                    .recover(5 * q / 2, set.clone()),
            ),
        ];
        for (label, script) in variants {
            let cfg = base_cfg(n, gamma).scenario(script).build();
            let acc = measure(opts, &cfg, trials);
            table.row(vec![
                n.to_string(),
                q.to_string(),
                label.to_string(),
                acc.trials.to_string(),
                fmt::rate_ci(acc.consensus, acc.trials),
                fmt::f3(acc.survivors as f64 / (acc.trials as f64 * n as f64)),
                fmt::f2(acc.undelivered.mean()),
            ]);
        }
    }
    table.note("crash = involuntary play-dead: quiescent from its round on; outcome/validity are over the survivor set (agents active at finalization)");
    table.note("timing is everything: round-0 and phase-boundary crashes degrade gracefully (quiescence is legal), a mid-Voting crash leaves half-declared vote sets that Verification must treat as lying (E13 mechanism)");
    table.note("recovered agents rejoin with the state they crashed with — everything sent to them in between was metered but undelivered");
    table
}

/// E15b — partition at Find-Min start, heal `h` rounds later.
fn partition_table(opts: &ExpOptions, budget: usize) -> Table {
    let gamma = 3.0;
    let sizes: Vec<usize> = [256, 1024, 4096]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(4096))
        .collect();
    let mut table = Table::new(
        format!("E15b — halved network at Find-Min start, healed h rounds later (γ = {gamma})"),
        &["n", "q", "heal after", "trials", "consensus", "undeliv/trial"],
    );
    for &n in &sizes {
        let trials = (budget / n).max(4);
        let q = base_cfg(n, gamma).build().params().q;
        let heals: Vec<usize> = vec![0, q / 4, q / 2, 3 * q / 4, q];
        for h in heals {
            let cut = PartitionCut::split_at(n, n / 2);
            let script = ScenarioScript::new().partition(2 * q, cut).heal(2 * q + h);
            let cfg = base_cfg(n, gamma).scenario(script).build();
            let acc = measure(opts, &cfg, trials);
            table.row(vec![
                n.to_string(),
                q.to_string(),
                format!("{h} rounds"),
                acc.trials.to_string(),
                fmt::rate_ci(acc.consensus, acc.trials),
                fmt::f2(acc.undelivered.mean()),
            ]);
        }
    }
    table.note("the cut is a delivery overlay: agents keep sampling cross-cut peers, those messages are metered but undelivered (h = 0: heal lands with the cut, no round is masked)");
    table.note("Find-Min is pull rumor spreading: each half spreads its own min; consensus needs the post-heal window to re-spread the global min (~log n rounds)");
    table
}

/// E15c — total-blackout bursts (`p = 1`) of width `w`, placed in
/// Voting vs in Find-Min.
fn burst_table(opts: &ExpOptions, budget: usize) -> Table {
    let gamma = 3.0;
    let sizes: Vec<usize> = [256, 1024]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(1024))
        .collect();
    let mut table = Table::new(
        format!("E15c — blackout bursts (p = 1 for w rounds) by phase placement (γ = {gamma})"),
        &["n", "q", "phase", "w", "trials", "consensus"],
    );
    for &n in &sizes {
        let trials = (budget / n).max(4);
        let q = base_cfg(n, gamma).build().params().q;
        for (phase, start) in [("voting", q), ("find-min", 2 * q)] {
            for w in [1usize, 4, 8] {
                let cfg = base_cfg(n, gamma)
                    .loss_schedule(LossSchedule::burst(0.0, 1.0, start, start + w))
                    .build();
                let acc = measure(opts, &cfg, trials);
                table.row(vec![
                    n.to_string(),
                    q.to_string(),
                    phase.to_string(),
                    w.to_string(),
                    acc.trials.to_string(),
                    fmt::rate_ci(acc.consensus, acc.trials),
                ]);
            }
        }
    }
    table.note("a blackout in Voting destroys votes — indistinguishable from lying (E13), so even w = 1 is near-fatal");
    table.note("a blackout in Find-Min looks like unlucky pulls (silence is legal); the phase absorbs small w and degrades only as w approaches q");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(row: &[String], col: usize) -> f64 {
        row[col].split(' ').next().unwrap().parse().unwrap()
    }

    #[test]
    fn e15_churn_round0_crash_matches_plan_fault_regime() {
        let t = churn_table(&ExpOptions::quick(), 16_000);
        for row in &t.rows {
            if row[2].starts_with("crash@0") {
                assert!(
                    rate(row, 4) > 0.6,
                    "round-0 crash must behave like plan faults (w.h.p. consensus): {row:?}"
                );
                assert!(
                    (rate(row, 5) - 0.75).abs() < 1e-9,
                    "n/4 crashed, never recovered ⇒ 75% survivors: {row:?}"
                );
            }
            if row[2].starts_with("crash@2q") {
                assert!(
                    rate(row, 4) > 0.6,
                    "phase-boundary crash is legal quiescence and must degrade gracefully: {row:?}"
                );
            }
            if row[2].starts_with("crash@1.5q (") {
                assert!(
                    rate(row, 4) < 0.5,
                    "mid-Voting crash breaks the vote binding and must collapse: {row:?}"
                );
            }
            // Scenario traffic suppression is measured, not zero.
            let undeliv: f64 = row[6].parse().unwrap();
            assert!(undeliv > 0.0, "crashed receivers must show up as undelivered: {row:?}");
        }
    }

    #[test]
    fn e15_partition_heal_gradient() {
        let t = partition_table(&ExpOptions::quick(), 16_000);
        let h0: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[2] == "0 rounds")
            .map(|r| rate(r, 4))
            .collect();
        for r in &h0 {
            assert!(*r > 0.8, "h = 0 masks no round and must stay near the static rate");
        }
        // A healed partition can only hurt: the latest heal is no better
        // than the earliest (within noise).
        for rows in t.rows.chunks(5) {
            let first = rate(&rows[0].clone(), 4);
            let last = rate(&rows[rows.len() - 1].clone(), 4);
            assert!(last <= first + 0.1, "late heal must not beat no-mask: {rows:?}");
        }
    }

    #[test]
    fn e15_burst_placement_asymmetry() {
        let t = burst_table(&ExpOptions::quick(), 16_000);
        for row in &t.rows {
            let w: usize = row[3].parse().unwrap();
            if row[2] == "voting" {
                assert!(
                    rate(row, 5) < 0.5,
                    "a Voting blackout destroys votes and must collapse: {row:?}"
                );
            }
            if row[2] == "find-min" && w == 1 {
                assert!(
                    rate(row, 5) > 0.6,
                    "one blackout Find-Min round is absorbed: {row:?}"
                );
            }
        }
    }
}
