//! Embarrassingly-parallel Monte-Carlo trial execution.
//!
//! Every experiment reduces to "run `f(seed)` for `trials` independent
//! seeds and aggregate". Two execution styles are offered:
//!
//! * **Buffered** ([`run_trials`] / [`par_map`]): workers claim indices
//!   from a shared atomic counter and write results into pre-allocated
//!   slots; the caller gets a `Vec` in trial order. Memory is O(trials) —
//!   fine for sweeps of hundreds of points, wrong for million-trial runs.
//! * **Streaming** ([`run_trials_fold`] / [`par_fold`]): trials are
//!   folded into accumulators block by block and the block partials are
//!   merged *in block order* as they complete. Peak result-buffer memory
//!   is O(threads) (bounded out-of-order window, no per-slot lock, no
//!   `Vec` of length `trials`), which is what opens the million-trial
//!   workload class.
//!
//! The streaming contract is *thread-count invariant bit-for-bit*: the
//! aggregate is defined as `merge(fold(block 0), fold(block 1), …)` over
//! blocks of [`fold_block_size`] consecutive trials (a pure function of
//! the trial count, at most [`FOLD_BLOCK`]), folded in trial order
//! within each block and merged left-to-right in block order. That
//! definition never mentions threads, and both the serial and the
//! parallel paths compute exactly it — so floating-point accumulators
//! (sums, Welford states) come out bit-identical for any `threads`, not
//! merely "close".
//!
//! Trial `i` always receives `derive_seed(master_seed, i)`, making every
//! aggregate a pure function of `(experiment, master_seed)` regardless of
//! parallelism — the property that lets EXPERIMENTS.md quote exact
//! numbers.
//!
//! The `*_with_scratch` variants add **per-worker state**: each worker
//! thread owns one scratch value (typically an `rfc_core::TrialArena`)
//! that survives across all the blocks it processes, so per-trial setup
//! cost (agent storage, network buffers) is paid once per worker, not
//! once per trial. Scratch state must not influence results — the
//! aggregate stays a pure function of `(experiment, master_seed)`.

use gossip_net::rng::derive_seed;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

/// Largest trials-per-fold-block. The actual block size is
/// [`fold_block_size`] — a pure function of the trial count (never of
/// the thread count), which is what makes the block-merge contract
/// thread-invariant. It is deliberately a constant, not a tunable:
/// changing it changes floating-point merge order (and thus quoted
/// digits).
pub const FOLD_BLOCK: usize = 32;

/// Block size used for a fold over `count` items: `FOLD_BLOCK`, shrunk
/// for small counts so even a few expensive trials (E14's large-`n`
/// points run tens of trials, not thousands) split into enough blocks to
/// occupy every worker. Depends on `count` only — the aggregate stays a
/// pure function of `(count, fold, merge)` for any thread count.
pub fn fold_block_size(count: usize) -> usize {
    FOLD_BLOCK.min(count.div_ceil(64)).max(1)
}

/// Instrumentation from a streaming fold (see
/// [`run_trials_fold_with_stats`]); used to *verify*, not just assert,
/// the O(threads) memory claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Number of blocks the trial range was split into.
    pub blocks: usize,
    /// Largest number of completed-but-unmerged block partials ever held
    /// at once (bounded by `3·threads` by construction: a claim gate
    /// blocks new claims at `2·threads` pending, plus at most one
    /// in-flight block per worker).
    pub peak_pending: usize,
}

/// Ordered-merge state shared by the fold workers.
struct Merger<A> {
    /// Next block index the in-order merge is waiting for.
    next_to_merge: usize,
    /// Completed blocks that arrived ahead of `next_to_merge`.
    pending: Vec<(usize, A)>,
    /// The left-to-right merge of blocks `0..next_to_merge`.
    result: Option<A>,
    peak_pending: usize,
}

/// Core streaming engine: fold `count` indexed items into block
/// accumulators and merge the blocks in order. `produce(acc, scratch, i)`
/// folds item `i`; blocks are [`fold_block_size`]`(count)` consecutive
/// indices (≤ `FOLD_BLOCK`, a pure function of `count`).
///
/// `scratch_init` builds one **per-worker scratch state** (a simulation
/// arena, a reusable buffer, …): the serial path makes exactly one, the
/// parallel path one per worker thread, created *on* that thread — so
/// the scratch type needs neither `Send` nor `Sync`, and its lifetime
/// spans every block the worker processes. Correctness requirement
/// (pinned by the bit-identity tests): `produce` must give results
/// independent of the scratch's prior state, otherwise the aggregate
/// would depend on which worker processed which block.
fn fold_indexed<S, A, SI, I, P, M>(
    count: usize,
    threads: usize,
    scratch_init: SI,
    init: I,
    produce: P,
    merge: M,
) -> (A, FoldStats)
where
    A: Send,
    SI: Fn() -> S + Sync,
    I: Fn() -> A + Sync,
    P: Fn(&mut A, &mut S, usize) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed_from(count, threads, scratch_init, init, produce, merge, None, &|_, _| {})
}

/// [`fold_indexed`] with a **resume point** and an in-order progress
/// hook — the substrate of harness-level sweep checkpointing.
///
/// `resume = Some((blocks_done, acc))` skips blocks `0..blocks_done` and
/// seeds the in-order merge with `acc`, which **must** be the
/// left-to-right merge of exactly those blocks (the value a prior
/// `on_progress(blocks_done, &acc)` reported). Because the block size is
/// a pure function of `count` and the merge continues *into* the resumed
/// accumulator, the final aggregate is bit-identical to the
/// straight-through fold — float merge order included — for any thread
/// count on either side of the seam.
///
/// `on_progress(blocks_done, &prefix)` fires every time the in-order
/// merged prefix advances (serial: after every block; parallel: after
/// each drain of the ordered-merge window, under the merge lock — keep
/// it cheap or accept claim-gate stalls while it runs). A checkpointing
/// caller snapshots `(blocks_done, prefix)` there; `blocks_done ·`
/// [`fold_block_size`]`(count)` is the number of items folded in.
#[allow(clippy::too_many_arguments)]
fn fold_indexed_from<S, A, SI, I, P, M>(
    count: usize,
    threads: usize,
    scratch_init: SI,
    init: I,
    produce: P,
    merge: M,
    resume: Option<(usize, A)>,
    on_progress: &(dyn Fn(usize, &A) + Sync),
) -> (A, FoldStats)
where
    A: Send,
    SI: Fn() -> S + Sync,
    I: Fn() -> A + Sync,
    P: Fn(&mut A, &mut S, usize) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    let block_size = fold_block_size(count);
    let blocks = count.div_ceil(block_size);
    let (start_block, seed_acc) = match resume {
        Some((b, acc)) => {
            assert!(b <= blocks, "resume point beyond the block count");
            (b, Some(acc))
        }
        None => (0, None),
    };
    let fold_block = |b: usize, scratch: &mut S| {
        let mut acc = init();
        let lo = b * block_size;
        let hi = (lo + block_size).min(count);
        for i in lo..hi {
            produce(&mut acc, scratch, i);
        }
        acc
    };
    if count == 0 {
        return (seed_acc.unwrap_or_else(&init), FoldStats::default());
    }
    if start_block >= blocks {
        return (
            seed_acc.expect("a completed resume point carries its accumulator"),
            FoldStats { blocks, peak_pending: 0 },
        );
    }
    if threads == 1 {
        // Same block structure as the parallel path, so the result is
        // bit-identical for any thread count.
        let mut scratch = scratch_init();
        let mut result = seed_acc;
        for b in start_block..blocks {
            let acc = fold_block(b, &mut scratch);
            match &mut result {
                None => result = Some(acc),
                Some(r) => merge(r, acc),
            }
            on_progress(b + 1, result.as_ref().expect("just seeded"));
        }
        return (
            result.expect("at least one block"),
            FoldStats { blocks, peak_pending: 0 },
        );
    }
    // Out-of-order completions wait in `pending`; a worker may not claim
    // a new block while the window is full, so peak memory is O(threads)
    // accumulators even if one early block is pathologically slow.
    let window = 2 * threads;
    let next = AtomicUsize::new(start_block);
    let merger = StdMutex::new(Merger {
        next_to_merge: start_block,
        pending: Vec::with_capacity(window),
        result: seed_acc,
        peak_pending: 0,
    });
    let not_full = Condvar::new();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Worker-local scratch: created on this thread, reused
                // across every block this worker claims.
                let mut scratch = scratch_init();
                loop {
                    {
                        // Claim gate: keep the out-of-order window bounded.
                        let guard = merger.lock().expect("fold merger lock");
                        let _guard = not_full
                            .wait_while(guard, |m| m.pending.len() >= window)
                            .expect("fold merger wait");
                    }
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= blocks {
                        break;
                    }
                    let acc = fold_block(b, &mut scratch);
                    let mut m = merger.lock().expect("fold merger lock");
                    m.pending.push((b, acc));
                    m.peak_pending = m.peak_pending.max(m.pending.len());
                    // Drain everything now mergeable, in block order.
                    let before = m.next_to_merge;
                    while let Some(pos) =
                        m.pending.iter().position(|(i, _)| *i == m.next_to_merge)
                    {
                        let (_, acc) = m.pending.swap_remove(pos);
                        match &mut m.result {
                            None => m.result = Some(acc),
                            Some(r) => merge(r, acc),
                        }
                        m.next_to_merge += 1;
                    }
                    if m.next_to_merge > before {
                        let done = m.next_to_merge;
                        on_progress(done, m.result.as_ref().expect("prefix nonempty"));
                    }
                    drop(m);
                    not_full.notify_all();
                }
            });
        }
    });
    let m = merger.into_inner().expect("fold merger poisoned");
    let stats = FoldStats {
        blocks,
        peak_pending: m.peak_pending,
    };
    (m.result.expect("at least one block"), stats)
}

/// Streaming fold over `trials` independent trials: `fold(acc, i, seed)`
/// folds trial `i` (with its derived per-trial seed) into the
/// accumulator, and `merge` combines two accumulators.
///
/// The result is bit-identical for every `threads` value (see the module
/// docs for the block-merge contract) and peak result-buffer memory is
/// O(threads) accumulators — there is no `Vec` of length `trials`
/// anywhere on this path.
pub fn run_trials_fold<A, I, F, M>(
    trials: usize,
    threads: usize,
    master_seed: u64,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, u64) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    run_trials_fold_with_stats(trials, threads, master_seed, init, fold, merge).0
}

/// [`run_trials_fold`] with **per-worker scratch state**: `scratch_init`
/// builds one `S` per worker (serial: one total), and the fold closure
/// receives `&mut S` alongside the accumulator. This is how the
/// simulation arenas ride the harness: pass
/// `rfc_core::TrialArena::new` as `scratch_init` and run each trial
/// through the arena — agent storage, scratch buffers, metrics and
/// op-log are then recycled across every trial a worker executes.
///
/// The block-merge contract is unchanged: results are bit-identical for
/// any thread count provided each trial's result does not depend on the
/// scratch's prior state (true for arenas by construction — pinned by
/// the `arena_reuse_equals_fresh_networks` and thread-invariance tests).
pub fn run_trials_fold_with_scratch<S, A, SI, I, F, M>(
    trials: usize,
    threads: usize,
    master_seed: u64,
    scratch_init: SI,
    init: I,
    fold: F,
    merge: M,
) -> (A, FoldStats)
where
    A: Send,
    SI: Fn() -> S + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &mut S, usize, u64) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed(
        trials,
        threads,
        scratch_init,
        init,
        |acc, scratch, i| fold(acc, scratch, i, derive_seed(master_seed, i as u64)),
        merge,
    )
}

/// A resumable sweep position: the left-to-right merge of the first
/// `blocks_done` fold blocks. `blocks_done · `[`fold_block_size`]`(trials)`
/// is the index of the first trial **not** folded into `acc` (clamped to
/// `trials` on the last block).
///
/// Produced by the progress hook of [`run_trials_fold_resumable`] and fed
/// back as its `resume` argument; because the merge continues *into*
/// `acc` in block order, the resumed sweep's final accumulator is
/// bit-identical to a straight-through run — float merge order included —
/// regardless of the thread counts used on either side of the seam.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldCheckpoint<A> {
    /// Number of leading blocks already merged into `acc`.
    pub blocks_done: usize,
    /// The in-order merged prefix accumulator.
    pub acc: A,
}

/// [`run_trials_fold_with_scratch`] with **mid-sweep checkpointing**:
/// resume from a prior [`FoldCheckpoint`] and observe every in-order
/// prefix advance through `on_progress(blocks_done, &prefix)`.
///
/// A checkpointing caller clones `(blocks_done, prefix)` inside
/// `on_progress` (it runs under the merge lock on the parallel path —
/// keep it cheap) and persists it however it likes; feeding the snapshot
/// back as `resume` skips the already-folded trials and reproduces the
/// straight-through result bit for bit. `trials` and `master_seed` must
/// match between the two runs — block boundaries are a pure function of
/// `trials`, and per-trial seeds derive from `master_seed`.
#[allow(clippy::too_many_arguments)]
pub fn run_trials_fold_resumable<S, A, SI, I, F, M>(
    trials: usize,
    threads: usize,
    master_seed: u64,
    scratch_init: SI,
    init: I,
    fold: F,
    merge: M,
    resume: Option<FoldCheckpoint<A>>,
    on_progress: &(dyn Fn(usize, &A) + Sync),
) -> (A, FoldStats)
where
    A: Send,
    SI: Fn() -> S + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &mut S, usize, u64) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed_from(
        trials,
        threads,
        scratch_init,
        init,
        |acc, scratch, i| fold(acc, scratch, i, derive_seed(master_seed, i as u64)),
        merge,
        resume.map(|c| (c.blocks_done, c.acc)),
        on_progress,
    )
}

/// [`run_trials_fold`] plus [`FoldStats`] instrumentation (used by tests
/// and `rfc-bench` to demonstrate the O(threads) memory behavior).
pub fn run_trials_fold_with_stats<A, I, F, M>(
    trials: usize,
    threads: usize,
    master_seed: u64,
    init: I,
    fold: F,
    merge: M,
) -> (A, FoldStats)
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, u64) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed(
        trials,
        threads,
        || (),
        init,
        |acc, _scratch, i| fold(acc, i, derive_seed(master_seed, i as u64)),
        merge,
    )
}

/// Fold-variant of [`par_map`]: streams `fold(acc, i, &inputs[i])` over
/// an explicit input list with the same block-merge contract (and the
/// same O(threads) memory bound) as [`run_trials_fold`].
pub fn par_fold<T, A, I, F, M>(
    inputs: &[T],
    threads: usize,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed(
        inputs.len(),
        threads,
        || (),
        init,
        |acc, _scratch, i| fold(acc, i, &inputs[i]),
        merge,
    )
    .0
}

/// [`par_fold`] with per-worker scratch state (see
/// [`run_trials_fold_with_scratch`] for the contract).
pub fn par_fold_with_scratch<T, S, A, SI, I, F, M>(
    inputs: &[T],
    threads: usize,
    scratch_init: SI,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    SI: Fn() -> S + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &mut S, usize, &T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_indexed(
        inputs.len(),
        threads,
        scratch_init,
        init,
        |acc, scratch, i| fold(acc, scratch, i, &inputs[i]),
        merge,
    )
    .0
}

/// Number of worker threads to use: the available parallelism, capped by
/// the trial count (spawning more workers than trials is pure overhead).
pub fn default_threads(trials: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1))
}

/// Run `trials` independent trials of `f` in parallel; `f` receives the
/// per-trial seed. Results are returned in trial order.
pub fn run_trials<T, F>(trials: usize, threads: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    if threads == 1 {
        return (0..trials)
            .map(|i| f(derive_seed(master_seed, i as u64)))
            .collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let result = f(derive_seed(master_seed, i as u64));
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot filled"))
        .collect()
}

/// Parallel map over an explicit input list (used for parameter sweeps
/// where each point is itself expensive); preserves input order.
pub fn par_map<I, T, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = inputs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return inputs.iter().map(&f).collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&inputs[i]);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 4, 7, |seed| seed);
        let expected: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run_trials(50, 1, 3, |s| s.wrapping_mul(3));
        let parallel = run_trials(50, 8, 3, |s| s.wrapping_mul(3));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 4, 1, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u32> = (0..37).collect();
        let out = par_map(inputs.clone(), 5, |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn default_threads_is_capped_by_trials() {
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn fold_is_bit_identical_across_thread_counts() {
        // A float accumulator whose value depends on merge order: the
        // block contract must make 1, 2, and 8 workers agree bit-for-bit.
        let fold = |acc: &mut (f64, u64), _i: usize, seed: u64| {
            acc.0 += (seed % 1000) as f64 * 0.001 + acc.0 * 1e-9;
            acc.1 += 1;
        };
        let merge = |a: &mut (f64, u64), b: (f64, u64)| {
            a.0 += b.0;
            a.1 += b.1;
        };
        let run = |threads| {
            run_trials_fold(1000, threads, 99, || (0.0f64, 0u64), fold, merge)
        };
        let one = run(1);
        for threads in [2, 8] {
            let t = run(threads);
            assert_eq!(one.0.to_bits(), t.0.to_bits(), "threads={threads}");
            assert_eq!(one.1, t.1);
        }
        assert_eq!(one.1, 1000);
    }

    #[test]
    fn resumable_fold_is_bit_identical_at_every_checkpoint() {
        use std::sync::Mutex;
        // Float accumulator so merge order matters: capture every
        // in-order prefix a straight run reports, then resume from each
        // one and demand bit-identity with the straight-through result —
        // including across thread counts on either side of the seam.
        let fold = |acc: &mut (f64, u64), _s: &mut (), i: usize, seed: u64| {
            acc.0 += (seed % 1000) as f64 * 0.001 + acc.0 * 1e-9 + i as f64 * 1e-6;
            acc.1 += 1;
        };
        let merge = |a: &mut (f64, u64), b: (f64, u64)| {
            a.0 += b.0;
            a.1 += b.1;
        };
        let trials = 777;
        let snaps: Mutex<Vec<FoldCheckpoint<(f64, u64)>>> = Mutex::new(Vec::new());
        let (straight, stats) = run_trials_fold_resumable(
            trials,
            1,
            42,
            || (),
            || (0.0f64, 0u64),
            fold,
            merge,
            None,
            &|done, acc| {
                snaps.lock().unwrap().push(FoldCheckpoint {
                    blocks_done: done,
                    acc: *acc,
                })
            },
        );
        let snaps = snaps.into_inner().unwrap();
        assert_eq!(snaps.len(), stats.blocks, "serial path reports every block");
        assert_eq!(snaps.last().unwrap().acc.1, trials as u64);
        for snap in snaps {
            for threads in [1, 4] {
                let (resumed, _) = run_trials_fold_resumable(
                    trials,
                    threads,
                    42,
                    || (),
                    || (0.0f64, 0u64),
                    fold,
                    merge,
                    Some(snap.clone()),
                    &|_, _| {},
                );
                assert_eq!(
                    straight.0.to_bits(),
                    resumed.0.to_bits(),
                    "resume at block {} threads {threads}",
                    snap.blocks_done
                );
                assert_eq!(straight.1, resumed.1);
            }
        }
        // A parallel straight run reports monotonically increasing
        // prefixes and lands on the same result.
        let last = Mutex::new(0usize);
        let (par, _) = run_trials_fold_resumable(
            trials,
            4,
            42,
            || (),
            || (0.0f64, 0u64),
            fold,
            merge,
            None,
            &|done, _| {
                let mut l = last.lock().unwrap();
                assert!(done > *l, "prefix advances in order");
                *l = done;
            },
        );
        assert_eq!(*last.lock().unwrap(), stats.blocks);
        assert_eq!(straight.0.to_bits(), par.0.to_bits());
    }

    #[test]
    fn fold_matches_buffered_aggregate() {
        // Exact (integer) accumulators must agree with the buffered path.
        let buffered: u64 = run_trials(500, 4, 7, |s| s % 17).iter().sum();
        let folded = run_trials_fold(
            500,
            4,
            7,
            || 0u64,
            |acc, _i, seed| *acc += seed % 17,
            |a, b| *a += b,
        );
        assert_eq!(buffered, folded);
    }

    #[test]
    fn fold_peak_pending_is_o_threads_not_o_trials() {
        let trials = 10_000;
        let threads = 8;
        let (count, stats) = run_trials_fold_with_stats(
            trials,
            threads,
            3,
            || 0u64,
            |acc, _i, _seed| *acc += 1,
            |a, b| *a += b,
        );
        assert_eq!(count, trials as u64);
        assert_eq!(stats.blocks, trials.div_ceil(fold_block_size(trials)));
        assert!(
            stats.peak_pending <= 3 * threads,
            "peak pending {} exceeds 3·threads",
            stats.peak_pending
        );
        assert!(stats.peak_pending < stats.blocks / 4, "window must not scale with trials");
    }

    #[test]
    fn small_trial_counts_still_split_into_many_blocks() {
        // A 25-trial fold (E14's n = 10⁵ point) must not collapse into
        // one serial block — every worker should get work.
        assert_eq!(fold_block_size(25), 1);
        assert_eq!(fold_block_size(640), 10);
        assert_eq!(fold_block_size(10_000), FOLD_BLOCK);
        assert_eq!(fold_block_size(0), 1);
        let (sum, stats) = run_trials_fold_with_stats(
            25,
            8,
            1,
            || 0u64,
            |acc, i, _| *acc += i as u64,
            |a, b| *a += b,
        );
        assert_eq!(sum, (0..25).sum::<u64>());
        assert_eq!(stats.blocks, 25);
    }

    #[test]
    fn fold_zero_trials_returns_init() {
        let out = run_trials_fold(0, 4, 1, || 41u32, |acc, _, _| *acc += 1, |a, b| *a += b);
        assert_eq!(out, 41);
    }

    #[test]
    fn fold_seeds_match_run_trials_seeds() {
        // Trial i must see derive_seed(master, i), exactly like run_trials.
        let seeds = run_trials(100, 1, 5, |s| s);
        let folded: Vec<u64> = run_trials_fold(
            100,
            1,
            5,
            Vec::new,
            |acc: &mut Vec<u64>, _i, seed| acc.push(seed),
            |a, mut b| a.append(&mut b),
        );
        assert_eq!(seeds, folded);
    }

    #[test]
    fn par_fold_streams_inputs_in_order() {
        let inputs: Vec<u32> = (0..301).collect();
        let folded: Vec<u32> = par_fold(
            &inputs,
            5,
            Vec::new,
            |acc: &mut Vec<u32>, _i, &x| acc.push(x * 2),
            |a, mut b| a.append(&mut b),
        );
        assert_eq!(folded, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_fold_is_bit_identical_and_reuses_worker_state() {
        // Scratch state must not change results: a fold that counts via
        // an arena-like scratch (here: a Vec used as a reusable buffer)
        // agrees with the plain fold for every thread count.
        let plain = run_trials_fold(
            777,
            4,
            21,
            || 0u64,
            |acc, _i, seed| *acc = acc.wrapping_add(seed % 97),
            |a, b| *a = a.wrapping_add(b),
        );
        for threads in [1usize, 3, 8] {
            let (scratched, _) = run_trials_fold_with_scratch(
                777,
                threads,
                21,
                Vec::<u64>::new,
                || 0u64,
                |acc, scratch: &mut Vec<u64>, _i, seed| {
                    // Reuse the scratch buffer across trials (its prior
                    // content must be irrelevant).
                    scratch.clear();
                    scratch.push(seed % 97);
                    *acc = acc.wrapping_add(scratch[0]);
                },
                |a, b| *a = a.wrapping_add(b),
            );
            assert_eq!(plain, scratched, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_per_worker_not_per_trial() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let created = AtomicUsize::new(0);
        let threads = 4;
        let trials = 2000;
        let _ = run_trials_fold_with_scratch(
            trials,
            threads,
            3,
            || {
                created.fetch_add(1, Ordering::Relaxed);
            },
            || 0u64,
            |acc, _s, _i, _seed| *acc += 1,
            |a, b| *a += b,
        );
        let made = created.load(Ordering::Relaxed);
        assert!(
            made <= threads,
            "scratch must be created once per worker, not per trial/block (made {made})"
        );
        assert!(made >= 1);
    }

    #[test]
    fn arena_scratch_trials_match_fresh_runs() {
        // The real thing: protocol trials through per-worker TrialArenas
        // must aggregate exactly like fresh-network trials.
        let cfg = rfc_core::RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
        let fresh = run_trials_fold(
            24,
            4,
            9,
            || (0u64, 0u64),
            |acc, _i, seed| {
                let r = rfc_core::run_protocol(&cfg, seed);
                acc.0 += r.outcome.is_consensus() as u64;
                acc.1 += r.metrics.bits_sent;
            },
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
            },
        );
        let (arena_agg, _) = run_trials_fold_with_scratch(
            24,
            4,
            9,
            rfc_core::TrialArena::new,
            || (0u64, 0u64),
            |acc, arena, _i, seed| {
                let r = arena.run_protocol(&cfg, seed);
                acc.0 += r.outcome.is_consensus() as u64;
                acc.1 += r.metrics.bits_sent;
            },
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
            },
        );
        assert_eq!(fresh, arena_agg);
    }

    #[test]
    fn heavy_closure_parallelism_smoke() {
        // Use actual protocol runs to confirm Send/Sync composition works.
        // (n = 16 has a ~3% per-run chance of a k-collision — a legitimate
        // w.h.p. failure — so require most, not all, runs to succeed.)
        let cfg = rfc_core::RunConfig::builder(16).gamma(2.0).build();
        let outcomes = run_trials(8, 4, 11, |seed| {
            rfc_core::run_protocol(&cfg, seed).outcome.is_consensus()
        });
        assert!(outcomes.iter().filter(|&&b| b).count() >= 6);
    }
}
