//! Embarrassingly-parallel Monte-Carlo trial execution.
//!
//! Every experiment reduces to "run `f(seed)` for `trials` independent
//! seeds and aggregate". Trials are distributed over a thread scope:
//! workers claim indices from a shared atomic counter (work stealing by
//! induction — no work queue needed when tasks are index-addressable) and
//! write results into pre-allocated slots, so the output order is
//! deterministic and independent of thread count and scheduling.
//!
//! Trial `i` always receives `derive_seed(master_seed, i)`, making every
//! aggregate a pure function of `(experiment, master_seed)` regardless of
//! parallelism — the property that lets EXPERIMENTS.md quote exact
//! numbers.

use gossip_net::rng::derive_seed;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the available parallelism, capped by
/// the trial count (spawning more workers than trials is pure overhead).
pub fn default_threads(trials: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1))
}

/// Run `trials` independent trials of `f` in parallel; `f` receives the
/// per-trial seed. Results are returned in trial order.
pub fn run_trials<T, F>(trials: usize, threads: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    if threads == 1 {
        return (0..trials)
            .map(|i| f(derive_seed(master_seed, i as u64)))
            .collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let result = f(derive_seed(master_seed, i as u64));
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot filled"))
        .collect()
}

/// Parallel map over an explicit input list (used for parameter sweeps
/// where each point is itself expensive); preserves input order.
pub fn par_map<I, T, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = inputs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return inputs.iter().map(&f).collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&inputs[i]);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 4, 7, |seed| seed);
        let expected: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run_trials(50, 1, 3, |s| s.wrapping_mul(3));
        let parallel = run_trials(50, 8, 3, |s| s.wrapping_mul(3));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 4, 1, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u32> = (0..37).collect();
        let out = par_map(inputs.clone(), 5, |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn default_threads_is_capped_by_trials() {
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn heavy_closure_parallelism_smoke() {
        // Use actual protocol runs to confirm Send/Sync composition works.
        // (n = 16 has a ~3% per-run chance of a k-collision — a legitimate
        // w.h.p. failure — so require most, not all, runs to succeed.)
        let cfg = rfc_core::RunConfig::builder(16).gamma(2.0).build();
        let outcomes = run_trials(8, 4, 11, |seed| {
            rfc_core::run_protocol(&cfg, seed).outcome.is_consensus()
        });
        assert!(outcomes.iter().filter(|&&b| b).count() >= 6);
    }
}
