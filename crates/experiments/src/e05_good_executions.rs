//! E5 — good executions (Lemma 3): the three events hold w.h.p.
//!
//! A *good* execution has (1) every active agent receiving votes, (2) all
//! `k_u` distinct, (3) Find-Min converging to one certificate. Lemma 3
//! guarantees all three w.h.p. for a suitable `γ(α)`. We measure the
//! empirical frequency of each event across `γ` and `n`, exhibiting the
//! transition: small `γ` breaks (1) and (3), while (2) holds whenever
//! `m = n³` regardless (birthday bound).

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol, RunConfig};

/// Run E5 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gammas = [0.25, 0.5, 1.0, 2.0, 3.0];
    let sizes: Vec<usize> = [64, 256, 1024]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(1024))
        .collect();
    let trials = opts.trials(240);

    let mut table = Table::new(
        format!("E5 — good-execution events vs γ and n ({trials} trials/cell)"),
        &[
            "n",
            "γ",
            "G1 votes>0",
            "G2 k distinct",
            "G3 minima agree",
            "good",
            "min votes",
            "success",
        ],
    );
    for &n in &sizes {
        for &gamma in &gammas {
            let cfg = RunConfig::builder(n)
                .gamma(gamma)
                .record_ops(true)
                .build();
            let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
                let r = run_protocol(&cfg, seed);
                let a = r.audit.expect("audit on");
                (
                    a.every_agent_voted_on,
                    a.k_values_distinct,
                    a.minima_agree,
                    a.is_good(),
                    a.votes_min,
                    r.outcome.is_consensus(),
                )
            });
            type Sample = (bool, bool, bool, bool, usize, bool);
            let count = |f: &dyn Fn(&Sample) -> bool| {
                results.iter().filter(|r| f(r)).count() as u64
            };
            let g1 = count(&|r| r.0);
            let g2 = count(&|r| r.1);
            let g3 = count(&|r| r.2);
            let good = count(&|r| r.3);
            let succ = count(&|r| r.5);
            let min_votes = results.iter().map(|r| r.4).min().unwrap_or(0);
            table.row(vec![
                n.to_string(),
                fmt::f2(gamma),
                fmt::f3(g1 as f64 / trials as f64),
                fmt::f3(g2 as f64 / trials as f64),
                fmt::f3(g3 as f64 / trials as f64),
                fmt::f3(good as f64 / trials as f64),
                min_votes.to_string(),
                fmt::f3(succ as f64 / trials as f64),
            ]);
        }
    }
    table.note("Lemma 3: Pr[good] ≥ 1 − n^{-Θ(1)} for suitable γ; the γ-transition is visible above");
    table.note(format!(
        "Chernoff sizing rule (rfc-stats): fault-free γ ≥ {:.2} keeps every agent voted-on w.h.p.",
        rfc_stats::gamma_for_fault_tolerance(0.0, 1.0)
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e05_high_gamma_rows_are_good() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        // Rows with γ = 3.00 must be (nearly) all good.
        for row in t.rows.iter().filter(|r| r[1] == "3.00") {
            let good: f64 = row[5].parse().unwrap();
            assert!(good > 0.9, "γ=3 should be good w.h.p.: {row:?}");
        }
        // Rows with γ = 0.25 at the largest n should show degradation in
        // G1 or G3 (they exist to exhibit the transition).
        let weak: Vec<_> = t.rows.iter().filter(|r| r[1] == "0.25").collect();
        assert!(!weak.is_empty());
    }
}
