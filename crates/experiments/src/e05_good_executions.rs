//! E5 — good executions (Lemma 3): the three events hold w.h.p.
//!
//! A *good* execution has (1) every active agent receiving votes, (2) all
//! `k_u` distinct, (3) Find-Min converging to one certificate. Lemma 3
//! guarantees all three w.h.p. for a suitable `γ(α)`. We measure the
//! empirical frequency of each event across `γ` and `n`, exhibiting the
//! transition: small `γ` breaks (1) and (3), while (2) holds whenever
//! `m = n³` regardless (birthday bound).

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold;
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol, RunConfig};

/// Streaming per-cell event tally: O(1) memory per (n, γ) cell however
/// many trials fill it.
#[derive(Default)]
struct Acc {
    g1: u64,
    g2: u64,
    g3: u64,
    good: u64,
    succ: u64,
    min_votes: Option<usize>,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        self.g1 += other.g1;
        self.g2 += other.g2;
        self.g3 += other.g3;
        self.good += other.good;
        self.succ += other.succ;
        self.min_votes = match (self.min_votes, other.min_votes) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Run E5 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gammas = [0.25, 0.5, 1.0, 2.0, 3.0];
    let sizes: Vec<usize> = [64, 256, 1024]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(1024))
        .collect();
    let trials = opts.trials(240);

    let mut table = Table::new(
        format!("E5 — good-execution events vs γ and n ({trials} trials/cell)"),
        &[
            "n",
            "γ",
            "G1 votes>0",
            "G2 k distinct",
            "G3 minima agree",
            "good",
            "min votes",
            "success",
        ],
    );
    for &n in &sizes {
        for &gamma in &gammas {
            let cfg = RunConfig::builder(n)
                .gamma(gamma)
                .record_ops(opts.oplog)
                .build();
            let acc = run_trials_fold(
                trials,
                opts.threads_for(trials),
                opts.seed,
                Acc::default,
                |acc, _i, seed| {
                    let r = run_protocol(&cfg, seed);
                    // `--no-oplog` drops the audit (digests unchanged);
                    // the audit columns then report "off".
                    if let Some(a) = r.audit {
                        acc.g1 += a.every_agent_voted_on as u64;
                        acc.g2 += a.k_values_distinct as u64;
                        acc.g3 += a.minima_agree as u64;
                        acc.good += a.is_good() as u64;
                        acc.min_votes = Some(match acc.min_votes {
                            Some(m) => m.min(a.votes_min),
                            None => a.votes_min,
                        });
                    }
                    acc.succ += r.outcome.is_consensus() as u64;
                },
                Acc::merge,
            );
            let (g1, g2, g3, good, succ) = (acc.g1, acc.g2, acc.g3, acc.good, acc.succ);
            let audit_cell = |hits: u64| {
                if opts.oplog {
                    fmt::f3(hits as f64 / trials as f64)
                } else {
                    "off".to_string()
                }
            };
            let min_votes = match acc.min_votes {
                Some(m) => m.to_string(),
                None => "off".to_string(),
            };
            table.row(vec![
                n.to_string(),
                fmt::f2(gamma),
                audit_cell(g1),
                audit_cell(g2),
                audit_cell(g3),
                audit_cell(good),
                min_votes,
                fmt::f3(succ as f64 / trials as f64),
            ]);
        }
    }
    table.note("Lemma 3: Pr[good] ≥ 1 − n^{-Θ(1)} for suitable γ; the γ-transition is visible above");
    table.note(format!(
        "Chernoff sizing rule (rfc-stats): fault-free γ ≥ {:.2} keeps every agent voted-on w.h.p.",
        rfc_stats::gamma_for_fault_tolerance(0.0, 1.0)
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e05_high_gamma_rows_are_good() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        // Rows with γ = 3.00 must be (nearly) all good.
        for row in t.rows.iter().filter(|r| r[1] == "3.00") {
            let good: f64 = row[5].parse().unwrap();
            assert!(good > 0.9, "γ=3 should be good w.h.p.: {row:?}");
        }
        // Rows with γ = 0.25 at the largest n should show degradation in
        // G1 or G3 (they exist to exhibit the transition).
        let weak: Vec<_> = t.rows.iter().filter(|r| r[1] == "0.25").collect();
        assert!(!weak.is_empty());
    }
}
