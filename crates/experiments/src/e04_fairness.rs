//! E4 — fairness: `Pr[winning color = c] = fraction(c)`.
//!
//! The defining property. For several initial color configurations we run
//! many independent executions, tally the winning colors, and test the
//! empirical distribution against the initial-fraction target with a χ²
//! goodness-of-fit test and the total-variation distance. The 3-majority
//! plurality dynamics run alongside as the *unfair* comparator: on a
//! 60/40 split it converges to the plurality color essentially always.

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold;
use crate::table::{fmt, Table};
use baselines::plurality::run_plurality;
use baselines::voter::run_voter;
use rfc_core::outcome::Outcome;
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::{chi_square_gof, tv_from_counts};

/// One fairness configuration: a name and the color counts.
fn configs(n: usize) -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("50/50", vec![n / 2, n - n / 2]),
        ("75/25", vec![3 * n / 4, n - 3 * n / 4]),
        ("90/10", vec![9 * n / 10, n - 9 * n / 10]),
        ("thirds", vec![n / 3, n / 3, n - 2 * (n / 3)]),
        (
            "8 colors",
            {
                let base = n / 8;
                let mut v = vec![base; 7];
                v.push(n - 7 * base);
                v
            },
        ),
    ]
}

/// Run E4 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = 96;
    let gamma = 3.0;
    let trials = opts.trials(1600);

    let mut table = Table::new(
        format!("E4 — fairness of the winning-color distribution (n = {n}, γ = {gamma}, {trials} trials)"),
        &["config", "target(c0)", "observed(c0)", "TV dist", "χ² p-value", "fails", "verdict"],
    );
    for (name, counts) in configs(n) {
        let k = counts.len();
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(counts.clone())
            .build();
        // Streaming tally: wins-per-color and failures, O(colors) memory
        // regardless of the trial count.
        let (wins, fails) = run_trials_fold(
            trials,
            opts.threads_for(trials),
            opts.seed,
            || (vec![0u64; k], 0u64),
            |acc, _i, seed| match run_protocol(&cfg, seed).outcome {
                Outcome::Consensus(c) => acc.0[c as usize] += 1,
                Outcome::Fail => acc.1 += 1,
            },
            |a, b| {
                for (w, o) in a.0.iter_mut().zip(&b.0) {
                    *w += o;
                }
                a.1 += b.1;
            },
        );
        let decided: u64 = wins.iter().sum();
        let expected: Vec<f64> = counts
            .iter()
            .map(|&c| decided as f64 * c as f64 / n as f64)
            .collect();
        let target: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        let gof = chi_square_gof(&wins, &expected);
        let tv = tv_from_counts(&wins, &target);
        let verdict = if gof.consistent_at(0.01) { "fair" } else { "BIASED" };
        table.row(vec![
            name.to_string(),
            fmt::f3(target[0]),
            fmt::f3(wins[0] as f64 / decided.max(1) as f64),
            fmt::f3(tv),
            fmt::f3(gof.p_value),
            fails.to_string(),
            verdict.to_string(),
        ]);
    }
    table.note("χ² goodness-of-fit of winning-color counts vs initial fractions; α = 0.01");
    table.note("paper claim: Pr[win = c] equals the fraction of active agents supporting c");

    // The unfair comparator.
    let mut cmp = Table::new(
        format!("E4b — 3-majority plurality dynamics on a 60/40 split (n = {n})"),
        &["protocol", "minority win rate", "expected if fair"],
    );
    let trials_b = opts.trials(200);
    // Streaming success counter shared by the comparator arms.
    let count_true = |trials: usize, f: &(dyn Fn(u64) -> bool + Sync)| -> u64 {
        run_trials_fold(
            trials,
            opts.threads_for(trials),
            opts.seed,
            || 0u64,
            |acc, _i, seed| *acc += f(seed) as u64,
            |a, b| *a += b,
        )
    };
    let colors: Vec<_> = (0..n).map(|i| if i < 3 * n / 5 { 0 } else { 1 }).collect();
    let plurality_minority = count_true(trials_b, &|seed| {
        run_plurality(n, &colors, seed, 4000).consensus == Some(1)
    });
    let cfg = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![3 * n / 5, n - 3 * n / 5])
        .build();
    let p_minority = count_true(trials_b, &|seed| {
        run_protocol(&cfg, seed).outcome == Outcome::Consensus(1)
    });
    cmp.row(vec![
        "3-majority (unfair)".into(),
        fmt::rate_ci(plurality_minority, trials_b as u64),
        "0.400".into(),
    ]);
    cmp.row(vec![
        "protocol P (fair)".into(),
        fmt::rate_ci(p_minority, trials_b as u64),
        "0.400".into(),
    ]);
    cmp.note("plurality dynamics crush the minority; P gives it its fair 40%");

    // E4c — the voter model (Hassin–Peleg [15]): exactly fair, but slow
    // and defenseless against one stubborn agent.
    let trials_c = opts.trials(200);
    let mut voter = Table::new(
        format!("E4c — voter-model dynamics vs P on a 2/3–1/3 split (n = {n}, {trials_c} trials)"),
        &["protocol", "deviation", "minority win rate", "mean rounds"],
    );
    let colors_c: Vec<u32> = (0..n).map(|i| if i < 2 * n / 3 { 0 } else { 1 }).collect();
    // Streaming (wins, rounds-sum) fold for the voter arms.
    let voter_arm = |stubborn: &[u32], budget: usize| -> (u64, f64) {
        run_trials_fold(
            trials_c,
            opts.threads_for(trials_c),
            opts.seed,
            || (0u64, 0.0f64),
            |acc, _i, seed| {
                let r = run_voter(n, &colors_c, stubborn, seed, budget);
                acc.0 += (r.consensus == Some(1)) as u64;
                acc.1 += r.rounds as f64;
            },
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
            },
        )
    };
    // Honest voter model.
    let (v_wins, v_rounds_sum) = voter_arm(&[], 200_000);
    let v_rounds: f64 = v_rounds_sum / trials_c as f64;
    voter.row(vec![
        "voter model".into(),
        "none".into(),
        fmt::rate_ci(v_wins, trials_c as u64),
        fmt::f2(v_rounds),
    ]);
    // Voter model with ONE stubborn minority agent.
    let stubborn_id = (2 * n / 3) as u32; // a minority-color agent
    let (s_wins, s_rounds_sum) = voter_arm(&[stubborn_id], 400_000);
    let s_rounds: f64 = s_rounds_sum / trials_c as f64;
    voter.row(vec![
        "voter model".into(),
        "1 stubborn agent".into(),
        fmt::rate_ci(s_wins, trials_c as u64),
        fmt::f2(s_rounds),
    ]);
    // Protocol P at the same split for reference.
    let cfg_c = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![2 * n / 3, n - 2 * n / 3])
        .build();
    let p_wins = count_true(trials_c, &|seed| {
        run_protocol(&cfg_c, seed).outcome == Outcome::Consensus(1)
    });
    voter.row(vec![
        "protocol P".into(),
        "none".into(),
        fmt::rate_ci(p_wins, trials_c as u64),
        cfg_c.params().total_rounds().to_string(),
    ]);
    voter.note("the voter model is exactly fair (martingale) but Θ(n)-slow, and ONE stubborn agent wins every run");
    voter.note("fairness alone was known (Hassin–Peleg); rational fairness at O(log n) gossip cost is the paper's contribution");
    vec![table, cmp, voter]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e04_quick_is_fair() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        for row in &t.rows {
            assert_eq!(row[6], "fair", "config {} flagged biased: {row:?}", row[0]);
            assert_eq!(row[5], "0", "honest runs must not fail");
        }
    }
}
