//! E4 — fairness: `Pr[winning color = c] = fraction(c)`.
//!
//! The defining property. For several initial color configurations we run
//! many independent executions, tally the winning colors, and test the
//! empirical distribution against the initial-fraction target with a χ²
//! goodness-of-fit test and the total-variation distance. The 3-majority
//! plurality dynamics run alongside as the *unfair* comparator: on a
//! 60/40 split it converges to the plurality color essentially always.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use baselines::plurality::run_plurality;
use baselines::voter::run_voter;
use rfc_core::outcome::Outcome;
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::{chi_square_gof, tv_from_counts};

/// One fairness configuration: a name and the color counts.
fn configs(n: usize) -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("50/50", vec![n / 2, n - n / 2]),
        ("75/25", vec![3 * n / 4, n - 3 * n / 4]),
        ("90/10", vec![9 * n / 10, n - 9 * n / 10]),
        ("thirds", vec![n / 3, n / 3, n - 2 * (n / 3)]),
        (
            "8 colors",
            {
                let base = n / 8;
                let mut v = vec![base; 7];
                v.push(n - 7 * base);
                v
            },
        ),
    ]
}

/// Run E4 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = 96;
    let gamma = 3.0;
    let trials = opts.trials(1600);

    let mut table = Table::new(
        format!("E4 — fairness of the winning-color distribution (n = {n}, γ = {gamma}, {trials} trials)"),
        &["config", "target(c0)", "observed(c0)", "TV dist", "χ² p-value", "fails", "verdict"],
    );
    for (name, counts) in configs(n) {
        let k = counts.len();
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(counts.clone())
            .build();
        let outcomes = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            run_protocol(&cfg, seed).outcome
        });
        let mut wins = vec![0u64; k];
        let mut fails = 0u64;
        for o in &outcomes {
            match o {
                Outcome::Consensus(c) => wins[*c as usize] += 1,
                Outcome::Fail => fails += 1,
            }
        }
        let decided: u64 = wins.iter().sum();
        let expected: Vec<f64> = counts
            .iter()
            .map(|&c| decided as f64 * c as f64 / n as f64)
            .collect();
        let target: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        let gof = chi_square_gof(&wins, &expected);
        let tv = tv_from_counts(&wins, &target);
        let verdict = if gof.consistent_at(0.01) { "fair" } else { "BIASED" };
        table.row(vec![
            name.to_string(),
            fmt::f3(target[0]),
            fmt::f3(wins[0] as f64 / decided.max(1) as f64),
            fmt::f3(tv),
            fmt::f3(gof.p_value),
            fails.to_string(),
            verdict.to_string(),
        ]);
    }
    table.note("χ² goodness-of-fit of winning-color counts vs initial fractions; α = 0.01");
    table.note("paper claim: Pr[win = c] equals the fraction of active agents supporting c");

    // The unfair comparator.
    let mut cmp = Table::new(
        format!("E4b — 3-majority plurality dynamics on a 60/40 split (n = {n})"),
        &["protocol", "minority win rate", "expected if fair"],
    );
    let trials_b = opts.trials(200);
    let colors: Vec<_> = (0..n).map(|i| if i < 3 * n / 5 { 0 } else { 1 }).collect();
    let plurality_minority = run_trials(trials_b, opts.threads_for(trials_b), opts.seed, |seed| {
        run_plurality(n, &colors, seed, 4000).consensus == Some(1)
    })
    .iter()
    .filter(|&&b| b)
    .count() as u64;
    let cfg = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![3 * n / 5, n - 3 * n / 5])
        .build();
    let p_minority = run_trials(trials_b, opts.threads_for(trials_b), opts.seed, |seed| {
        run_protocol(&cfg, seed).outcome == Outcome::Consensus(1)
    })
    .iter()
    .filter(|&&b| b)
    .count() as u64;
    cmp.row(vec![
        "3-majority (unfair)".into(),
        fmt::rate_ci(plurality_minority, trials_b as u64),
        "0.400".into(),
    ]);
    cmp.row(vec![
        "protocol P (fair)".into(),
        fmt::rate_ci(p_minority, trials_b as u64),
        "0.400".into(),
    ]);
    cmp.note("plurality dynamics crush the minority; P gives it its fair 40%");

    // E4c — the voter model (Hassin–Peleg [15]): exactly fair, but slow
    // and defenseless against one stubborn agent.
    let trials_c = opts.trials(200);
    let mut voter = Table::new(
        format!("E4c — voter-model dynamics vs P on a 2/3–1/3 split (n = {n}, {trials_c} trials)"),
        &["protocol", "deviation", "minority win rate", "mean rounds"],
    );
    let colors_c: Vec<u32> = (0..n).map(|i| if i < 2 * n / 3 { 0 } else { 1 }).collect();
    // Honest voter model.
    let voter_runs = run_trials(trials_c, opts.threads_for(trials_c), opts.seed, |seed| {
        let r = run_voter(n, &colors_c, &[], seed, 200_000);
        (r.consensus == Some(1), r.rounds as f64)
    });
    let v_wins = voter_runs.iter().filter(|r| r.0).count() as u64;
    let v_rounds: f64 =
        voter_runs.iter().map(|r| r.1).sum::<f64>() / trials_c as f64;
    voter.row(vec![
        "voter model".into(),
        "none".into(),
        fmt::rate_ci(v_wins, trials_c as u64),
        fmt::f2(v_rounds),
    ]);
    // Voter model with ONE stubborn minority agent.
    let stubborn_id = (2 * n / 3) as u32; // a minority-color agent
    let stub_runs = run_trials(trials_c, opts.threads_for(trials_c), opts.seed, |seed| {
        let r = run_voter(n, &colors_c, &[stubborn_id], seed, 400_000);
        (r.consensus == Some(1), r.rounds as f64)
    });
    let s_wins = stub_runs.iter().filter(|r| r.0).count() as u64;
    let s_rounds: f64 = stub_runs.iter().map(|r| r.1).sum::<f64>() / trials_c as f64;
    voter.row(vec![
        "voter model".into(),
        "1 stubborn agent".into(),
        fmt::rate_ci(s_wins, trials_c as u64),
        fmt::f2(s_rounds),
    ]);
    // Protocol P at the same split for reference.
    let cfg_c = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![2 * n / 3, n - 2 * n / 3])
        .build();
    let p_runs = run_trials(trials_c, opts.threads_for(trials_c), opts.seed, |seed| {
        run_protocol(&cfg_c, seed).outcome == Outcome::Consensus(1)
    });
    let p_wins = p_runs.iter().filter(|&&b| b).count() as u64;
    voter.row(vec![
        "protocol P".into(),
        "none".into(),
        fmt::rate_ci(p_wins, trials_c as u64),
        cfg_c.params().total_rounds().to_string(),
    ]);
    voter.note("the voter model is exactly fair (martingale) but Θ(n)-slow, and ONE stubborn agent wins every run");
    voter.note("fairness alone was known (Hassin–Peleg); rational fairness at O(log n) gossip cost is the paper's contribution");
    vec![table, cmp, voter]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e04_quick_is_fair() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        for row in &t.rows {
            assert_eq!(row[6], "fair", "config {} flagged biased: {row:?}", row[0]);
            assert_eq!(row[5], "0", "honest runs must not fail");
        }
    }
}
