//! E7 — the whp t-strong equilibrium (Theorem 7).
//!
//! For every strategy in the attack suite and a sweep of coalition sizes
//! `t`, paired honest/deviating trials measure whether deviating pushes
//! the coalition's win probability above its fair share. The theorem
//! predicts: no strategy gains for `t = o(n/log n)`; attacks based on
//! forging mostly convert losses into `⊥`.

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold_with_scratch;
use crate::table::{fmt, Table};
use adversary::coalition::{select_members, CoalitionSelection};
use adversary::harness::{coalition_colors, run_attack_trial_in, ArmStats};
use adversary::strategies::spy_tune::SpyAndTune;
use adversary::strategies::standard_attacks;
use rfc_core::runner::{ColorSpec, RunConfig, TrialArena};

/// Run E7 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = if opts.quick { 48 } else { 128 };
    let gamma = 3.0;
    let chi = 1.0;
    let log_n = gossip_net::ids::ceil_log2(n) as usize;
    let t_values: Vec<usize> = vec![1, log_n, n / 8];
    let trials = opts.trials(240);

    let mut table = Table::new(
        format!(
            "E7 — coalition deviations vs honest play (n = {n}, γ = {gamma}, χ = {chi}, {trials} paired trials)"
        ),
        &[
            "strategy",
            "t",
            "fair share",
            "honest win",
            "deviating win",
            "dev fails",
            "Δ utility",
            "verdict",
        ],
    );

    for strategy in standard_attacks() {
        for &t in &t_values {
            let members = select_members(n, t, CoalitionSelection::Random, opts.seed);
            let mut cfg = RunConfig::builder(n).gamma(gamma).build();
            cfg.colors = ColorSpec::Explicit(coalition_colors(n, &members));

            let strategy_ref: &dyn adversary::Strategy = strategy.as_ref();
            let members_ref = &members;
            let cfg_ref = &cfg;
            // Paired trials stream directly into per-arm ArmStats — the
            // RunReports are folded away instead of buffered — through a
            // per-worker TrialArena serving both arms of every pair.
            let ((honest, deviating), _) = run_trials_fold_with_scratch(
                trials,
                opts.threads_for(trials),
                opts.seed,
                TrialArena::new,
                <(ArmStats, ArmStats)>::default,
                move |acc, arena, _i, seed| {
                    let h = arena.run_protocol(cfg_ref, seed);
                    acc.0.record(&h, members_ref, chi);
                    let d = run_attack_trial_in(arena, cfg_ref, strategy_ref, members_ref, seed);
                    acc.1.record(&d, members_ref, chi);
                },
                |a, b| {
                    a.0.merge(&b.0);
                    a.1.merge(&b.1);
                },
            );
            let h_ci = honest.color_win_ci();
            let d_ci = deviating.color_win_ci();
            let gain = d_ci.lo > h_ci.hi;
            let delta = deviating.mean_utility() - honest.mean_utility();
            table.row(vec![
                strategy.name().to_string(),
                t.to_string(),
                fmt::f3(t as f64 / n as f64),
                fmt::rate_ci(honest.coalition_color_wins, honest.trials),
                fmt::rate_ci(deviating.coalition_color_wins, deviating.trials),
                fmt::f3(deviating.fail_rate()),
                fmt::f3(delta),
                if gain { "GAIN (!)" } else { "no gain" }.to_string(),
            ]);
        }
    }
    table.note("verdict 'no gain': deviating win-rate CI does not exceed the honest CI (95%)");
    table.note("paper claim: whp t-strong equilibrium for t = o(n/log n) (Theorem 7)");

    // E7b — tightness probe: sweep the strongest undetectable attack
    // (spy-and-tune) from inside the theorem's regime to t = n/2. The
    // equilibrium is expected to BREAK at t = Θ(n): with that many spies
    // the coalition harvests every honest intention list before its last
    // member binds, pins k_leader = 0, and wins undetectably — Lemma
    // 6(3)'s unknown-vote condition genuinely fails. The theorem's
    // coalition bound is necessary, not proof slack.
    let mut probe = Table::new(
        format!("E7b — tightness probe: spy-tune vs coalition size (n = {n}, {trials} paired trials)"),
        &["t", "t/n", "fair share", "deviating win", "dev fails", "regime"],
    );
    let probe_ts: Vec<usize> = vec![
        1,
        log_n,
        n / 8,
        n / 4,
        3 * n / 8,
        n / 2,
    ];
    for &t in &probe_ts {
        let members = select_members(n, t, CoalitionSelection::Random, opts.seed ^ 0xB);
        let mut cfg = RunConfig::builder(n).gamma(gamma).build();
        cfg.colors = ColorSpec::Explicit(coalition_colors(n, &members));
        let strategy = SpyAndTune;
        let members_ref = &members;
        let cfg_ref = &cfg;
        let (arm, _) = run_trials_fold_with_scratch(
            trials,
            opts.threads_for(trials),
            opts.seed,
            TrialArena::new,
            ArmStats::default,
            move |acc, arena, _i, seed| {
                let r = run_attack_trial_in(arena, cfg_ref, &strategy, members_ref, seed);
                acc.record(&r, members_ref, chi);
            },
            |a, b| a.merge(&b),
        );
        let regime = if t * gossip_net::ids::ceil_log2(n) as usize <= n {
            "t = o(n/log n)"
        } else {
            "beyond theorem"
        };
        probe.row(vec![
            t.to_string(),
            fmt::f3(t as f64 / n as f64),
            fmt::f3(t as f64 / n as f64),
            fmt::rate_ci(arm.coalition_color_wins, arm.trials),
            fmt::f3(arm.fail_rate()),
            regime.to_string(),
        ]);
    }
    probe.note("inside the regime the win rate tracks the fair share; at t = Θ(n) the attack pins k_leader = 0 and wins undetectably");
    probe.note("this measured breakdown shows Theorem 7's t = o(n/log n) bound is essential");
    vec![table, probe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e07_no_strategy_gains() {
        let mut o = ExpOptions::quick();
        o.quick = true;
        let tables = run(&o);
        let t = &tables[0];
        assert!(t.rows.len() >= 10);
        for row in &t.rows {
            assert_eq!(
                row[7], "no gain",
                "strategy {} at t={} shows a gain: {row:?}",
                row[0], row[1]
            );
        }
    }
}
