//! E12 — the paper's open problems: other graphs, asynchronous GOSSIP.
//!
//! The Conclusions suggest two directions; both are built and measured:
//!
//! * **Other graph classes** — the protocol runs unchanged with
//!   neighbor-sampled operations. Dense random graphs (Erdős–Rényi above
//!   the connectivity threshold, random regular graphs of logarithmic
//!   degree) behave like the complete graph: the pull-broadcast still
//!   mixes in `O(log n)`. The ring does not — Find-Min cannot cover
//!   diameter `n/2` in `O(log n)` rounds, so the protocol (correctly)
//!   fails rather than mis-converges.
//! * **Sequential (asynchronous) GOSSIP** — one random agent wakes per
//!   tick; with per-phase budgets of `slack·n·q` ticks the protocol
//!   succeeds w.h.p. from `slack ≥ 2`, failing gracefully when the budget
//!   is too tight.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use rfc_core::asynchronous::run_protocol_async;
use rfc_core::outcome::Outcome;
use rfc_core::runner::{run_protocol, RunConfig, TopologySpec};

/// Run E12 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = if opts.quick { 64 } else { 128 };
    let gamma = 3.0;
    let trials = opts.trials(120);

    // (a) topology sweep.
    let mut topo_table = Table::new(
        format!("E12a — protocol P on other graph classes (n = {n}, γ = {gamma}, {trials} trials)"),
        &["topology", "success rate", "minority win rate (fair = 0.25)", "silent-split rate"],
    );
    let log_n = gossip_net::ids::ceil_log2(n) as usize;
    let specs: Vec<(String, TopologySpec)> = vec![
        ("complete".into(), TopologySpec::Complete),
        (
            format!("G(n, p = 4·log n/n = {:.3})", 4.0 * log_n as f64 / n as f64),
            TopologySpec::ErdosRenyi {
                p: 4.0 * log_n as f64 / n as f64,
            },
        ),
        ("G(n, p = 0.25)".into(), TopologySpec::ErdosRenyi { p: 0.25 }),
        (
            format!("random {}-regular", 2 * log_n),
            TopologySpec::RandomRegular { d: 2 * log_n },
        ),
        ("ring".into(), TopologySpec::Ring),
    ];
    for (name, topo) in specs {
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![3 * n / 4, n / 4])
            .topology(topo)
            .build();
        let outcomes = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            let r = run_protocol(&cfg, seed);
            let split = !r.outcome.is_consensus()
                && r.decisions
                    .iter()
                    .filter_map(|d| match d {
                        rfc_core::Decision::Decided(c) => Some(*c),
                        _ => None,
                    })
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    > 1;
            (r.outcome, split)
        });
        let success = outcomes.iter().filter(|(o, _)| o.is_consensus()).count() as u64;
        let minority = outcomes
            .iter()
            .filter(|(o, _)| *o == Outcome::Consensus(1))
            .count() as u64;
        let splits = outcomes.iter().filter(|(_, s)| *s).count() as u64;
        topo_table.row(vec![
            name,
            fmt::rate_ci(success, trials as u64),
            fmt::rate_ci(minority, success.max(1)),
            fmt::f3(splits as f64 / trials as f64),
        ]);
    }
    topo_table.note("expander-like graphs match the complete graph; the ring cannot converge (diameter ≫ q)");
    topo_table.note("silent-split: honest agents in different regions decide different colors — Coherence's mismatch detection is only local, so safety genuinely needs the complete graph's mixing");
    topo_table.note("open problem 1 of the paper's Conclusions");

    // (b) asynchronous GOSSIP.
    let async_trials = opts.trials(80);
    let mut async_table = Table::new(
        format!("E12b — sequential (async) GOSSIP (n = {n}, γ = {gamma}, {async_trials} trials)"),
        &["slack", "ticks per run", "success rate"],
    );
    for slack in [1usize, 2, 3] {
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![n / 2, n - n / 2])
            .build();
        let q = cfg.params().q;
        let results = run_trials(
            async_trials,
            opts.threads_for(async_trials),
            opts.seed,
            move |seed| run_protocol_async(&cfg, seed, slack).outcome.is_consensus(),
        );
        let success = results.iter().filter(|&&b| b).count() as u64;
        async_table.row(vec![
            slack.to_string(),
            (4 * slack * n * q).to_string(),
            fmt::rate_ci(success, async_trials as u64),
        ]);
    }
    async_table.note("Θ(n log n) activations per phase suffice; slack 1 under-provisions voting activations");
    async_table.note("open problem 2 of the paper's Conclusions");
    vec![topo_table, async_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_complete_and_dense_succeed_ring_fails() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let rate_of = |idx: usize| -> f64 {
            t.rows[idx][1].split(' ').next().unwrap().parse().unwrap()
        };
        assert!(rate_of(0) > 0.95, "complete graph: {:?}", t.rows[0]);
        assert!(rate_of(2) > 0.9, "dense ER: {:?}", t.rows[2]);
        let ring = t.rows.last().unwrap();
        let ring_rate: f64 = ring[1].split(' ').next().unwrap().parse().unwrap();
        assert!(ring_rate < 0.1, "ring should fail: {ring:?}");
    }

    #[test]
    fn e12_async_succeeds_with_slack() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[1];
        let slack3: f64 = t.rows[2][2].split(' ').next().unwrap().parse().unwrap();
        assert!(slack3 > 0.9, "slack 3 should succeed: {:?}", t.rows[2]);
    }
}
