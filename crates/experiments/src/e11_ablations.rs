//! E11 — ablations: every design choice pays its way.
//!
//! Three knobs are removed one at a time and the damage measured:
//!
//! * **m = n³ → small m** — `k` values collide, the minimum stops being
//!   unique, the network splits between equal-k certificates and
//!   Coherence converts the split into failure (Lemma 3(2)'s purpose).
//! * **drop Verification** — the forge-tuned-vote attack, harmless
//!   against full `P`, now wins outright: the fabricated `k = 0`
//!   certificate spreads, nobody checks `W` against the ledgers.
//! * **drop Coherence** — partial Find-Min convergence goes *undetected*:
//!   instead of a clean failure the network silently splits (measured as
//!   disagreement), which is how suppression-style censorship becomes
//!   dangerous.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use adversary::harness::{coalition_colors, run_attack_trial};
use adversary::strategies::forge_cert::ForgeCert;
use rfc_core::outcome::Outcome;
use rfc_core::runner::{run_protocol, ColorSpec, RunConfig};

/// Run E11 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = 64;
    let gamma = 3.0;
    let trials = opts.trials(300);

    // (a) vote-space size m.
    let mut m_table = Table::new(
        format!("E11a — ablating m = n³ (n = {n}, {trials} trials)"),
        &["m", "k collisions", "success rate"],
    );
    for (label, m) in [
        ("n³ (paper)", (n as u64).pow(3)),
        ("n²", (n as u64).pow(2)),
        ("n", n as u64),
        ("8", 8u64),
    ] {
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .m(m)
            .record_ops(opts.oplog)
            .build();
        let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            let r = run_protocol(&cfg, seed);
            (
                // `--no-oplog` drops the audit; the collision column
                // then reports "off" below.
                r.audit.as_ref().map(|a| !a.k_values_distinct),
                r.outcome.is_consensus(),
            )
        });
        let collisions = results.iter().filter(|r| r.0 == Some(true)).count() as u64;
        let success = results.iter().filter(|r| r.1).count() as u64;
        m_table.row(vec![
            label.to_string(),
            if opts.oplog {
                fmt::rate_ci(collisions, trials as u64)
            } else {
                "off".to_string()
            },
            fmt::rate_ci(success, trials as u64),
        ]);
    }
    m_table.note("small m ⇒ birthday collisions ⇒ non-unique minimum ⇒ split ⇒ Coherence fails the run");

    // (b) + (c): component ablations under the forge-tuned-vote attack.
    let members = vec![11u32];
    let strategy = ForgeCert::tuned_vote();
    let mut comp = Table::new(
        format!("E11b — protocol components vs the forge-tuned-vote attack (n = {n}, t = 1, {trials} trials)"),
        &["configuration", "coalition win rate", "fail rate", "honest-split rate"],
    );
    for (label, skip_verification, skip_coherence) in [
        ("full protocol P", false, false),
        ("no verification", true, false),
        ("no coherence", false, true),
        ("neither check", true, true),
    ] {
        let mut cfg = RunConfig::builder(n)
            .gamma(gamma)
            .skip_verification(skip_verification)
            .skip_coherence(skip_coherence)
            .build();
        cfg.colors = ColorSpec::Explicit(coalition_colors(n, &members));
        let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            let r = run_attack_trial(&cfg, &strategy, &members, seed);
            let split = matches!(r.outcome, Outcome::Fail)
                && r.decisions
                    .iter()
                    .filter_map(|d| match d {
                        rfc_core::Decision::Decided(c) => Some(*c),
                        _ => None,
                    })
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    > 1;
            (r.outcome, split)
        });
        let wins = results
            .iter()
            .filter(|r| r.0 == Outcome::Consensus(adversary::COALITION_COLOR))
            .count() as u64;
        let fails = results.iter().filter(|r| r.0 == Outcome::Fail).count() as u64;
        let splits = results.iter().filter(|r| r.1).count() as u64;
        comp.row(vec![
            label.to_string(),
            fmt::rate_ci(wins, trials as u64),
            fmt::f3(fails as f64 / trials as f64),
            fmt::f3(splits as f64 / trials as f64),
        ]);
    }
    comp.note("fair share for t = 1 is 1/64 ≈ 0.016; 'no verification' hands the coalition every run");
    comp.note("honest-split: active honest agents decided *different* colors (silent safety violation)");
    vec![m_table, comp]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_verification_is_load_bearing() {
        let tables = run(&ExpOptions::quick());
        let comp = &tables[1];
        let win_of = |label: &str| -> f64 {
            comp.rows
                .iter()
                .find(|r| r[0] == label)
                .unwrap_or_else(|| panic!("row {label}"))[1]
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(win_of("full protocol P") < 0.2, "P must resist the attack");
        assert!(
            win_of("no verification") > 0.8,
            "without verification the forgery must win"
        );
    }

    #[test]
    fn e11_small_m_collides() {
        let tables = run(&ExpOptions::quick());
        let m_table = &tables[0];
        let coll_m8: f64 = m_table.rows[3][1].split(' ').next().unwrap().parse().unwrap();
        assert!(coll_m8 > 0.9, "m=8 must collide almost surely");
        let coll_paper: f64 = m_table.rows[0][1].split(' ').next().unwrap().parse().unwrap();
        assert!(coll_paper < 0.05, "m=n³ must (almost) never collide");
    }
}
