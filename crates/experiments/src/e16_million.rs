//! E16 — the first million-agent run: intra-trial sharding under the
//! staged round engine.
//!
//! E14 scales *trials* across cores; every trial stays single-threaded
//! inside, so one giant run — the regime the paper's asymptotics
//! actually concern — could use exactly one core. The staged engine
//! (`gossip_net::network::staged`) opens the other axis: plan and apply
//! shard the agents of **one** trial across worker threads under the
//! [`RngDiscipline::PerAgent`] loss discipline, and the two layers
//! compose (shards within a trial × arenas across trials — the
//! `intra_trial` row of `rfc-bench` measures the composition).
//!
//! This experiment runs **single trials** at `n` up to 10⁶ and sweeps
//! the shard count, reporting per row:
//!
//! * **rounds/s** and **Magent·rounds/s** — wall-clock throughput of
//!   the staged engine at this shard count;
//! * **bytes/agent** — wire traffic per agent (seed-deterministic);
//! * **ΔRSS** — `VmHWM` growth attributed to the row (the first row of
//!   each `n` pays the arena's build; later rows reuse it);
//! * **digest** — an FNV-1a fingerprint over the deterministic headline
//!   fields of the [`RunReport`]. The experiment *asserts* that every
//!   shard count of an `n` produces the same digest: the scaling sweep
//!   is also a live bit-identity check, machine-verified on every run.
//!
//! Like E14, the throughput/ΔRSS columns are measurements of this
//! machine; outcome, traffic, and digest are pure functions of the seed.

use crate::opts::ExpOptions;
use crate::table::{fmt, Table};
use rfc_core::runner::{RunConfig, RunReport, TrialArena};

/// Default landing directory for `--checkpoint-every` snapshots.
const DEFAULT_CHECKPOINT_DIR: &str = "target/checkpoints";

/// Pinned digest of the 10⁷-agent landmark row (n = 10 000 000, γ = 3,
/// balanced two-color split, seed `0x5EED_2017`, loss-free). Captured
/// from the first completed run; asserted by the `#[ignore]`d
/// `e16_ten_million_row_pins_digest` test and recorded in
/// `BENCH_scale.json`.
pub const TEN_MILLION_DIGEST: u64 = 0x9073c387147af7bf;

/// Per-row checkpoint file name: one snapshot file per `(n, shards)`
/// row, overwritten at each cadence point so it always holds the
/// latest boundary.
fn checkpoint_file(dir: &str, n: usize, shards: usize) -> String {
    format!("{dir}/e16_n{n}_s{shards}.rfck")
}

/// Execute one E16 row honoring the checkpoint options: resume from a
/// prior snapshot (`--resume-from`), emit snapshots while running
/// (`--checkpoint-every`), or the plain arena path. Returns the report
/// and a row marker (`""`, `"ckpt"`, or `"resumed@r"`).
fn run_row(
    arena: &mut TrialArena,
    cfg: &RunConfig,
    opts: &ExpOptions,
    n: usize,
    shards: usize,
) -> (RunReport, String) {
    if let Some(dir) = opts.resume_from {
        let path = checkpoint_file(dir, n, shards);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("E16: cannot read checkpoint {path}: {e}"));
        let round = rfc_core::checkpoint::peek_header(&bytes)
            .unwrap_or_else(|e| panic!("E16: bad checkpoint {path}: {e}"))
            .round;
        let report = rfc_core::resume_protocol(cfg, &bytes)
            .unwrap_or_else(|e| panic!("E16: resume from {path} failed: {e}"));
        return (report, format!("resumed@{round}"));
    }
    if opts.checkpoint_every > 0 {
        let dir = opts.checkpoint_dir.unwrap_or(DEFAULT_CHECKPOINT_DIR);
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("E16: checkpoint dir {dir}: {e}"));
        let path = checkpoint_file(dir, n, shards);
        let report = rfc_core::run_protocol_with_checkpoints(
            cfg,
            opts.seed,
            opts.checkpoint_every,
            &mut |_round, bytes| {
                std::fs::write(&path, bytes)
                    .unwrap_or_else(|e| panic!("E16: write {path}: {e}"));
            },
        )
        .expect("E16: checkpointed run failed");
        return (report, "ckpt".into());
    }
    (arena.run_protocol(cfg, opts.seed), String::new())
}

/// Shard counts every sweep visits (plus the `--threads` value, so the
/// CLI flag drives the engine it asks about).
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// FNV-1a 64 over a compact deterministic subset of the report
/// (outcome, winner, wire meters, per-agent decisions — wall-clock
/// excluded). This is E16's *in-run invariance check* across shard
/// counts, deliberately cheaper than the full golden digest in
/// `tests/common/mod.rs`, which remains the pinned-corpus definition.
fn report_digest(r: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    eat(format!("{:?}", r.outcome).as_bytes());
    eat(&(r.rounds as u64).to_le_bytes());
    eat(format!("{:?}", r.winner).as_bytes());
    eat(&r.metrics.messages_sent.to_le_bytes());
    eat(&r.metrics.bits_sent.to_le_bytes());
    eat(&r.metrics.undelivered.to_le_bytes());
    eat(&r.metrics.max_message_bits.to_le_bytes());
    eat(&r.metrics.max_active_links.to_le_bytes());
    eat(&(r.n_active as u64).to_le_bytes());
    // Decisions hashed numerically — at n = 10⁶ this loop runs a
    // million times per row, so no per-entry formatting.
    for d in &r.decisions {
        let code: u64 = match d {
            rfc_core::Decision::Faulty => 1 << 32,
            rfc_core::Decision::Failed => 2 << 32,
            rfc_core::Decision::Decided(c) => (3 << 32) | *c as u64,
        };
        eat(&code.to_le_bytes());
    }
    h
}

/// Process peak-RSS proxy in MiB (`VmHWM`); `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Run E16 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let sizes: Vec<usize> = if let Some(spec) = opts.sizes {
        ExpOptions::parse_list(spec)
    } else if opts.quick {
        vec![512, 4096]
    } else {
        vec![100_000, 1_000_000]
    };
    run_with_sizes(opts, &sizes)
}

/// [`run`] over explicit sweep sizes (tests pass small ones).
pub fn run_with_sizes(opts: &ExpOptions, sizes: &[usize]) -> Vec<Table> {
    let gamma = 3.0;
    // Quick mode trims the fixed sweep but always keeps the CLI's
    // `--threads` value — the flag drives the engine in both modes.
    // `--shards` replaces the sweep outright (e.g. `--shards 1` keeps a
    // 10⁷ landmark run from re-measuring the same core four times).
    let mut shards: Vec<usize> = if let Some(spec) = opts.shards {
        ExpOptions::parse_list(spec)
    } else if opts.quick {
        vec![1, 2, opts.intra_threads()]
    } else {
        let mut s = SHARD_SWEEP.to_vec();
        s.push(opts.intra_threads());
        s
    };
    shards.sort_unstable();
    shards.dedup();

    let mut table = Table::new(
        format!(
            "E16 — single-trial scaling under the staged engine (γ = {gamma}, PerAgent discipline)"
        ),
        &[
            "n",
            "q",
            "shards",
            "outcome",
            "rounds/s",
            "Magent·rounds/s",
            "bytes/agent",
            "ΔRSS MiB",
            "digest",
        ],
    );
    let mut arena = TrialArena::new();
    let mut markers: Vec<String> = Vec::new();
    let mut tuner_markers: Vec<String> = Vec::new();
    // `--stage-times`: per-row plan/exchange/apply wall-clock split of
    // the staged engine, reported as a second table. Observability only
    // — the timing clocks never feed the digest.
    let mut stage_rows: Vec<Vec<String>> = Vec::new();
    for &n in sizes {
        let cfg_for = |threads: usize| {
            RunConfig::builder(n)
                .gamma(gamma)
                .colors(vec![n - n / 2, n / 2])
                .sharded(threads)
                // Production-scale rows skip the op log via the
                // RunConfig toggle (the builder default): recording is
                // digest-invariant but costs one event per op, which at
                // n = 10⁶⁺ is exactly the memory/time this sweep
                // measures. `tests/sharded_engine.rs` pins the
                // invariance.
                .record_ops(false)
                .time_stages(opts.stage_times)
                .autotune_shards(opts.autotune)
                .build()
        };
        let mut first_digest: Option<u64> = None;
        for &threads in &shards {
            let cfg = cfg_for(threads);
            let rss_before = peak_rss_mib();
            let started = std::time::Instant::now();
            let (report, marker) = run_row(&mut arena, &cfg, opts, n, threads);
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            if !marker.is_empty() {
                markers.push(format!("n{n}/s{threads}: {marker}"));
            }
            let digest = report_digest(&report);
            // The sweep is itself a bit-identity check: every shard
            // count must reproduce the first row's digest exactly.
            match first_digest {
                None => first_digest = Some(digest),
                Some(want) => assert_eq!(
                    digest, want,
                    "E16: digest changed with shard count (n={n}, shards={threads})"
                ),
            }
            let rounds_per_s = report.rounds as f64 / secs;
            let rss_growth = match (rss_before, peak_rss_mib()) {
                (Some(b), Some(a)) => fmt::f2(a - b),
                _ => "n/a".into(),
            };
            table.row(vec![
                n.to_string(),
                cfg.params().q.to_string(),
                threads.to_string(),
                format!("{:?}", report.outcome),
                format!("{rounds_per_s:.1}"),
                fmt::f2(rounds_per_s * n as f64 / 1e6),
                fmt::f2(report.metrics.bits_sent as f64 / 8.0 / n as f64),
                rss_growth,
                format!("{:016x}", digest),
            ]);
            if let Some(schedule) = &report.shard_schedule {
                let chosen: Vec<String> =
                    schedule.iter().map(|(ph, k)| format!("{ph}={k}")).collect();
                tuner_markers.push(format!("n{n}/s{threads}: {}", chosen.join(" ")));
            }
            if let Some(st) = report.stage_times {
                stage_rows.push(vec![
                    n.to_string(),
                    threads.to_string(),
                    (st.plan_us / 1000).to_string(),
                    (st.exchange_us / 1000).to_string(),
                    (st.build_us / 1000).to_string(),
                    (st.meter_us / 1000).to_string(),
                    (st.log_us / 1000).to_string(),
                    (st.resolve_us / 1000).to_string(),
                    (st.apply_us / 1000).to_string(),
                    format!(
                        "{:.1}",
                        100.0 * st.meter_log_us() as f64 / st.exchange_us.max(1) as f64
                    ),
                ]);
            }
        }
    }
    table.note("single trial per row; one TrialArena reused across the whole sweep (ΔRSS of later rows ≈ 0 is the arena-reuse witness)");
    table.note("digest = FNV-1a over the deterministic RunReport fields; equal digests across the shard column are asserted, not just printed");
    table.note("PerAgent discipline: loss draws keyed (seed, round, agent) — this table is loss-free, so digests also equal the sequential engine's");
    table.note("rounds/s and ΔRSS are wall-clock measurements of this machine; shard counts beyond the core count still pin determinism");
    if !markers.is_empty() {
        // Resumed rows re-enter the in-run digest assertion above: a
        // resumed row reproducing the straight rows' digest is the
        // machine-checked bit-identity witness for the CLI path.
        table.note(format!("checkpointing: {}", markers.join(", ")));
    }
    if !tuner_markers.is_empty() {
        // Autotuned rows also re-enter the in-run digest assertion: the
        // per-phase schedule is throughput-only by construction.
        table.note(format!("autotuned shard schedule: {}", tuner_markers.join(", ")));
    }
    let mut tables = vec![table];
    if !stage_rows.is_empty() {
        let mut st = Table::new(
            "E16 — staged-engine stage breakdown (--stage-times)".to_string(),
            &[
                "n",
                "shards",
                "plan ms",
                "exchange ms",
                "build ms",
                "meter ms",
                "log ms",
                "resolve ms",
                "apply ms",
                "meter+log %",
            ],
        );
        for row in stage_rows {
            st.row(row);
        }
        st.note("cumulative wall-clock per stage across the whole run; build/meter/log/resolve are sub-clocks of exchange (they need not sum to it — the remainder is reply production)");
        st.note("meter+log % is the exchange share of the two formerly serial passes the sharded tally-merge and op-log scatter drained");
        tables.push(st);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_sweeps_and_pins_digest_across_shards() {
        let tables = run_with_sizes(&ExpOptions::quick(), &[96, 256]);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.rows.len() >= 4, "two sizes × ≥2 shard counts");
        // Per n, every digest cell matches (also asserted inside run).
        for n in ["96", "256"] {
            let digests: Vec<&String> = t
                .rows
                .iter()
                .filter(|r| r[0] == n)
                .map(|r| &r[8])
                .collect();
            assert!(digests.len() >= 2);
            assert!(digests.windows(2).all(|w| w[0] == w[1]), "digest drift at n={n}");
        }
        // Consensus at γ = 3 for these sizes, w.h.p.
        for row in &t.rows {
            assert!(row[3].starts_with("Consensus"), "expected consensus: {row:?}");
        }
    }

    #[test]
    fn e16_checkpoint_and_resume_rows_are_bit_identical() {
        let dir = std::env::temp_dir().join(format!("rfc_e16_ckpt_{}", std::process::id()));
        let dir_str: &'static str =
            Box::leak(dir.to_string_lossy().into_owned().into_boxed_str());
        let straight = run_with_sizes(&ExpOptions::quick(), &[96]);
        let mut ck = ExpOptions::quick();
        ck.checkpoint_every = 7;
        ck.checkpoint_dir = Some(dir_str);
        let checkpointed = run_with_sizes(&ck, &[96]);
        let mut rs = ExpOptions::quick();
        rs.resume_from = Some(dir_str);
        let resumed = run_with_sizes(&rs, &[96]);
        std::fs::remove_dir_all(&dir).ok();
        // Same rows (by identity columns) and the same digest cell in
        // all three modes: straight, checkpoint-emitting, resumed.
        let digests = |tables: &[Table]| -> Vec<(String, String)> {
            tables[0]
                .rows
                .iter()
                .map(|r| (format!("{}/{}", r[0], r[2]), r[8].clone()))
                .collect()
        };
        let want = digests(&straight);
        assert!(!want.is_empty());
        assert_eq!(want, digests(&checkpointed), "checkpoint emission changed a digest");
        assert_eq!(want, digests(&resumed), "resume changed a digest");
        let resumed_note = resumed.last().unwrap().notes.last().unwrap();
        assert!(resumed_note.contains("resumed@"), "{resumed_note}");
    }

    #[test]
    fn e16_quick_mode_runs_the_registry_entry() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let max_n: usize = t.rows.iter().map(|r| r[0].parse().unwrap()).max().unwrap();
        assert!(max_n <= 4096, "quick mode must stay CI-sized");
    }

    #[test]
    fn e16_stage_times_emit_second_table_without_digest_drift() {
        let plain = run_with_sizes(&ExpOptions::quick(), &[96]);
        let mut st = ExpOptions::quick();
        st.stage_times = true;
        let timed = run_with_sizes(&st, &[96]);
        assert_eq!(plain.len(), 1);
        assert_eq!(timed.len(), 2, "--stage-times adds the breakdown table");
        // Timing is observability only: the main table's digest cells
        // are byte-identical with and without the clocks running.
        let digests =
            |t: &Table| t.rows.iter().map(|r| r[8].clone()).collect::<Vec<_>>();
        assert_eq!(digests(&plain[0]), digests(&timed[0]));
        // One breakdown row per main row, sub-clocks in range.
        assert_eq!(timed[1].rows.len(), timed[0].rows.len());
        for row in &timed[1].rows {
            assert_eq!(row.len(), 10, "plan/exchange/build/meter/log/resolve/apply row");
            let pct: f64 = row[9].parse().unwrap();
            assert!((0.0..=100.0).contains(&pct), "bad meter+log %: {row:?}");
        }
    }

    #[test]
    fn e16_autotuned_rows_reproduce_fixed_digests() {
        let plain = run_with_sizes(&ExpOptions::quick(), &[96]);
        let mut at = ExpOptions::quick();
        at.autotune = true;
        let tuned = run_with_sizes(&at, &[96]);
        // The tuner only moves the shard count, so every digest cell
        // must match the fixed-shard sweep byte for byte.
        let digests =
            |t: &Table| t.rows.iter().map(|r| r[8].clone()).collect::<Vec<_>>();
        assert_eq!(digests(&plain[0]), digests(&tuned[0]));
        let note = tuned[0].notes.iter().find(|n| n.contains("autotuned"));
        assert!(note.is_some(), "autotuned rows must report their schedule");
    }

    #[test]
    fn e16_sizes_and_shards_overrides_drive_the_sweep() {
        let mut o = ExpOptions::quick();
        o.sizes = Some("128");
        o.shards = Some("1,3");
        let tables = run(&o);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 2, "one size × two shard counts");
        assert!(rows.iter().all(|r| r[0] == "128"));
        assert_eq!(rows[0][2], "1");
        assert_eq!(rows[1][2], "3");
        assert_eq!(rows[0][8], rows[1][8], "override rows must still agree");
    }

    /// The 10⁷ landmark: a single γ = 3 trial at n = 10 000 000 (≈ 107
    /// minutes of compute on one core, ~48 GiB peak RSS — hence
    /// `#[ignore]`). Run with:
    ///
    /// ```text
    /// cargo test --release -p experiments e16_ten_million -- --ignored
    /// ```
    ///
    /// The digest is pinned from the first completed run (seed
    /// 0x5EED2017, shards = 1; shard count never affects digests, which
    /// the regular sweep machine-checks at smaller n).
    #[test]
    #[ignore = "10^7-agent trial: ~107 min single-core, ~48 GiB peak RSS"]
    fn e16_ten_million_row_pins_digest() {
        let mut o = ExpOptions::default();
        o.shards = Some("1");
        let tables = run_with_sizes(&o, &[10_000_000]);
        let row = &tables[0].rows[0];
        assert!(row[3].starts_with("Consensus"), "outcome: {row:?}");
        assert_eq!(row[1], "72", "q = ceil(3·log2(1e7))");
        assert_eq!(
            row[8],
            format!("{TEN_MILLION_DIGEST:016x}"),
            "10^7 landmark digest moved"
        );
    }
}
