//! E2 — message size (Theorem 4: messages of `O(log² n)` bits).
//!
//! The largest message is the minimum certificate: `Θ(log n)` vote
//! records of `Θ(log n)` bits. We record the maximum and mean wire sizes
//! per phase across a sweep of `n` and fit `max_bits = a·log₂²(n) + b`.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::fit::log2_squared_fit;
use rfc_stats::Summary;

/// Run E2 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gamma = 3.0;
    let sizes: Vec<usize> = [64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(2048))
        .collect();
    let trials = opts.trials(100);

    let mut table = Table::new(
        format!("E2 — message sizes in bits (γ = {gamma}, {trials} trials/point)"),
        &[
            "n",
            "log2²n",
            "max msg",
            "mean msg",
            "max commit reply",
            "max certificate",
        ],
    );
    let mut points: Vec<(f64, f64)> = Vec::new();
    for &n in &sizes {
        let cfg = RunConfig::builder(n).gamma(gamma).build();
        let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            let r = run_protocol(&cfg, seed);
            let commit = r.metrics.phase("commitment").map(|t| t.max_message_bits);
            let cert = r
                .metrics
                .phase("find-min")
                .map(|t| t.max_message_bits)
                .max(r.metrics.phase("coherence").map(|t| t.max_message_bits));
            (
                r.metrics.max_message_bits,
                r.metrics.mean_message_bits(),
                commit.unwrap_or(0),
                cert.unwrap_or(0),
            )
        });
        let max_all = results.iter().map(|r| r.0).max().unwrap_or(0);
        let mean = Summary::from_iter(results.iter().map(|r| r.1)).mean();
        let max_commit = results.iter().map(|r| r.2).max().unwrap_or(0);
        let max_cert = results.iter().map(|r| r.3).max().unwrap_or(0);
        let l = (n as f64).log2();
        points.push((n as f64, max_all as f64));
        table.row(vec![
            n.to_string(),
            fmt::f2(l * l),
            max_all.to_string(),
            fmt::f2(mean),
            max_commit.to_string(),
            max_cert.to_string(),
        ]);
    }
    let fit = log2_squared_fit(&points);
    table.note(format!(
        "fit: max_bits = {:.2}·log2²(n) + {:.2}, R² = {:.4}",
        fit.slope, fit.intercept, fit.r2
    ));
    table.note("paper claim: message size O(log² n) bits (Theorem 4)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e02_quick_fits_log_squared() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        assert!(t.rows.len() >= 3);
        // The fit note must report a high R²: extract and check > 0.9.
        let note = &t.notes[0];
        let r2: f64 = note
            .split("R² = ")
            .nth(1)
            .unwrap()
            .trim_end_matches(|c: char| !c.is_ascii_digit() && c != '.')
            .parse()
            .unwrap();
        assert!(r2 > 0.9, "log²-fit should be tight, got {note}");
    }
}
