//! E17 — the multi-instance gossip plane: thousands of concurrent
//! consensus/rumor instances multiplexed over one network.
//!
//! Every prior experiment runs one protocol instance per network. The
//! instance plane (`rfc_core::instances`) multiplexes many: each agent
//! hosts one cell per instance, all payloads an agent emits toward a
//! peer in a round ride one [`rfc_core::Batch`] (the first part's
//! instance tag is elided, so a single instance pays zero overhead),
//! and every instance keeps its own phase clock, meters, and loss
//! streams. This experiment measures that plane along three axes:
//!
//! * **throughput** — a sweep over 10¹…10⁴ concurrent instances
//!   reporting **instances/s** (wall-clock), per-instance
//!   rounds-to-decision (min/mean/max — the spread is the fairness
//!   view: co-hosted instances should finish in statistically
//!   indistinguishable time), and the aggregate wire traffic including
//!   batch-tag overhead;
//! * **priority classes** — High/Low rumor instances under a per-round
//!   send budget: High cells spend the budget first, so their mean
//!   decision round must not trail Low's;
//! * **interference** — a consensus instance alone vs co-hosted with
//!   10³ rumor instances (loss-free): the experiment *asserts* that its
//!   [`rfc_core::instances::InstanceReport`] is `Debug`-identical in
//!   both runs — co-hosting is invisible in every deterministic field,
//!   machine-checked on every run.
//!
//! `--instances <k>` pins the sweep to one count; `--instance-kind
//! consensus` sweeps full protocol-`P` instances instead of the
//! (cheaper) k-of-n rumor votes. Instances/s is a wall-clock
//! measurement of this machine; every other column is a pure function
//! of the seed.

use crate::opts::ExpOptions;
use crate::table::{fmt, Table};
use rfc_core::instances::InstanceReport;
use rfc_core::runner::RunConfig;
use rfc_core::{run_plane, InstanceKind, InstancePlan, InstanceSpec, PlaneReport, Priority};

/// FNV-1a 64 over the deterministic per-instance fields of a plane
/// report (outcome, decision counts/rounds, payload meters) plus the
/// aggregate wire meters — wall-clock excluded. The sweep's digest
/// column is seed-deterministic at every thread count.
fn plane_digest(plane: &PlaneReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for inst in &plane.instances {
        eat(format!("{:?}", inst.outcome).as_bytes());
        eat(&(inst.decided as u64).to_le_bytes());
        eat(&(inst.rounds_to_decision.unwrap_or(usize::MAX) as u64).to_le_bytes());
        eat(&inst.metrics.messages_sent.to_le_bytes());
        eat(&inst.metrics.bits_sent.to_le_bytes());
        eat(&inst.metrics.undelivered.to_le_bytes());
    }
    eat(&plane.aggregate.messages_sent.to_le_bytes());
    eat(&plane.aggregate.bits_sent.to_le_bytes());
    eat(&(plane.rounds as u64).to_le_bytes());
    h
}

/// min/mean/max of the decision rounds across instances; undecided
/// instances are excluded from the stats and counted separately.
fn decision_spread(instances: &[InstanceReport]) -> (usize, usize, f64, usize) {
    let rounds: Vec<usize> =
        instances.iter().filter_map(|i| i.rounds_to_decision).collect();
    if rounds.is_empty() {
        return (0, 0, 0.0, instances.len());
    }
    let min = *rounds.iter().min().unwrap();
    let max = *rounds.iter().max().unwrap();
    let mean = rounds.iter().sum::<usize>() as f64 / rounds.len() as f64;
    (min, max, mean, instances.len() - rounds.len())
}

/// The sweep kind from `--instance-kind` (`rumor` unless overridden).
fn sweep_kind(opts: &ExpOptions, n: usize) -> (InstanceKind, &'static str) {
    match opts.instance_kind {
        Some("consensus") => (InstanceKind::Consensus, "consensus"),
        _ => (InstanceKind::RumorVote { k: 3 * n / 4 }, "rumor"),
    }
}

/// Run E17 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let counts = opts.instance_sweep(&[10, 100, 1_000, 10_000]);
    run_with_counts(opts, &counts)
}

/// [`run`] over explicit instance counts (tests pass small ones).
pub fn run_with_counts(opts: &ExpOptions, counts: &[usize]) -> Vec<Table> {
    let n = if opts.quick { 16 } else { 32 };
    let gamma = 3.0;
    let (kind, kind_name) = sweep_kind(opts, n);
    let base = || {
        RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![n - n / 2, n / 2])
    };

    // ── Table 1: throughput sweep ────────────────────────────────────
    let mut sweep = Table::new(
        format!("E17 — instance-plane throughput sweep (n = {n}, γ = {gamma}, kind = {kind_name})"),
        &[
            "instances",
            "rounds",
            "decided",
            "undecided",
            "rtd min",
            "rtd mean",
            "rtd max",
            "instances/s",
            "payload MiB",
            "wire MiB",
            "digest",
        ],
    );
    for &count in counts {
        let plan = match kind {
            InstanceKind::Consensus => InstancePlan::consensus(count),
            InstanceKind::RumorVote { k } => InstancePlan::rumor(count, k),
        };
        let cfg = base().instances(plan).build();
        let started = std::time::Instant::now();
        let plane = run_plane(&cfg, opts.seed);
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let (min, max, mean, undecided) = decision_spread(&plane.instances);
        let decided = plane.instances.len() - undecided;
        let payload_bits: u64 = plane.instances.iter().map(|i| i.metrics.bits_sent).sum();
        sweep.row(vec![
            count.to_string(),
            plane.rounds.to_string(),
            decided.to_string(),
            undecided.to_string(),
            min.to_string(),
            fmt::f2(mean),
            max.to_string(),
            fmt::f2(count as f64 / secs),
            fmt::f2(payload_bits as f64 / 8.0 / (1 << 20) as f64),
            fmt::f2(plane.aggregate.bits_sent as f64 / 8.0 / (1 << 20) as f64),
            format!("{:016x}", plane_digest(&plane)),
        ]);
    }
    sweep.note("instances/s is wall-clock; every other column is a pure function of the seed");
    sweep.note("rtd = per-instance local rounds to decision; the min..max spread across co-hosted instances is the fairness view");
    sweep.note("wire MiB − payload MiB = batch instance-tag overhead plus nothing else (first part per batch rides tag-free)");

    // ── Table 2: priority classes under a send budget ────────────────
    let class_count = if opts.quick { 8 } else { 16 };
    let k = 3 * n / 4;
    let mut plan = InstancePlan { specs: Vec::new(), send_budget: None };
    for j in 0..2 * class_count {
        let pri = if j < class_count { Priority::High } else { Priority::Low };
        plan = plan.with_spec(InstanceSpec::new(InstanceKind::RumorVote { k }).priority(pri));
    }
    let plan = plan.budget(2);
    let cfg = base().instances(plan).build();
    let plane = run_plane(&cfg, opts.seed);
    let mut classes = Table::new(
        format!(
            "E17 — priority classes: {class_count}+{class_count} rumor instances, budget 2 ops/agent/round"
        ),
        &["class", "instances", "decided", "rtd mean", "rtd max"],
    );
    // Penalized mean for the cross-class assertion: an undecided
    // instance counts as `window + 1` local rounds, so a class that
    // starves (never decides inside the window) ranks strictly behind
    // one that finishes — a decided-only mean would read 0.0 there.
    let window = cfg.params().total_rounds();
    let mut class_means = Vec::new();
    for (label, pri) in [("High", Priority::High), ("Low", Priority::Low)] {
        let members: Vec<InstanceReport> = plane
            .instances
            .iter()
            .filter(|i| i.spec.priority == pri)
            .cloned()
            .collect();
        let (_, max, mean, undecided) = decision_spread(&members);
        let penalized = members
            .iter()
            .map(|i| i.rounds_to_decision.unwrap_or(window + 1) as f64)
            .sum::<f64>()
            / members.len().max(1) as f64;
        class_means.push(penalized);
        classes.row(vec![
            label.to_string(),
            members.len().to_string(),
            (members.len() - undecided).to_string(),
            fmt::f2(mean),
            max.to_string(),
        ]);
    }
    assert!(
        class_means[0] <= class_means[1] + 1e-9,
        "E17: High-priority instances ranked behind Low under a budget \
         (penalized means {:.2} vs {:.2})",
        class_means[0],
        class_means[1]
    );
    classes.note("High cells spend the per-round budget first; the assertion High ≤ Low on the undecided-penalized mean runs on every invocation");
    classes.note("rtd mean/max are over decided instances only; a starved class shows up in the `decided` column");

    // ── Table 3: cross-instance interference ─────────────────────────
    // One consensus instance, alone vs co-hosted with 10³ rumor
    // instances (loss-free): its InstanceReport must be Debug-identical
    // — the co-hosting-invariance claim, machine-checked here at
    // experiment scale (the unit suite pins the lossy case).
    let co_hosted = 1_000;
    let mut interference = Table::new(
        format!("E17 — interference: consensus instance 0 with 0 vs {co_hosted} co-hosted rumor instances"),
        &["co-hosted", "outcome", "inst-0 rounds", "inst-0 msgs", "inst-0 bits", "identical"],
    );
    let mut inst0_reports = Vec::new();
    for extra in [0usize, co_hosted] {
        let mut plan = InstancePlan::consensus(1);
        for _ in 0..extra {
            plan = plan.with_spec(InstanceSpec::new(InstanceKind::RumorVote { k }));
        }
        let cfg = base().instances(plan).build();
        let plane = run_plane(&cfg, opts.seed);
        let inst0 = plane.instances[0].clone();
        inst0_reports.push(format!("{inst0:?}"));
        let identical = inst0_reports[0] == *inst0_reports.last().unwrap();
        interference.row(vec![
            extra.to_string(),
            format!("{:?}", inst0.outcome.as_ref().expect("consensus instance")),
            inst0.metrics.rounds.to_string(),
            inst0.metrics.messages_sent.to_string(),
            inst0.metrics.bits_sent.to_string(),
            identical.to_string(),
        ]);
    }
    assert_eq!(
        inst0_reports[0], inst0_reports[1],
        "E17: co-hosting {co_hosted} instances perturbed instance 0's report"
    );
    interference.note("identical = instance 0's full InstanceReport (outcome, decisions, meters, clocks) is Debug-equal to the alone run — asserted, not just printed");
    interference.note("per-instance loss/RNG streams are keyed by instance id, so adding co-hosted instances never perturbs an existing one");

    vec![sweep, classes, interference]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_small_sweep_decides_and_pins_interference() {
        let tables = run_with_counts(&ExpOptions::quick(), &[4, 16]);
        assert_eq!(tables.len(), 3);
        let sweep = &tables[0];
        assert_eq!(sweep.rows.len(), 2);
        for row in &sweep.rows {
            assert_eq!(row[3], "0", "undecided instances in {row:?}");
        }
        // Interference table: both rows flagged identical (also asserted
        // inside run_with_counts).
        for row in &tables[2].rows {
            assert_eq!(row[5], "true");
        }
    }

    #[test]
    fn e17_instances_flag_pins_the_sweep() {
        let mut opts = ExpOptions::quick();
        opts.instances = 7;
        let counts = opts.instance_sweep(&[10, 100]);
        assert_eq!(counts, vec![7]);
    }

    #[test]
    fn e17_consensus_kind_sweeps_protocol_instances() {
        let mut opts = ExpOptions::quick();
        opts.instance_kind = Some("consensus");
        let tables = run_with_counts(&opts, &[3]);
        let row = &tables[0].rows[0];
        assert_eq!(row[0], "3");
        assert_eq!(row[3], "0", "all consensus instances should decide: {row:?}");
    }
}
