//! `rfc-experiments` — regenerate every experiment in EXPERIMENTS.md.
//!
//! ```text
//! rfc-experiments list                      # show the experiment registry
//! rfc-experiments all [--quick]             # run everything
//! rfc-experiments e04 e15 [--quick]         # run selected experiments
//!     --quick         ~10× smaller trials/sweeps (CI mode)
//!     --seed <u64>    master seed (default 0x5EED2017)
//!     --threads <k>   worker threads (default: all cores)
//!     --csv <dir>     also write each table as CSV into <dir>
//!     --json <dir>    also write each table as JSON into <dir>
//!     --checkpoint-every <k>   snapshot checkpoint-aware runs (E16)
//!                     every k rounds into --checkpoint-dir
//!     --checkpoint-dir <dir>   where checkpoints land
//!                     (default target/checkpoints)
//!     --resume-from <dir>      resume checkpoint-aware runs from the
//!                     checkpoints in <dir> — bit-identical to a
//!                     straight run (tests/checkpoint_resume.rs)
//!     --instances <k>          pin the instance-plane sweep (E17) to
//!                     exactly k concurrent instances
//!     --instance-kind <kind>   E17 sweep kind: `rumor` or `consensus`
//!     --stage-times            collect the staged engine's per-stage
//!                     wall-clock breakdown (E16 emits an extra table)
//!     --sizes <n1,n2,..>       override the n sweep (E16); underscores
//!                     allowed: --sizes 10_000_000
//!     --shards <k1,k2,..>      override the shard-count sweep (E16)
//!     --no-oplog      skip op-log recording in the audit-bearing
//!                     experiments (digests unchanged; audits report "off")
//!     --autotune-shards        probe per-phase shard counts and run each
//!                     phase at the fastest (E16; throughput only)
//! ```

use experiments::{all_experiments, ExpOptions};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }

    let mut opts = ExpOptions::default();
    let mut selected: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut list_only = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|s| parse_u64(&s))
                    .unwrap_or_else(|| die("--seed needs a u64 argument"));
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| die("--csv needs a directory")));
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| die("--checkpoint-every needs a round count > 0"));
            }
            "--checkpoint-dir" => {
                let dir = it
                    .next()
                    .unwrap_or_else(|| die("--checkpoint-dir needs a directory"));
                // Leaked so ExpOptions stays Copy: one flag, process-lifetime.
                opts.checkpoint_dir = Some(Box::leak(dir.into_boxed_str()));
            }
            "--resume-from" => {
                let dir = it
                    .next()
                    .unwrap_or_else(|| die("--resume-from needs a directory"));
                opts.resume_from = Some(Box::leak(dir.into_boxed_str()));
            }
            "--instances" => {
                opts.instances = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| die("--instances needs a count > 0"));
            }
            "--instance-kind" => {
                let kind = it
                    .next()
                    .filter(|k| k == "rumor" || k == "consensus")
                    .unwrap_or_else(|| die("--instance-kind needs `rumor` or `consensus`"));
                // Leaked so ExpOptions stays Copy: one flag, process-lifetime.
                opts.instance_kind = Some(Box::leak(kind.into_boxed_str()));
            }
            "--stage-times" => opts.stage_times = true,
            "--sizes" => {
                let spec = it.next().unwrap_or_else(|| die("--sizes needs a comma list"));
                // Leaked so ExpOptions stays Copy: one flag, process-lifetime.
                opts.sizes = Some(Box::leak(spec.into_boxed_str()));
            }
            "--shards" => {
                let spec = it.next().unwrap_or_else(|| die("--shards needs a comma list"));
                opts.shards = Some(Box::leak(spec.into_boxed_str()));
            }
            "--no-oplog" => opts.oplog = false,
            "--autotune-shards" => opts.autotune = true,
            "list" => list_only = true,
            "all" => {
                selected = all_experiments().iter().map(|e| e.id.to_string()).collect();
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            id if id.starts_with('e') => selected.push(id.to_string()),
            other => die(&format!("unknown argument: {other}")),
        }
    }

    if list_only {
        println!("available experiments:");
        for e in all_experiments() {
            println!("  {}  {}", e.id, e.title);
        }
        return;
    }
    if selected.is_empty() {
        usage();
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("csv dir: {e}")));
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("json dir: {e}")));
    }

    let registry = all_experiments();
    for id in &selected {
        let Some(exp) = registry.iter().find(|e| e.id == id.as_str()) else {
            die(&format!("unknown experiment id: {id} (try `list`)"));
        };
        eprintln!(
            ">> running {} — {} ({} mode, seed {:#x})",
            exp.id,
            exp.title,
            if opts.quick { "quick" } else { "full" },
            opts.seed
        );
        let started = std::time::Instant::now();
        let tables = (exp.run)(&opts);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}_{i}.csv", exp.id);
                write_file(&path, &table.to_csv());
            }
            if let Some(dir) = &json_dir {
                let path = format!("{dir}/{}_{i}.json", exp.id);
                write_file(&path, &table.to_json());
            }
        }
        eprintln!("   {} finished in {:.1?}\n", exp.id, started.elapsed());
    }
}

fn write_file(path: &str, content: &str) {
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| die(&format!("create {path}: {e}")));
    f.write_all(content.as_bytes())
        .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage() {
    eprintln!(
        "usage: rfc-experiments <list | all | e01..e17...> [--quick] [--seed N] [--threads K] [--csv DIR] [--json DIR] [--checkpoint-every K] [--checkpoint-dir DIR] [--resume-from DIR] [--instances K] [--instance-kind rumor|consensus] [--stage-times] [--sizes N1,N2,..] [--shards K1,K2,..] [--no-oplog] [--autotune-shards]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
