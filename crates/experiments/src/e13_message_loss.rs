//! E13 — failure injection: how much does `P` lean on reliable channels?
//!
//! The GOSSIP model (paper §2) assumes *secure, reliable* channels; every
//! claim is conditioned on messages arriving. This experiment injects an
//! independent per-message drop probability `p` and measures the success
//! rate — quantifying an assumption the paper leaves implicit.
//!
//! The prediction (and the measurement) is a *sharp* collapse: the
//! Commitment/Verification binding makes the protocol deliberately
//! fragile to any discrepancy between declared and received votes, and a
//! run survives only if **zero** of its ~`n·q` votes (and none of the
//! relevant commitment replies) are lost — probability ≈ `(1−p)^{Θ(n·q)}`.
//! Dropping a commitment *reply* is equally fatal: the puller marks the
//! sender faulty, and the sender's later (delivered) votes then violate
//! the `VoteFromFaulty` rule. A deployment over lossy transport would
//! need acks/retransmission underneath — the protocol itself cannot
//! distinguish loss from lying, *by design*.

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold;
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol, RunConfig};

/// Run E13 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gamma = 3.0;
    let trials = opts.trials(200);
    let sizes = [32usize, 64, 128];
    let losses = [0.0f64, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2];

    let mut table = Table::new(
        format!("E13 — success rate under per-message loss probability p ({trials} trials/cell)"),
        &[
            "n",
            "p",
            "success rate",
            "survival model (1-p)^(2nq)",
            "undelivered/trial",
        ],
    );
    for &n in &sizes {
        let q = RunConfig::builder(n).gamma(gamma).build().params().q;
        for &p in &losses {
            let cfg = RunConfig::builder(n)
                .gamma(gamma)
                .colors(vec![n - n / 2, n / 2])
                .message_loss(p)
                .build();
            // Streaming fold: (successes, suppressed-traffic meter).
            let (successes, undelivered) = run_trials_fold(
                trials,
                opts.threads_for(trials),
                opts.seed,
                || (0u64, 0u64),
                |acc, _i, seed| {
                    let r = run_protocol(&cfg, seed);
                    acc.0 += r.outcome.is_consensus() as u64;
                    acc.1 += r.metrics.undelivered;
                },
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                },
            );
            // Loss is fatal if any of ~n·q votes or ~n·q commitment
            // replies vanish: survival ≈ (1-p)^(2nq).
            let model = (1.0 - p).powi((2 * n * q) as i32);
            table.row(vec![
                n.to_string(),
                format!("{p:.4}"),
                fmt::rate_ci(successes, trials as u64),
                fmt::f3(model),
                fmt::f2(undelivered as f64 / trials as f64),
            ]);
        }
    }
    table.note("the protocol cannot distinguish loss from lying — any lost vote/commitment breaks the binding and fails the run (by design)");
    table.note("deployments over lossy transport need reliable delivery (acks/retransmit) underneath the GOSSIP abstraction");
    table.note("undelivered/trial = mean Metrics::undelivered — metered-but-suppressed traffic (lost in transit here; same counter covers crash/partition suppression in E15)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_loss_free_succeeds_heavy_loss_collapses() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let rate = |row: &Vec<String>| -> f64 {
            row[2].split(' ').next().unwrap().parse().unwrap()
        };
        for row in &t.rows {
            let p: f64 = row[1].parse().unwrap();
            if p == 0.0 {
                assert!(rate(row) > 0.95, "p=0 must succeed: {row:?}");
            }
            if p >= 0.05 {
                assert!(rate(row) < 0.05, "p=0.05 must collapse: {row:?}");
            }
        }
    }

    #[test]
    fn e13_reports_undelivered_traffic() {
        // Satellite pin: the undelivered column exists (so Table::to_json
        // carries it for every E13 row) and is nonzero wherever p > 0 —
        // loss experiments must report the traffic they suppressed.
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let idx = t
            .columns
            .iter()
            .position(|c| c == "undelivered/trial")
            .expect("E13 must have an undelivered/trial column");
        assert!(
            t.to_json().contains("\"undelivered/trial\""),
            "undelivered column must reach the JSON output"
        );
        for row in &t.rows {
            let p: f64 = row[1].parse().unwrap();
            let undelivered: f64 = row[idx].parse().unwrap();
            if p == 0.0 {
                assert_eq!(undelivered, 0.0, "no loss ⇒ nothing suppressed: {row:?}");
            } else {
                assert!(
                    undelivered > 0.0,
                    "p={p} must suppress measurable traffic: {row:?}"
                );
            }
        }
    }

    #[test]
    fn e13_model_tracks_measurement_direction() {
        // The (1-p)^{2nq} survival model and the measured success must
        // agree in ordering across p for each n.
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let mut last_rate = f64::INFINITY;
        for row in t.rows.iter().take(6) {
            let r: f64 = row[2].split(' ').next().unwrap().parse().unwrap();
            assert!(r <= last_rate + 0.1, "success should fall with p: {row:?}");
            last_rate = r;
        }
    }
}
