//! Shared experiment options.

use crate::parallel::default_threads;

/// Options common to every experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Scale trial counts and sweeps down ~10× (CI / smoke mode).
    pub quick: bool,
    /// Master seed; every number in a report is a pure function of it.
    pub seed: u64,
    /// Worker threads (0 = auto). One `--threads` flag governs **both**
    /// parallelism layers — trials across workers
    /// ([`ExpOptions::threads_for`]) and shards within a trial
    /// ([`ExpOptions::intra_threads`]) — instead of each call site
    /// picking its own count.
    pub threads: usize,
    /// Emit a run-state checkpoint every `k` rounds into
    /// [`ExpOptions::checkpoint_dir`] (0 = off). Honored by the
    /// checkpoint-aware experiments (E16).
    pub checkpoint_every: usize,
    /// Directory receiving emitted checkpoints (`&'static` so the
    /// options stay `Copy`; the CLI leaks its one flag value).
    pub checkpoint_dir: Option<&'static str>,
    /// Directory to resume from: checkpoint-aware experiments look for
    /// their per-row checkpoint files here and resume instead of
    /// running from round 0 — bit-identical by the resume-equivalence
    /// corpus (`tests/checkpoint_resume.rs`).
    pub resume_from: Option<&'static str>,
    /// Concurrent instance count for the instance-plane experiments
    /// (E17). `0` = use the experiment's own sweep; any other value
    /// pins the sweep to exactly that count.
    pub instances: usize,
    /// Instance kind for the E17 sweep: `"rumor"` (default) or
    /// `"consensus"` (`&'static` so the options stay `Copy`).
    pub instance_kind: Option<&'static str>,
    /// Collect and report the staged engine's per-stage wall-clock
    /// breakdown (plan / exchange / apply). Honored by E16, which emits
    /// an extra stage-time table. Observability only — digests are
    /// unaffected.
    pub stage_times: bool,
    /// Override an experiment's `n` sweep (comma-separated, e.g.
    /// `"100000,10000000"`; `&'static` so the options stay `Copy`).
    /// Honored by E16 — this is how the 10⁷ landmark row is launched
    /// without dragging the default sweep along.
    pub sizes: Option<&'static str>,
    /// Override an experiment's shard-count sweep (comma-separated).
    /// Honored by E16; useful to pin `"1"` on single-core boxes where
    /// sweeping shard counts only re-measures the same core.
    pub shards: Option<&'static str>,
    /// Record the op log for the audit-bearing experiments (default
    /// on; `--no-oplog` clears it). Digests and `Metrics` are pinned
    /// identical with it off — only the good-execution audit goes
    /// missing, so an experiment that needs the audit degrades to
    /// reporting "off" instead of panicking.
    pub oplog: bool,
    /// Autotune the per-phase shard count in the experiments that run
    /// the staged engine (E16): probe the power-of-two shard counts up
    /// to `--threads` each phase and run the rest at the fastest.
    /// Throughput-only; digests are unaffected.
    pub autotune: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            seed: 0x5EED_2017,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume_from: None,
            instances: 0,
            instance_kind: None,
            stage_times: false,
            sizes: None,
            shards: None,
            oplog: true,
            autotune: false,
        }
    }
}

impl ExpOptions {
    /// Quick-mode preset.
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }

    /// Trial count: `full` normally, ~`full/8` (min 10) in quick mode.
    pub fn trials(&self, full: usize) -> usize {
        if self.quick {
            (full / 8).max(10)
        } else {
            full
        }
    }

    /// Effective worker-thread count for `trials` tasks.
    pub fn threads_for(&self, trials: usize) -> usize {
        if self.threads == 0 {
            default_threads(trials)
        } else {
            self.threads.min(trials.max(1))
        }
    }

    /// Worker threads for **intra-trial** sharding (the staged engine's
    /// plan/apply shards): the explicit `--threads` value, or available
    /// parallelism when `0`/unset. Unlike [`ExpOptions::threads_for`]
    /// there is no trial-count cap — one giant trial wants every core.
    pub fn intra_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Instance-count sweep for the plane experiments: the experiment's
    /// own `default` sweep, unless `--instances` pinned a single count.
    pub fn instance_sweep(&self, default: &[usize]) -> Vec<usize> {
        if self.instances == 0 {
            default.to_vec()
        } else {
            vec![self.instances]
        }
    }

    /// Parse a `--sizes`/`--shards` comma list (underscores allowed as
    /// digit separators: `10_000_000`). Panics on junk so a CLI typo
    /// fails loudly instead of silently running the default sweep.
    pub fn parse_list(spec: &str) -> Vec<usize> {
        let v: Vec<usize> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .replace('_', "")
                    .parse()
                    .unwrap_or_else(|_| panic!("unparsable entry {s:?} in list {spec:?}"))
            })
            .collect();
        assert!(!v.is_empty(), "empty list {spec:?}");
        v
    }

    /// Largest `n` of a sweep: caps `full_max` in quick mode.
    pub fn cap_n(&self, full_max: usize) -> usize {
        if self.quick {
            full_max.min(512)
        } else {
            full_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_down() {
        let q = ExpOptions::quick();
        assert_eq!(q.trials(800), 100);
        assert_eq!(q.trials(40), 10);
        assert_eq!(q.cap_n(4096), 512);
        let f = ExpOptions::default();
        assert_eq!(f.trials(800), 800);
        assert_eq!(f.cap_n(4096), 4096);
    }

    #[test]
    fn explicit_threads_respected() {
        let o = ExpOptions {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(o.threads_for(100), 3);
        assert_eq!(o.threads_for(2), 2);
    }
}
