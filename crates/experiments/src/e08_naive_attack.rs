//! E8 — why the machinery exists: attacking the naive protocol vs `P`.
//!
//! The naive min-badge election (protocol `P` stripped of Commitment,
//! Coherence, Verification) is efficient and fair among honest agents —
//! and a single `claim-zero` cheater wins it *every* time. The same
//! deviation shape against `P` (forge a k=0 certificate) is caught and
//! converted into failure. This is the ablation that justifies the
//! protocol's extra phases.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use adversary::harness::{coalition_colors, run_attack_trial};
use adversary::strategies::forge_cert::ForgeCert;
use baselines::naive_min_id::run_naive_election;
use rfc_core::outcome::Outcome;
use rfc_core::runner::{run_protocol, ColorSpec, RunConfig};

/// Run E8 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = 64;
    let gamma = 3.0;
    let trials = opts.trials(400);
    let cheater: u32 = 17;

    let mut table = Table::new(
        format!("E8 — single cheater: naive min-badge election vs protocol P (n = {n}, {trials} trials)"),
        &["protocol", "deviation", "cheater win rate", "fail rate", "fair share"],
    );

    // Naive, honest: cheater wins 1/n of the time.
    let colors: Vec<u32> = (0..n as u32).collect();
    let honest_wins = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        run_naive_election(n, &colors, &[], gamma, seed).winner.owner == cheater
    })
    .iter()
    .filter(|&&b| b)
    .count() as u64;
    table.row(vec![
        "naive min-badge".into(),
        "none".into(),
        fmt::rate_ci(honest_wins, trials as u64),
        "0.000".into(),
        fmt::f3(1.0 / n as f64),
    ]);

    // Naive, one claim-zero cheater: wins everything.
    let cheat_wins = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        run_naive_election(n, &colors, &[cheater], gamma, seed).winner.owner == cheater
    })
    .iter()
    .filter(|&&b| b)
    .count() as u64;
    table.row(vec![
        "naive min-badge".into(),
        "claim-zero".into(),
        fmt::rate_ci(cheat_wins, trials as u64),
        "0.000".into(),
        fmt::f3(1.0 / n as f64),
    ]);

    // Protocol P, honest control (coalition = {cheater}).
    let members = vec![cheater];
    let mut cfg = RunConfig::builder(n).gamma(gamma).build();
    cfg.colors = ColorSpec::Explicit(coalition_colors(n, &members));
    let p_honest = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        run_protocol(&cfg, seed).outcome
    });
    let p_honest_wins = p_honest
        .iter()
        .filter(|o| **o == Outcome::Consensus(adversary::COALITION_COLOR))
        .count() as u64;
    table.row(vec![
        "protocol P".into(),
        "none".into(),
        fmt::rate_ci(p_honest_wins, trials as u64),
        "0.000".into(),
        fmt::f3(1.0 / n as f64),
    ]);

    // Protocol P under the analogous forgery.
    for strategy in [ForgeCert::zero_k(), ForgeCert::tuned_vote(), ForgeCert::drop_votes()] {
        let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            run_attack_trial(&cfg, &strategy, &members, seed).outcome
        });
        let wins = results
            .iter()
            .filter(|o| **o == Outcome::Consensus(adversary::COALITION_COLOR))
            .count() as u64;
        let fails = results.iter().filter(|o| **o == Outcome::Fail).count() as u64;
        table.row(vec![
            "protocol P".into(),
            adversary::Strategy::name(&strategy).to_string(),
            fmt::rate_ci(wins, trials as u64),
            fmt::f3(fails as f64 / trials as f64),
            fmt::f3(1.0 / n as f64),
        ]);
    }
    table.note("claim-zero wins the naive election always; against P the same idea yields ⊥, not wins");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e08_cheater_beats_naive_but_not_p() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        // Row 1: naive + claim-zero → win rate 1.0.
        let naive_cheat: f64 = t.rows[1][2].split(' ').next().unwrap().parse().unwrap();
        assert!(naive_cheat > 0.99, "naive cheat should always win: {:?}", t.rows[1]);
        // Forgery rows against P: win rate near fair share, high fail rate.
        for row in t.rows.iter().skip(3) {
            let win: f64 = row[2].split(' ').next().unwrap().parse().unwrap();
            assert!(win < 0.2, "P should resist forgery: {row:?}");
        }
    }
}
