//! E1 — round complexity (Theorem 4: consensus within `O(log n)` rounds).
//!
//! Protocol `P` runs `4q = 4·γ·log₂ n` communicating rounds by
//! construction; the empirical content of the claim is that this budget
//! *suffices*: the success rate at fixed `γ` must stay ≈ 1 as `n` grows
//! (no hidden super-logarithmic requirement), and the round count must
//! fit `a·log₂ n + b` essentially perfectly.

use crate::opts::ExpOptions;
use crate::parallel::run_trials_fold;
use crate::table::{fmt, Table};
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::fit::log_fit;

/// Streaming per-point aggregate: nothing here scales with the trial
/// count, so the harness can run millions of trials in O(threads) memory.
#[derive(Default)]
struct Acc {
    trials: u64,
    successes: u64,
    /// Round count of trial 0 (the schedule is deterministic, so any
    /// trial would do; trial 0 pins the reported value).
    rounds_first: Option<usize>,
    mpar_sum: f64,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        self.trials += other.trials;
        self.successes += other.successes;
        self.rounds_first = self.rounds_first.or(other.rounds_first);
        self.mpar_sum += other.mpar_sum;
    }
}

/// Run E1 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gamma = 3.0;
    let sizes: Vec<usize> = [64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(2048))
        .collect();
    let trials = opts.trials(200);

    let mut table = Table::new(
        format!("E1 — rounds to consensus (γ = {gamma}, {trials} trials/point)"),
        &["n", "q", "rounds", "success rate", "mean msgs/agent/round"],
    );
    let mut points: Vec<(f64, f64)> = Vec::new();
    for &n in &sizes {
        let cfg = RunConfig::builder(n).gamma(gamma).colors(vec![n - n / 2, n / 2]).build();
        let acc = run_trials_fold(
            trials,
            opts.threads_for(trials),
            opts.seed,
            Acc::default,
            |acc, i, seed| {
                let r = run_protocol(&cfg, seed);
                acc.trials += 1;
                acc.successes += r.outcome.is_consensus() as u64;
                if i == 0 {
                    acc.rounds_first = Some(r.rounds);
                }
                acc.mpar_sum +=
                    r.metrics.messages_sent as f64 / (r.rounds.max(1) as f64 * n as f64);
            },
            Acc::merge,
        );
        let successes = acc.successes;
        let rounds = acc.rounds_first.expect("at least one trial");
        let mpar: f64 = acc.mpar_sum / acc.trials as f64;
        points.push((n as f64, rounds as f64));
        table.row(vec![
            n.to_string(),
            cfg.params().q.to_string(),
            rounds.to_string(),
            fmt::rate_ci(successes, trials as u64),
            fmt::f2(mpar),
        ]);
    }
    let fit = log_fit(&points);
    table.note(format!(
        "fit: rounds = {:.2}·log2(n) + {:.2}, R² = {:.4} (theory: slope 4γ = {:.0})",
        fit.slope,
        fit.intercept,
        fit.r2,
        4.0 * gamma
    ));
    table.note("paper claim: O(log n) rounds w.h.p. (Theorem 4)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_quick_produces_log_fit() {
        let tables = run(&ExpOptions::quick());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.rows.len() >= 3);
        // Every success-rate row should start with 1.000 at these sizes.
        for row in &t.rows {
            assert!(
                row[3].starts_with("1.000"),
                "success rate should be 1.0: {row:?}"
            );
        }
        assert!(t.notes[0].contains("R²"));
    }
}
