//! E6 — fault tolerance (Theorem 4 with `αn` worst-case permanent faults).
//!
//! The protocol tolerates any constant fault fraction `α < 1` *provided*
//! `γ = γ(α)` grows accordingly. Two policies are compared across `α`:
//! a fixed `γ = 3` (which must eventually degrade as `α → 1`) and the
//! adaptive `γ(α)` from the Chernoff sizing rule. Placements (low-ids,
//! random, strided) are shown to be interchangeable — the protocol is
//! id-symmetric, so the "worst-case" adversary has no leverage in
//! *where* it puts the faults.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use gossip_net::fault::Placement;
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::gamma_for_fault_tolerance;

/// Run E6 and produce its tables.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = if opts.quick { 128 } else { 256 };
    let alphas = [0.0, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9];
    let trials = opts.trials(160);

    // Fixed-γ vs adaptive-γ success rates.
    let mut table = Table::new(
        format!("E6 — success rate under αn worst-case permanent faults (n = {n}, {trials} trials/cell)"),
        &["α", "γ fixed=3", "success(γ=3)", "γ(α) adaptive", "success(γ(α))"],
    );
    for &alpha in &alphas {
        let adaptive_gamma = (gamma_for_fault_tolerance(alpha, 1.0) + 1.0).max(3.0);
        let succ_fixed = success_rate(n, 3.0, alpha, Placement::Random { seed: 1 }, trials, opts);
        let succ_adapt = success_rate(
            n,
            adaptive_gamma,
            alpha,
            Placement::Random { seed: 1 },
            trials,
            opts,
        );
        table.row(vec![
            fmt::f2(alpha),
            "3.00".into(),
            fmt::rate_ci(succ_fixed, trials as u64),
            fmt::f2(adaptive_gamma),
            fmt::rate_ci(succ_adapt, trials as u64),
        ]);
    }
    table.note("paper claim: consensus w.h.p. for any constant α < 1 with suitable γ(α)");

    // Placement equivalence at a challenging α.
    let alpha = 0.5;
    let gamma = 4.0;
    let mut placements = Table::new(
        format!("E6b — adversarial fault placements are equivalent (n = {n}, α = {alpha}, γ = {gamma})"),
        &["placement", "success rate"],
    );
    for (name, placement) in [
        ("low ids", Placement::LowIds),
        ("high ids", Placement::HighIds),
        ("strided", Placement::Strided),
        ("random", Placement::Random { seed: 7 }),
    ] {
        let s = success_rate(n, gamma, alpha, placement, trials, opts);
        placements.row(vec![name.to_string(), fmt::rate_ci(s, trials as u64)]);
    }
    placements.note("id-symmetry: the worst-case adversary gains nothing from placement choice");
    vec![table, placements]
}

fn success_rate(
    n: usize,
    gamma: f64,
    alpha: f64,
    placement: Placement,
    trials: usize,
    opts: &ExpOptions,
) -> u64 {
    let cfg = RunConfig::builder(n)
        .gamma(gamma)
        .colors(vec![n - n / 2, n / 2])
        .faults(alpha, placement)
        .build();
    run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        run_protocol(&cfg, seed).outcome.is_consensus()
    })
    .iter()
    .filter(|&&b| b)
    .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e06_adaptive_gamma_survives_high_alpha() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        // At α = 0.9, the adaptive-γ success rate should be high.
        let row = t.rows.iter().find(|r| r[0] == "0.90").expect("α=0.9 row");
        let rate: f64 = row[4].split(' ').next().unwrap().parse().unwrap();
        assert!(rate > 0.8, "adaptive γ should survive α=0.9: {row:?}");
    }

    #[test]
    fn e06_placements_all_succeed() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[1];
        for row in &t.rows {
            let rate: f64 = row[1].split(' ').next().unwrap().parse().unwrap();
            assert!(rate > 0.8, "placement {} too weak: {row:?}", row[0]);
        }
    }
}
