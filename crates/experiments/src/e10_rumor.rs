//! E10 — Find-Min is rumor spreading: the Θ(log n) pull-broadcast bound.
//!
//! The Find-Min phase is a single-source broadcast of the minimum
//! certificate via pulls; the paper's phase budget `q = γ·log n` leans on
//! the classical Θ(log n) convergence of pull gossip on the complete
//! graph ([Shah 2009], [Karp et al. 2000]). We measure rounds-to-full for
//! push, pull, and push-pull, fit the log slope, and check the protocol's
//! budget sits above the measured requirement.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use baselines::rumor::{spread_rumor, Mechanism};
use gossip_net::fault::FaultPlan;
use gossip_net::topology::Topology;
use rfc_stats::fit::log_fit;
use rfc_stats::Summary;

/// Run E10 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let sizes: Vec<usize> = [64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(4096))
        .collect();
    let trials = opts.trials(60);

    let mut table = Table::new(
        format!("E10 — rumor spreading rounds-to-full ({trials} trials/point)"),
        &["n", "push", "pull", "push-pull", "P's find-min budget (γ=3)"],
    );
    let mut pull_points = Vec::new();
    for &n in &sizes {
        let mut means = Vec::new();
        for mech in [Mechanism::Push, Mechanism::Pull, Mechanism::PushPull] {
            let rounds = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
                spread_rumor(
                    Topology::complete(n),
                    FaultPlan::none(n),
                    mech,
                    seed,
                    200 * gossip_net::ids::ceil_log2(n) as usize,
                )
                .rounds_to_full
                .expect("complete graph must finish") as f64
            });
            means.push(Summary::from_iter(rounds).mean());
        }
        pull_points.push((n as f64, means[1]));
        let budget = 3 * gossip_net::ids::ceil_log2(n) as usize;
        table.row(vec![
            n.to_string(),
            fmt::f2(means[0]),
            fmt::f2(means[1]),
            fmt::f2(means[2]),
            budget.to_string(),
        ]);
    }
    let fit = log_fit(&pull_points);
    table.note(format!(
        "pull fit: rounds = {:.2}·log2(n) + {:.2}, R² = {:.3} (classical Θ(log n))",
        fit.slope, fit.intercept, fit.r2
    ));
    table.note("P's find-min budget q = 3·log2(n) exceeds the measured pull requirement");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_budget_dominates_measured_rounds() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        for row in &t.rows {
            let pull: f64 = row[2].parse().unwrap();
            let budget: f64 = row[4].parse().unwrap();
            assert!(
                pull < budget,
                "find-min budget must exceed measured pull rounds: {row:?}"
            );
        }
    }
}
