//! E9 — fair leader election (the `c_u = u` special case).
//!
//! Every active agent must be elected with probability `1/|A|`. We run
//! many elections, tally per-agent win counts, and χ²-test against the
//! uniform distribution — with and without faults (faulty agents must
//! win with probability exactly 0, the remaining mass spread uniformly).

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use gossip_net::fault::Placement;
use rfc_core::election::{election_config, election_config_with_faults, ElectionResult};
use rfc_core::runner::run_protocol;
use rfc_stats::chi_square_gof;

/// Run E9 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let n = 64;
    let gamma = 3.0;
    let trials = opts.trials(3200);

    let mut table = Table::new(
        format!("E9 — fair leader election uniformity (n = {n}, γ = {gamma}, {trials} elections)"),
        &["setting", "fails", "min wins", "max wins", "χ² p-value", "verdict"],
    );

    // Fault-free.
    let cfg = election_config(n, gamma);
    let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        rfc_core::election::result_of(&run_protocol(&cfg, seed))
    });
    let mut wins = vec![0u64; n];
    let mut fails = 0u64;
    for r in &results {
        match r {
            ElectionResult::Leader(id) => wins[*id as usize] += 1,
            ElectionResult::Failed => fails += 1,
        }
    }
    let decided: u64 = wins.iter().sum();
    let expected = vec![decided as f64 / n as f64; n];
    let gof = chi_square_gof(&wins, &expected);
    table.row(vec![
        "fault-free".into(),
        fails.to_string(),
        wins.iter().min().unwrap().to_string(),
        wins.iter().max().unwrap().to_string(),
        fmt::f3(gof.p_value),
        if gof.consistent_at(0.01) { "uniform" } else { "BIASED" }.into(),
    ]);

    // With 25% faults on low ids: those agents must never win.
    let alpha = 0.25;
    let cfg_f = election_config_with_faults(n, 4.0, alpha, Placement::LowIds);
    let n_faulty = (n as f64 * alpha) as usize;
    let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
        rfc_core::election::result_of(&run_protocol(&cfg_f, seed))
    });
    let mut wins = vec![0u64; n];
    let mut fails = 0u64;
    for r in &results {
        match r {
            ElectionResult::Leader(id) => wins[*id as usize] += 1,
            ElectionResult::Failed => fails += 1,
        }
    }
    let faulty_wins: u64 = wins[..n_faulty].iter().sum();
    let active_wins: Vec<u64> = wins[n_faulty..].to_vec();
    let decided: u64 = active_wins.iter().sum();
    let expected = vec![decided as f64 / (n - n_faulty) as f64; n - n_faulty];
    let gof = chi_square_gof(&active_wins, &expected);
    let verdict = if gof.consistent_at(0.01) && faulty_wins == 0 {
        "uniform over A"
    } else {
        "BIASED"
    };
    table.row(vec![
        format!("α = {alpha} (low ids faulty)"),
        fails.to_string(),
        active_wins.iter().min().unwrap().to_string(),
        active_wins.iter().max().unwrap().to_string(),
        fmt::f3(gof.p_value),
        verdict.into(),
    ]);
    table.note(format!("faulty agents won {faulty_wins} elections (must be 0)"));
    table.note("paper: fair leader election = fair consensus with c_u = u; every active agent elected w.p. 1/|A|");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e09_uniform_and_faulty_never_win() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        assert_eq!(t.rows[0][5], "uniform", "{:?}", t.rows[0]);
        assert_eq!(t.rows[1][5], "uniform over A", "{:?}", t.rows[1]);
        assert!(t.notes[0].contains("won 0 elections"));
    }
}
