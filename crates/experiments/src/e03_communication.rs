//! E3 — total communication: `O(n log³ n)` vs the `Ω(n²)` LOCAL baseline.
//!
//! The paper's headline efficiency claim: all prior rational fair
//! consensus protocols broadcast all-to-all (`Ω(n²)` messages, `Ω(n)`
//! memory); protocol `P` is the first with `o(n²)` communication. We
//! measure total bits for both across a sweep of `n`, fit the growth
//! exponents in log-log space (expected ≈ 1 for `P`, = 2 for LOCAL), and
//! report where the curves cross.

use crate::opts::ExpOptions;
use crate::parallel::run_trials;
use crate::table::{fmt, Table};
use baselines::local_fair::run_local_fair;
use rfc_core::runner::{run_protocol, RunConfig};
use rfc_stats::fit::power_fit;
use rfc_stats::Summary;

/// Run E3 and produce its table.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let gamma = 3.0;
    let sizes: Vec<usize> = [64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= opts.cap_n(4096))
        .collect();
    let trials = opts.trials(40);

    let mut table = Table::new(
        format!("E3 — total communication, P vs LOCAL all-to-all (γ = {gamma})"),
        &[
            "n",
            "P bits",
            "P bits/(n·log₂³n)",
            "LOCAL bits",
            "LOCAL/P",
            "P msgs",
            "LOCAL msgs",
            "P mem/agent",
            "LOCAL mem/agent",
        ],
    );
    let mut p_points = Vec::new();
    let mut local_points = Vec::new();
    let mut crossover: Option<usize> = None;
    for &n in &sizes {
        let cfg = RunConfig::builder(n).gamma(gamma).build();
        let results = run_trials(trials, opts.threads_for(trials), opts.seed, |seed| {
            let r = run_protocol(&cfg, seed);
            (r.metrics.bits_sent as f64, r.metrics.messages_sent as f64)
        });
        let p_bits = Summary::from_iter(results.iter().map(|r| r.0)).mean();
        let p_msgs = Summary::from_iter(results.iter().map(|r| r.1)).mean();
        let colors = vec![0; n];
        let local = run_local_fair(n, &colors, opts.seed);
        let l_bits = local.cost.bits as f64;
        // P per-agent memory: ledger (q lists of q entries) + votes +
        // certificate ≈ O(log² n)·O(log n) bits.
        let params = cfg.params();
        let env = gossip_net::size::SizeEnv::with_params(n, params.m, params.q, 2);
        let p_mem = (params.q as u64 * params.q as u64) * env.intent_entry_bits()
            + 2 * params.q as u64 * env.vote_record_bits();
        if p_bits < l_bits && crossover.is_none() {
            crossover = Some(n);
        }
        p_points.push((n as f64, p_bits));
        local_points.push((n as f64, l_bits));
        let log2n = (n as f64).log2();
        table.row(vec![
            n.to_string(),
            fmt::f2(p_bits),
            fmt::f2(p_bits / (n as f64 * log2n.powi(3))),
            fmt::f2(l_bits),
            fmt::f2(l_bits / p_bits),
            fmt::f2(p_msgs),
            local.cost.messages.to_string(),
            p_mem.to_string(),
            local.cost.memory_bits_per_agent.to_string(),
        ]);
    }
    let p_fit = power_fit(&p_points);
    let l_fit = power_fit(&local_points);
    table.note(format!(
        "growth exponents (log-log fit): P = n^{:.2} (R²={:.3}), LOCAL = n^{:.2} (R²={:.3})",
        p_fit.exponent, p_fit.r2, l_fit.exponent, l_fit.r2
    ));
    match crossover {
        Some(n) => table.note(format!("P is cheaper than LOCAL from n = {n} on (within this sweep)")),
        None => table.note("P not yet cheaper within this sweep (expected only at very small n)"),
    };
    table.note("the normalized column P/(n·log₂³n) must approach a constant if the paper's O(n log³ n) bound is exact");
    table.note("paper claim: O(n log³ n) total bits vs Ω(n²) for prior LOCAL protocols");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e03_exponents_separate() {
        let tables = run(&ExpOptions::quick());
        let note = &tables[0].notes[0];
        // Parse the two exponents out of the note.
        let nums: Vec<f64> = note
            .split("n^")
            .skip(1)
            .filter_map(|s| s.split_whitespace().next())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "{note}");
        let (p, local) = (nums[0], nums[1]);
        assert!(p < 1.6, "P exponent too high: {p}");
        assert!(local > 1.8, "LOCAL exponent should be ≈2: {local}");
        assert!(local - p > 0.5, "curves should separate: {note}");
    }
}
