#![warn(missing_docs)]
//! # experiments — the Monte-Carlo harness regenerating EXPERIMENTS.md
//!
//! The paper is theory-only (no empirical tables or figures), so the
//! reproduction target is its *stated analytical results*: every theorem,
//! lemma, and complexity claim maps to one experiment here (the table in
//! DESIGN.md §4 is authoritative):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 4 — consensus in `O(log n)` rounds |
//! | E2 | Theorem 4 — messages of `O(log² n)` bits |
//! | E3 | `O(n log³ n)` total communication vs `Ω(n²)` LOCAL baselines |
//! | E4 | Fairness: `Pr[win = c] = fraction(c)` (+ unfair plurality contrast) |
//! | E5 | Lemma 3 — good executions w.h.p., the γ-transition |
//! | E6 | Theorem 4 — `αn` worst-case permanent faults, γ(α) sizing |
//! | E7 | Theorem 7 — whp t-strong equilibrium vs the 10-attack suite |
//! | E8 | Naive min-badge election is NOT an equilibrium; `P` is |
//! | E9 | Fair leader election (`c_u = u`): uniform over active agents |
//! | E10 | Find-Min = pull rumor spreading, Θ(log n) |
//! | E11 | Ablations: m = n³, Verification, Coherence all load-bearing |
//! | E12 | Extensions: other graph classes + sequential GOSSIP |
//! | E13 | Failure injection: per-message loss vs the reliable-channel assumption |
//! | E14 | Production-scale throughput sweep (n up to 10⁵, streaming fold) |
//! | E15 | Dynamic adversity: scripted churn, partitions, loss bursts |
//! | E16 | Million-agent single trials: intra-trial sharding (staged engine) |
//! | E17 | Multi-instance plane: concurrent instances multiplexed over one network |
//!
//! Every number is a deterministic function of `(experiment, master
//! seed)` regardless of thread count ([`parallel`]); results render as
//! aligned text, CSV, and JSON ([`table`]). Run them via the
//! `rfc-experiments` binary or [`run_by_id`] / [`all_experiments`].
//! (The throughput/RSS columns of E14 and E16 are the one exception:
//! they are wall-clock measurements by design — their digest/count
//! columns stay seed-deterministic.)
//!
//! ## Aggregation styles
//!
//! [`parallel`] offers two harnesses. The buffered [`run_trials`] /
//! [`par_map`] return a `Vec` in trial order — O(trials) memory, right
//! for modest sweeps that need every sample. The streaming
//! [`run_trials_fold`] / [`parallel::par_fold`] fold trials into
//! mergeable accumulators (see `rfc_stats::{Summary, Tally, Histogram}`)
//! block by block with O(threads) peak memory and **bit-identical**
//! output for every thread count — the million-trial path E1/E4/E5/E7
//! and E14 run on. The `*_with_scratch` variants add per-worker state:
//! E7 and E14 pass `rfc_core::TrialArena::new`, so each worker recycles
//! one simulation network (enum-dispatched agents, reused buffers)
//! across all its trials instead of rebuilding boxed agents per trial.

pub mod e01_rounds;
pub mod e02_message_size;
pub mod e03_communication;
pub mod e04_fairness;
pub mod e05_good_executions;
pub mod e06_fault_tolerance;
pub mod e07_equilibrium;
pub mod e08_naive_attack;
pub mod e09_leader_election;
pub mod e10_rumor;
pub mod e11_ablations;
pub mod e12_extensions;
pub mod e13_message_loss;
pub mod e14_scale;
pub mod e15_dynamics;
pub mod e16_million;
pub mod e17_instances;
pub mod opts;
pub mod parallel;
pub mod table;

pub use opts::ExpOptions;
pub use parallel::{
    default_threads, par_fold_with_scratch, par_map, run_trials, run_trials_fold,
    run_trials_fold_resumable, run_trials_fold_with_scratch, FoldCheckpoint,
};
pub use table::Table;

/// A registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Short id, e.g. `"e04"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Entry point.
    pub run: fn(&ExpOptions) -> Vec<Table>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// All experiments in id order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e01",
            title: "rounds to consensus (Theorem 4)",
            run: e01_rounds::run,
        },
        Experiment {
            id: "e02",
            title: "message sizes (Theorem 4)",
            run: e02_message_size::run,
        },
        Experiment {
            id: "e03",
            title: "total communication vs LOCAL baseline",
            run: e03_communication::run,
        },
        Experiment {
            id: "e04",
            title: "fairness of the winning-color distribution",
            run: e04_fairness::run,
        },
        Experiment {
            id: "e05",
            title: "good executions (Lemma 3)",
            run: e05_good_executions::run,
        },
        Experiment {
            id: "e06",
            title: "fault tolerance (αn permanent faults)",
            run: e06_fault_tolerance::run,
        },
        Experiment {
            id: "e07",
            title: "whp t-strong equilibrium (Theorem 7)",
            run: e07_equilibrium::run,
        },
        Experiment {
            id: "e08",
            title: "naive protocol attack vs P",
            run: e08_naive_attack::run,
        },
        Experiment {
            id: "e09",
            title: "fair leader election uniformity",
            run: e09_leader_election::run,
        },
        Experiment {
            id: "e10",
            title: "pull rumor spreading (Find-Min budget)",
            run: e10_rumor::run,
        },
        Experiment {
            id: "e11",
            title: "ablations (m, Verification, Coherence)",
            run: e11_ablations::run,
        },
        Experiment {
            id: "e12",
            title: "extensions: graphs + async GOSSIP",
            run: e12_extensions::run,
        },
        Experiment {
            id: "e13",
            title: "failure injection: message loss",
            run: e13_message_loss::run,
        },
        Experiment {
            id: "e14",
            title: "production-scale throughput sweep (streaming fold)",
            run: e14_scale::run,
        },
        Experiment {
            id: "e15",
            title: "dynamic adversity: churn, partitions, loss bursts",
            run: e15_dynamics::run,
        },
        Experiment {
            id: "e16",
            title: "million-agent single trials (staged engine, shard sweep)",
            run: e16_million::run,
        },
        Experiment {
            id: "e17",
            title: "multi-instance gossip plane (throughput, priority, interference)",
            run: e17_instances::run,
        },
    ]
}

/// Run one experiment by id (`"e01"`…`"e17"`); `None` if unknown.
pub fn run_by_id(id: &str, opts: &ExpOptions) -> Option<Vec<Table>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 17);
        for (i, e) in exps.iter().enumerate() {
            assert_eq!(e.id, format!("e{:02}", i + 1));
            assert!(!e.title.is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("e99", &ExpOptions::quick()).is_none());
    }
}
