//! The harness's headline guarantee: every experiment's output is a pure
//! function of `(experiment, master seed)` — independent of thread count
//! and of which worker executes which trial.

use experiments::{run_by_id, ExpOptions, Table};

fn render_all(tables: &[Table]) -> String {
    tables.iter().map(|t| t.render()).collect::<Vec<_>>().join("\n")
}

#[test]
fn experiment_output_is_thread_count_invariant() {
    // E1 quick exercises a genuine multi-size sweep; compare 1 vs 4
    // workers byte-for-byte.
    let single = ExpOptions {
        quick: true,
        seed: 0xD0D0,
        threads: 1,
        ..Default::default()
    };
    let multi = ExpOptions {
        quick: true,
        seed: 0xD0D0,
        threads: 4,
        ..Default::default()
    };
    let a = run_by_id("e01", &single).unwrap();
    let b = run_by_id("e01", &multi).unwrap();
    assert_eq!(render_all(&a), render_all(&b));
}

#[test]
fn fold_experiments_are_bit_identical_for_1_2_8_threads() {
    // The streaming-fold ports (E1, E4, E5, E7) quote floating-point
    // digits; the block-merge contract must make every thread count
    // reproduce them byte-for-byte, not merely approximately.
    for id in ["e01", "e04", "e05", "e07"] {
        let render = |threads: usize| {
            let opts = ExpOptions {
                quick: true,
                seed: 0xF01D,
                threads,
                ..Default::default()
            };
            render_all(&run_by_id(id, &opts).unwrap())
        };
        let one = render(1);
        for threads in [2, 8] {
            assert_eq!(
                one,
                render(threads),
                "{id}: output differs between 1 and {threads} worker threads"
            );
        }
    }
}

#[test]
fn experiment_output_depends_on_seed() {
    let s1 = ExpOptions {
        quick: true,
        seed: 1,
        threads: 2,
        ..Default::default()
    };
    let s2 = ExpOptions {
        quick: true,
        seed: 2,
        threads: 2,
        ..Default::default()
    };
    // E4's observed shares are seed-dependent even when the verdicts
    // agree; the rendered tables must differ somewhere.
    let a = run_by_id("e04", &s1).unwrap();
    let b = run_by_id("e04", &s2).unwrap();
    assert_ne!(render_all(&a), render_all(&b));
}

#[test]
fn csv_matches_table_dimensions() {
    let opts = ExpOptions {
        quick: true,
        seed: 9,
        threads: 2,
        ..Default::default()
    };
    for id in ["e05", "e11"] {
        for table in run_by_id(id, &opts).unwrap() {
            let csv = table.to_csv();
            let lines: Vec<&str> = csv.lines().collect();
            assert_eq!(
                lines.len(),
                table.rows.len() + 1,
                "{id}: CSV row count mismatch"
            );
            let header_cols = lines[0].split(',').count();
            assert_eq!(header_cols, table.columns.len(), "{id}: CSV header width");
        }
    }
}

#[test]
fn rerunning_the_same_experiment_is_idempotent() {
    let opts = ExpOptions {
        quick: true,
        seed: 0xABC,
        threads: 3,
        ..Default::default()
    };
    let a = run_by_id("e10", &opts).unwrap();
    let b = run_by_id("e10", &opts).unwrap();
    assert_eq!(render_all(&a), render_all(&b));
}
