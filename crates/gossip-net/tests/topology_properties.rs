//! Property-based tests for the topology layer: sampled peers always
//! respect adjacency, generators produce what they promise, and CSR
//! round-trips are exact.

use gossip_net::rng::DetRng;
use gossip_net::topology::{Csr, Topology};
use gossip_net::AgentId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sampled peers are always within the graph and adjacent to the
    /// sampler (or the sampler itself on the complete graph / isolated
    /// vertices).
    #[test]
    fn sampled_peers_respect_adjacency(
        n in 3usize..64,
        p in 0.0f64..1.0,
        u in 0u32..64,
        seed in any::<u64>(),
    ) {
        let u = u % n as u32;
        let mut rng = DetRng::seeded(seed, 0);
        for topo in [
            Topology::complete(n),
            Topology::erdos_renyi(n, p, seed),
            Topology::ring(n.max(3)),
        ] {
            for _ in 0..50 {
                let v = topo.sample_peer(u, &mut rng);
                prop_assert!((v as usize) < topo.n());
                prop_assert!(
                    topo.connected(u, v) || v == u,
                    "sampled non-neighbor {v} for {u}"
                );
            }
        }
    }

    /// Erdős–Rényi degree sums are even (handshake lemma) and the edge
    /// count concentrates around p·n(n−1)/2 for moderate sizes.
    #[test]
    fn erdos_renyi_handshake_lemma(
        n in 4usize..80,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let topo = Topology::erdos_renyi(n, p, seed);
        let degree_sum: usize = (0..n as AgentId).map(|u| topo.degree(u)).sum();
        prop_assert_eq!(degree_sum % 2, 0, "handshake lemma violated");
        // Self-loops never occur.
        for u in 0..n as AgentId {
            if let Topology::Sparse(csr) = &topo {
                prop_assert!(!csr.neighbors(u).contains(&u), "self-loop at {u}");
            }
        }
    }

    /// Ring: every vertex has degree exactly 2 and the graph is a single
    /// cycle (connected 2-regular).
    #[test]
    fn ring_is_a_single_cycle(n in 3usize..100) {
        let topo = Topology::ring(n);
        for u in 0..n as AgentId {
            prop_assert_eq!(topo.degree(u), 2);
        }
        // Walk the cycle: n distinct steps return to the origin.
        let mut visited = vec![false; n];
        let mut prev: AgentId = 0;
        let mut cur: AgentId = 1; // neighbor of 0
        visited[0] = true;
        for _ in 1..n {
            prop_assert!(!visited[cur as usize], "revisited early: not a single cycle");
            visited[cur as usize] = true;
            // Step to the neighbor that is not where we came from.
            let (a, b) = ((cur as usize + n - 1) % n, (cur as usize + 1) % n);
            let next = if a as u32 == prev { b as u32 } else { a as u32 };
            prev = cur;
            cur = next;
        }
        prop_assert_eq!(cur, 0, "cycle must close");
        prop_assert!(visited.iter().all(|&v| v));
    }

    /// Random-regular, pinning the documented behavior: the graph is
    /// always **simple** (no self-loops, no parallel edges, symmetric),
    /// every degree is ≤ d, the handshake lemma holds, and — away from
    /// the degenerate small-n regime — the overwhelming fraction of
    /// vertices get degree exactly d.
    #[test]
    fn random_regular_degree_bounds(
        half_n in 2usize..40,
        d in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = 2 * half_n; // ensures n·d even for any d
        prop_assume!(d < n);
        let topo = Topology::random_regular(n, d, seed);
        let Topology::Sparse(csr) = &topo else {
            panic!("random_regular must be sparse");
        };
        prop_assert!(csr.is_symmetric(), "graph must be undirected");
        let mut sum = 0usize;
        for u in 0..n as AgentId {
            let nbrs = csr.neighbors(u);
            prop_assert!(!nbrs.contains(&u), "self-loop at {u}");
            let mut sorted: Vec<AgentId> = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nbrs.len(), "parallel edge at {}", u);
            let deg = nbrs.len();
            prop_assert!(deg <= d, "degree {deg} exceeds d={d}");
            sum += deg;
        }
        prop_assert_eq!(sum % 2, 0);
        // Dropping self-loops/parallel edges loses O(d) edges in
        // expectation; away from the tiny-n regime the loss is a vanishing
        // fraction: ≥ 90% of stubs kept, and ≥ 3/4 of vertices get their
        // full degree d.
        if n >= 16 * d {
            prop_assert!(sum * 10 >= 9 * n * d, "too many dropped edges: {sum} < 0.9·{}", n * d);
            let full = (0..n as AgentId).filter(|&u| topo.degree(u) == d).count();
            prop_assert!(
                full * 4 >= 3 * n,
                "only {full}/{n} vertices reached degree d = {d}"
            );
        }
    }

    /// CSR round-trip: building from adjacency lists preserves every
    /// neighbor slice exactly.
    #[test]
    fn csr_round_trip(adj_spec in proptest::collection::vec(
        proptest::collection::vec(0u32..32, 0..8), 1..32)
    ) {
        let n = adj_spec.len() as u32;
        let adj: Vec<Vec<AgentId>> = adj_spec
            .iter()
            .map(|row| row.iter().map(|&v| v % n).collect())
            .collect();
        let csr = Csr::from_adjacency(&adj);
        prop_assert_eq!(csr.n(), adj.len());
        for (u, row) in adj.iter().enumerate() {
            prop_assert_eq!(csr.neighbors(u as AgentId), row.as_slice());
        }
        prop_assert_eq!(csr.edge_slots(), adj.iter().map(Vec::len).sum::<usize>());
    }

    /// Complete-graph sampling is uniform over [n] (χ²-free coarse check:
    /// every vertex hit at least once with enough draws).
    #[test]
    fn complete_sampling_covers(n in 2usize..32, seed in any::<u64>()) {
        let topo = Topology::complete(n);
        let mut rng = DetRng::seeded(seed, 1);
        let mut hit = vec![false; n];
        for _ in 0..n * 50 {
            hit[topo.sample_peer(0, &mut rng) as usize] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "some vertex never sampled");
    }
}
