//! Dynamics edge cases: partition overlays, churn event ordering, and
//! the loss-draw discipline.
//!
//! Three families:
//!
//! * **Property tests** — the partition mask preserves CSR symmetry for
//!   any cut over any graph; `sample_peer` keeps its self-delivery
//!   contract on isolated / fully-partitioned vertices; `ring(n)`
//!   enforces its minimum size.
//! * **Engine semantics** — crash stops an agent's sends and receipts
//!   from its round on, recover resumes them; same-round events apply
//!   in script order (recover-then-crash leaves the agent down); a
//!   cross-cut delivery is metered but suppressed.
//! * **Loss-draw audit** — in a dynamic run the loss stream is derived
//!   per round, so editing a burst window or adding scenario events
//!   cannot perturb the delivery pattern of unrelated rounds.

use gossip_net::dynamics::{LossSchedule, PartitionCut, ScenarioScript};
use gossip_net::fault::{FaultPlan, Placement};
use gossip_net::network::{Network, NetworkConfig};
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;
use gossip_net::{Agent, AgentId, Op, RoundCtx};
use proptest::prelude::*;

/// Test message: one number, 8 bits.
#[derive(Clone, Debug, PartialEq)]
struct Num(u64);
impl MsgSize for Num {
    fn size_bits(&self, _env: &SizeEnv) -> u64 {
        8
    }
}

/// Pushes its id to a fixed target every round; records `(round, from)`
/// for everything it hears.
struct Recorder {
    id: AgentId,
    target: AgentId,
    heard: Vec<(usize, AgentId)>,
    sent: Vec<usize>,
}

impl Recorder {
    fn new(id: AgentId, target: AgentId) -> Self {
        Recorder {
            id,
            target,
            heard: vec![],
            sent: vec![],
        }
    }
}

impl Agent<Num> for Recorder {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Num>> {
        self.sent.push(ctx.round);
        Some(Op::push(self.target, Num(self.id as u64)))
    }
    fn on_push(&mut self, from: AgentId, _msg: &Num, ctx: &RoundCtx) {
        self.heard.push((ctx.round, from));
    }
}

fn recorder_net(
    n: usize,
    target: AgentId,
    config: NetworkConfig,
) -> Network<Num, Recorder> {
    let agents = (0..n as AgentId).map(|id| Recorder::new(id, target)).collect();
    Network::with_config(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
        config,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Masking any symmetric graph by any cut yields a symmetric graph
    /// (the overlay removes edges in both directions at once).
    #[test]
    fn partition_mask_preserves_csr_symmetry(
        n in 3usize..48,
        p in 0.0f64..1.0,
        split in 0usize..48,
        seed in any::<u64>(),
    ) {
        let split = split % (n + 1);
        let cut = PartitionCut::split_at(n, split);
        for base in [Topology::complete(n), Topology::erdos_renyi(n, p, seed), Topology::ring(n)] {
            match cut.mask(&base) {
                Topology::Sparse(csr) => prop_assert!(csr.is_symmetric()),
                Topology::Complete { .. } => prop_assert!(false, "mask must be sparse"),
            }
        }
    }

    /// The mask keeps exactly the non-crossing edges: `connected` on the
    /// masked graph agrees with `connected && !blocks` on the base.
    #[test]
    fn partition_mask_agrees_with_blocks(
        n in 3usize..32,
        p in 0.0f64..1.0,
        split in 0usize..32,
        seed in any::<u64>(),
    ) {
        let split = split % (n + 1);
        let cut = PartitionCut::split_at(n, split);
        let base = Topology::erdos_renyi(n, p, seed);
        let masked = cut.mask(&base);
        for u in 0..n as AgentId {
            for v in 0..n as AgentId {
                if u == v {
                    continue; // self-addressing handled by `connected` uniformly
                }
                prop_assert_eq!(
                    masked.connected(u, v),
                    base.connected(u, v) && !cut.blocks(u, v),
                    "mask mismatch at ({}, {})", u, v
                );
            }
        }
    }

    /// `sample_peer` self-delivery contract survives the overlay: a
    /// vertex whose entire neighborhood is cross-cut becomes isolated in
    /// the masked graph and must sample itself.
    #[test]
    fn fully_partitioned_vertex_samples_itself(
        n in 4usize..40,
        seed in any::<u64>(),
    ) {
        // Side 0 = {0}: vertex 0 is alone on its side, so the masked
        // graph isolates it from every base neighbor.
        let cut = PartitionCut::split_at(n, 1);
        let mut rng = DetRng::seeded(seed, 0);
        for base in [Topology::complete(n), Topology::ring(n)] {
            let masked = cut.mask(&base);
            prop_assert_eq!(masked.degree(0), 0);
            for _ in 0..20 {
                prop_assert_eq!(masked.sample_peer(0, &mut rng), 0,
                    "isolated vertex must self-deliver");
            }
            // Untouched vertices keep sampling within their own side.
            let v = masked.sample_peer(2, &mut rng);
            prop_assert!(v >= 1, "side-1 vertices never sample the cut-off vertex");
        }
    }
}

#[test]
#[should_panic(expected = "at least three")]
fn ring_rejects_fewer_than_three_vertices() {
    let _ = Topology::ring(2);
}

#[test]
fn ring_minimum_size_is_three() {
    let t = Topology::ring(3);
    assert_eq!(t.n(), 3);
    for u in 0..3 {
        assert_eq!(t.degree(u), 2);
    }
}

// ---------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------

#[test]
fn crash_silences_and_recover_resumes() {
    // Everyone pushes to agent 0; agent 1 is down for rounds 4..8.
    let script = ScenarioScript::new().crash(4, vec![1]).recover(8, vec![1]);
    let mut net = recorder_net(
        3,
        0,
        NetworkConfig {
            scenario: script,
            ..NetworkConfig::default()
        },
    );
    net.run(12);
    // Sender side: agent 1 acted every round except 4..8.
    let sent = &net.agent(1).sent;
    let expect: Vec<usize> = (0..12).filter(|r| !(4..8).contains(r)).collect();
    assert_eq!(sent, &expect);
    // Receiver side: agent 0 heard agent 1 exactly in those rounds.
    let heard_from_1: Vec<usize> = net
        .agent(0)
        .heard
        .iter()
        .filter(|(_, from)| *from == 1)
        .map(|(r, _)| *r)
        .collect();
    assert_eq!(heard_from_1, expect);
    // While down, pushes TO agent 1 were dropped: it heard nothing in 4..8.
    assert!(net.agent(1).heard.iter().all(|(r, _)| !(4..8).contains(r)));
    // Metering: every push was metered (3 per round), the ones to/from a
    // crashed agent show up as undelivered only on the receive side.
    assert_eq!(net.metrics().messages_sent, 3 * 12 - 4 /* agent 1 silent 4 rounds */);
}

#[test]
fn same_round_events_apply_in_script_order() {
    // recover-then-crash within one round ⇒ the agent is down that round.
    let down_wins = ScenarioScript::new()
        .crash(0, vec![1])
        .recover(5, vec![1])
        .crash(5, vec![1]);
    let mut net = recorder_net(
        2,
        0,
        NetworkConfig {
            scenario: down_wins,
            ..NetworkConfig::default()
        },
    );
    net.run(8);
    assert!(net.agent(1).sent.is_empty(), "re-crash in the same round wins");
    assert!(net.fault_state().is_down(1));

    // crash-then-recover within one round ⇒ the agent stays up.
    let up_wins = ScenarioScript::new().crash(5, vec![1]).recover(5, vec![1]);
    let mut net = recorder_net(
        2,
        0,
        NetworkConfig {
            scenario: up_wins,
            ..NetworkConfig::default()
        },
    );
    net.run(8);
    assert_eq!(net.agent(1).sent.len(), 8, "crash-then-recover is a no-op round");
    assert!(!net.fault_state().is_down(1));
}

#[test]
fn plan_faults_never_recover_via_script() {
    let script = ScenarioScript::new().recover(2, vec![0]);
    let agents = (0..3).map(|id| Recorder::new(id, 2)).collect();
    let mut net: Network<Num, Recorder> = Network::with_config(
        Topology::complete(3),
        SizeEnv::for_n(3),
        agents,
        FaultPlan::place(3, 1, Placement::LowIds),
        NetworkConfig {
            scenario: script,
            ..NetworkConfig::default()
        },
    );
    net.run(6);
    assert!(net.agent(0).sent.is_empty(), "plan fault must stay quiescent");
    assert!(net.fault_state().is_down(0));
}

#[test]
fn partition_blocks_and_meters_cross_cut_pushes() {
    // 0 and 1 on side A, 2 and 3 on side B; everyone pushes to agent 0.
    let cut = PartitionCut::split_at(4, 2);
    let script = ScenarioScript::new().partition(3, cut).heal(6);
    let mut net = recorder_net(
        4,
        0,
        NetworkConfig {
            scenario: script,
            ..NetworkConfig::default()
        },
    );
    net.run(9);
    // All 4 agents push every round: all metered.
    assert_eq!(net.metrics().messages_sent, 4 * 9);
    // Cross-cut pushes from 2 and 3 during rounds 3..6 are undelivered.
    assert_eq!(net.metrics().undelivered, 2 * 3);
    let heard_cross: Vec<&(usize, AgentId)> = net
        .agent(0)
        .heard
        .iter()
        .filter(|(r, from)| (3..6).contains(r) && *from >= 2)
        .collect();
    assert!(heard_cross.is_empty(), "no cross-cut delivery while partitioned");
    // Same-side and post-heal traffic flows.
    assert!(net.agent(0).heard.iter().any(|(r, from)| *r == 4 && *from == 1));
    assert!(net.agent(0).heard.iter().any(|(r, from)| *r == 7 && *from == 3));
}

#[test]
fn partition_yields_silence_to_cross_cut_pulls() {
    struct Puller {
        target: AgentId,
        replies: Vec<(usize, bool)>,
    }
    impl Agent<Num> for Puller {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            Some(Op::pull(self.target, Num(0)))
        }
        fn on_pull(&mut self, _f: AgentId, _q: &Num, _c: &RoundCtx) -> Option<Num> {
            Some(Num(1))
        }
        fn on_reply(&mut self, _f: AgentId, reply: Option<Num>, ctx: &RoundCtx) {
            self.replies.push((ctx.round, reply.is_some()));
        }
    }
    let cut = PartitionCut::split_at(2, 1);
    let script = ScenarioScript::new().partition(2, cut).heal(5);
    let agents = vec![Puller { target: 1, replies: vec![] }, Puller { target: 0, replies: vec![] }];
    let mut net: Network<Num, Puller> = Network::with_config(
        Topology::complete(2),
        SizeEnv::for_n(2),
        agents,
        FaultPlan::none(2),
        NetworkConfig {
            scenario: script,
            ..NetworkConfig::default()
        },
    );
    net.run(8);
    for agent in net.agents() {
        for &(r, answered) in &agent.replies {
            assert_eq!(
                answered,
                !(2..5).contains(&r),
                "cross-cut pull must observe silence exactly while partitioned (round {r})"
            );
        }
    }
    // 2 queries/round metered; replies produced only outside the cut
    // window; cross-cut queries counted undelivered.
    assert_eq!(net.metrics().messages_sent, 2 * 8 + 2 * 5);
    assert_eq!(net.metrics().undelivered, 2 * 3);
}

#[test]
fn scheduled_loss_follows_the_piecewise_probability() {
    // p = 0 except a total blackout in rounds 50..60.
    let schedule = LossSchedule::burst(0.0, 1.0, 50, 60);
    let mut net = recorder_net(
        2,
        0,
        NetworkConfig {
            loss_schedule: Some(schedule),
            loss_seed: 7,
            ..NetworkConfig::default()
        },
    );
    net.run(100);
    let heard_from_1: Vec<usize> = net
        .agent(0)
        .heard
        .iter()
        .filter(|(_, f)| *f == 1)
        .map(|(r, _)| *r)
        .collect();
    let expect: Vec<usize> = (0..100).filter(|r| !(50..60).contains(r)).collect();
    assert_eq!(heard_from_1, expect, "blackout must drop exactly its window");
    assert_eq!(net.metrics().messages_sent, 200, "lost messages are still metered");
    assert_eq!(net.metrics().undelivered, 2 * 10);
}

// ---------------------------------------------------------------------
// Loss-draw audit: the dynamic discipline isolates rounds
// ---------------------------------------------------------------------

/// Delivery fingerprint: the sorted (round, sender) pairs agent 0 heard,
/// restricted to rounds outside `window`.
fn heard_outside(net: &Network<Num, Recorder>, window: std::ops::Range<usize>) -> Vec<(usize, AgentId)> {
    net.agent(0)
        .heard
        .iter()
        .filter(|(r, _)| !window.contains(r))
        .copied()
        .collect()
}

#[test]
fn editing_a_burst_window_cannot_perturb_other_rounds() {
    let run = |schedule: LossSchedule| {
        let mut net = recorder_net(
            4,
            0,
            NetworkConfig {
                loss_schedule: Some(schedule),
                loss_seed: 99,
                ..NetworkConfig::default()
            },
        );
        net.run(40);
        net
    };
    // Both runs are dynamic (multi-piece schedules) and agree on p
    // outside [10, 20): the delivery pattern there must be identical,
    // draw for draw, no matter what the window does.
    let mild = run(LossSchedule::burst(0.3, 0.5, 10, 20));
    let brutal = run(LossSchedule::burst(0.3, 1.0, 10, 20));
    assert_eq!(
        heard_outside(&mild, 10..20),
        heard_outside(&brutal, 10..20),
        "rounds outside the burst window must see identical loss draws"
    );
    // Sanity: the window itself differs (total blackout vs partial).
    assert!(mild.agent(0).heard.iter().any(|(r, _)| (10..20).contains(r)));
    assert!(!brutal.agent(0).heard.iter().any(|(r, _)| (10..20).contains(r)));
}

#[test]
fn enabling_a_scenario_script_cannot_perturb_loss_draws_elsewhere() {
    let run = |scenario: ScenarioScript| {
        let mut net = recorder_net(
            4,
            0,
            NetworkConfig {
                loss_probability: 0.3,
                loss_seed: 41,
                scenario,
                ..NetworkConfig::default()
            },
        );
        net.run(40);
        net
    };
    // A no-op event (heal with no cut installed) vs a real partition
    // during [12, 18): both runs are dynamic with the same constant loss
    // probability. Outside the partition window, the same messages flow
    // in the same order — so the per-round loss streams must give
    // identical delivery patterns even though the partition suppressed
    // traffic (and thus shifted any naive shared-stream draw count).
    let baseline = run(ScenarioScript::new().heal(0));
    let cut = PartitionCut::split_at(4, 2);
    let partitioned = run(ScenarioScript::new().partition(12, cut).heal(18));
    assert_eq!(
        heard_outside(&baseline, 12..18),
        heard_outside(&partitioned, 12..18),
        "scenario events must not perturb the loss stream of unrelated rounds"
    );
}

#[test]
fn static_lossy_run_keeps_the_legacy_single_stream() {
    // A constant schedule with no scenario must replay the legacy
    // loss_probability path exactly — same stream, same deliveries.
    let legacy = {
        let mut net = recorder_net(
            4,
            0,
            NetworkConfig {
                loss_probability: 0.3,
                loss_seed: 13,
                ..NetworkConfig::default()
            },
        );
        net.run(50);
        net
    };
    let scheduled = {
        let mut net = recorder_net(
            4,
            0,
            NetworkConfig {
                loss_probability: 0.0, // overridden by the schedule
                loss_seed: 13,
                loss_schedule: Some(LossSchedule::constant(0.3)),
                ..NetworkConfig::default()
            },
        );
        net.run(50);
        net
    };
    assert_eq!(legacy.agent(0).heard, scheduled.agent(0).heard);
    assert_eq!(legacy.metrics(), scheduled.metrics());
}

#[test]
fn reset_into_replays_dynamic_scenarios_bit_for_bit() {
    let mk_cfg = || NetworkConfig {
        loss_probability: 0.2,
        loss_seed: 5,
        loss_schedule: Some(LossSchedule::burst(0.2, 0.9, 5, 9)),
        scenario: ScenarioScript::new()
            .crash(3, vec![2])
            .partition(6, PartitionCut::split_at(4, 2))
            .heal(10)
            .recover(12, vec![2]),
        ..NetworkConfig::default()
    };
    let mut fresh = recorder_net(4, 0, mk_cfg());
    fresh.run(20);

    let mut arena = recorder_net(4, 1, NetworkConfig::default());
    arena.run(7); // dirty the arena with an unrelated static run
    arena.reset_into(
        Topology::complete(4),
        SizeEnv::for_n(4),
        FaultPlan::none(4),
        mk_cfg(),
        |agents, _| agents.extend((0..4).map(|id| Recorder::new(id, 0))),
    );
    arena.run(20);
    assert_eq!(fresh.agent(0).heard, arena.agent(0).heard);
    assert_eq!(fresh.metrics(), arena.metrics());
    assert_eq!(fresh.fault_state(), arena.fault_state());
}
