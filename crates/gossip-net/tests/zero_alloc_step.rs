//! Proof (not promise) that the round engine's steady state is
//! allocation-free: with by-ref deliveries and put-back scratch buffers,
//! `Network::step()` performs **zero heap allocations per round** once
//! the op/reply buffers have grown to their working size.
//!
//! The test installs a counting global allocator (affects only this test
//! binary), warms the network up, and then asserts that hundreds of
//! further rounds allocate nothing. Before this engine generation, every
//! push delivery and every pull query cloned its message — for `Arc`-free
//! message types like the one below that was one allocation per delivery.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::AgentId;
use gossip_net::network::Network;
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Count only the measuring thread, and only inside the measured
    /// window. The libtest harness's *main* thread lazily allocates an
    /// mpmc waiter context the first time it blocks in `recv` waiting
    /// for the test to finish — whether that happens during our window
    /// is a scheduling race (observed: 2 stray allocations in ~40% of
    /// runs). `const`-init keeps the TLS access itself allocation-free.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    if MEASURING.with(|m| m.get()) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A message with a payload that would have to be heap-cloned if the
/// engine cloned deliveries (a `Vec` payload makes any hidden clone show
/// up in the allocation counter).
#[derive(Clone)]
struct Payload(Vec<u64>);
impl MsgSize for Payload {
    fn size_bits(&self, _env: &SizeEnv) -> u64 {
        64 * self.0.len() as u64
    }
}

/// Mixes pushes and pulls every round; keeps no per-delivery state that
/// could allocate (counters only). The outgoing payload is pre-built once
/// and moved into the op — the engine must not clone it on delivery.
struct Mixer {
    id: AgentId,
    rng: DetRng,
    pushes_seen: u64,
    replies_seen: u64,
}

impl Agent<Payload> for Mixer {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Payload>> {
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        // One fresh payload per op is the *sender's* allocation (its op
        // construction), so the test pre-warms and then sends empty
        // payloads — Vec::new() does not allocate.
        if self.rng.below(2) == 0 {
            Some(Op::push(peer, Payload(Vec::new())))
        } else {
            Some(Op::pull(peer, Payload(Vec::new())))
        }
    }
    fn on_pull(&mut self, _from: AgentId, _query: &Payload, _ctx: &RoundCtx) -> Option<Payload> {
        Some(Payload(Vec::new()))
    }
    fn on_push(&mut self, _from: AgentId, msg: &Payload, _ctx: &RoundCtx) {
        self.pushes_seen += msg.0.len() as u64 + 1;
    }
    fn on_reply(&mut self, _from: AgentId, reply: Option<Payload>, _ctx: &RoundCtx) {
        self.replies_seen += reply.is_some() as u64;
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let n = 64;
    let agents: Vec<Mixer> = (0..n as AgentId)
        .map(|id| Mixer {
            id,
            rng: DetRng::seeded(2024, id as u64),
            pushes_seen: 0,
            replies_seen: 0,
        })
        .collect();
    let mut net = Network::new(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
    );

    // Warm-up: let the ops/replies scratch buffers reach working size.
    net.run(50);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    net.run(500);
    MEASURING.with(|m| m.set(false));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state step() must not allocate (got {} allocations over 500 rounds)",
        after - before
    );
    // Sanity: traffic actually flowed.
    assert!(net.metrics().messages_sent > 500);
}
