//! Property-based invariants of the network engine: the GOSSIP model's
//! guarantees must hold for *arbitrary* (including adversarial-shaped)
//! agent behaviours, fault plans, and loss processes.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::{FaultPlan, Placement};
use gossip_net::network::{Network, NetworkConfig};
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;
use gossip_net::AgentId;
use proptest::prelude::*;

/// A small message with a configurable wire size.
#[derive(Clone, Debug, PartialEq)]
struct Blob(u8);
impl MsgSize for Blob {
    fn size_bits(&self, _env: &SizeEnv) -> u64 {
        self.0 as u64 + 1
    }
}

/// An agent driven by a behaviour script derived from its RNG: each round
/// it pushes, pulls, or stays silent with equal probability, and answers
/// every other pull — an arbitrary-behaviour generator.
///
/// Design note: the *action* stream has its own RNG, and the pull-answer
/// policy is a deterministic function of how many pulls arrived. This
/// keeps the agent's outgoing behaviour identical across runs that differ
/// only in delivery (e.g. the loss-monotonicity properties below) — a
/// single shared RNG would couple future actions to whether a query was
/// delivered, making message counts legitimately non-monotone under loss
/// (a proptest run found exactly that).
struct ChaoticAgent {
    id: AgentId,
    rng: DetRng,
    pulls_answered: u32,
    acts: u32,
    received: u32,
    replies_seen: u32,
}

impl ChaoticAgent {
    fn new(id: AgentId, seed: u64) -> Self {
        ChaoticAgent {
            id,
            rng: DetRng::seeded(seed, id as u64),
            pulls_answered: 0,
            acts: 0,
            received: 0,
            replies_seen: 0,
        }
    }
}

impl Agent<Blob> for ChaoticAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Blob>> {
        self.acts += 1;
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        match self.rng.below(3) {
            0 => Some(Op::push(peer, Blob(self.rng.below(32) as u8))),
            1 => Some(Op::pull(peer, Blob(0))),
            _ => None,
        }
    }
    fn on_pull(&mut self, _from: AgentId, _q: &Blob, _ctx: &RoundCtx) -> Option<Blob> {
        // Answer every second pull, deterministically in arrival count.
        self.pulls_answered += 1;
        if self.pulls_answered % 2 == 1 {
            Some(Blob((self.pulls_answered % 32) as u8))
        } else {
            None
        }
    }
    fn on_push(&mut self, _from: AgentId, _m: &Blob, _ctx: &RoundCtx) {
        self.received += 1;
    }
    fn on_reply(&mut self, _from: AgentId, reply: Option<Blob>, _ctx: &RoundCtx) {
        if reply.is_some() {
            self.replies_seen += 1;
        }
    }
}

fn run_chaos(
    n: usize,
    rounds: usize,
    fault_frac: f64,
    loss: f64,
    seed: u64,
) -> Network<Blob, ChaoticAgent> {
    let agents: Vec<ChaoticAgent> = (0..n as AgentId)
        .map(|id| ChaoticAgent::new(id, seed))
        .collect();
    let faults = if fault_frac > 0.0 {
        FaultPlan::fraction(n, fault_frac, Placement::Random { seed })
    } else {
        FaultPlan::none(n)
    };
    let mut net = Network::with_config(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        faults,
        NetworkConfig {
            record_ops: true,
            meter_queries: true,
            loss_probability: loss,
            loss_seed: seed,
            ..NetworkConfig::default()
        },
    );
    net.run(rounds);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Active-link bound: no round ever has more active operations than
    /// active agents (the defining GOSSIP constraint).
    #[test]
    fn one_active_op_per_agent(
        n in 3usize..40,
        rounds in 1usize..30,
        fault_frac in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let net = run_chaos(n, rounds, fault_frac, 0.0, seed);
        prop_assert!(net.metrics().max_active_links <= net.faults().n_active() as u64);
        prop_assert_eq!(net.metrics().rounds, rounds as u64);
    }

    /// Faulty agents never act: every logged op originates from an
    /// active agent, and faulty agents never answer pulls.
    #[test]
    fn faulty_agents_are_quiescent(
        n in 3usize..40,
        rounds in 1usize..20,
        fault_frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let net = run_chaos(n, rounds, fault_frac, 0.0, seed);
        for ev in net.oplog().events() {
            prop_assert!(
                !net.faults().is_faulty(ev.from),
                "faulty agent {} issued an op",
                ev.from
            );
            if net.faults().is_faulty(ev.to) {
                prop_assert_ne!(
                    ev.kind,
                    gossip_net::OpKind::Pull,
                    "faulty agent {} answered a pull",
                    ev.to
                );
            }
        }
        // Faulty agents received nothing.
        for id in 0..n as AgentId {
            if net.faults().is_faulty(id) {
                prop_assert_eq!(net.agent(id).acts, 0);
                prop_assert_eq!(net.agent(id).received, 0);
            }
        }
    }

    /// Determinism: the whole run is a pure function of the seed — even
    /// with faults, loss, and chaotic behaviours.
    #[test]
    fn runs_are_deterministic(
        n in 3usize..24,
        rounds in 1usize..16,
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let a = run_chaos(n, rounds, 0.2, loss, seed);
        let b = run_chaos(n, rounds, 0.2, loss, seed);
        prop_assert_eq!(a.metrics().messages_sent, b.metrics().messages_sent);
        prop_assert_eq!(a.metrics().bits_sent, b.metrics().bits_sent);
        prop_assert_eq!(a.oplog().len(), b.oplog().len());
        for id in 0..n as AgentId {
            prop_assert_eq!(a.agent(id).received, b.agent(id).received);
            prop_assert_eq!(a.agent(id).replies_seen, b.agent(id).replies_seen);
        }
    }

    /// Loss monotonicity: a lossier channel never delivers more pushes.
    #[test]
    fn loss_reduces_deliveries(
        n in 4usize..24,
        rounds in 5usize..25,
        seed in any::<u64>(),
    ) {
        let lossless = run_chaos(n, rounds, 0.0, 0.0, seed);
        let lossy = run_chaos(n, rounds, 0.0, 0.6, seed);
        let delivered = |net: &Network<Blob, ChaoticAgent>| -> u32 {
            (0..n as AgentId).map(|id| net.agent(id).received).sum()
        };
        // Identical op pattern (same seeds), so deliveries can only drop.
        prop_assert!(delivered(&lossy) <= delivered(&lossless));
    }

    /// Metering under loss: outgoing behaviour is identical (decoupled
    /// action RNG), so pushes and queries are metered identically; only
    /// replies can disappear (lost queries are never answered; produced
    /// replies can be dropped in flight). Hence lossy ≤ lossless. Note
    /// the answer-every-second-pull policy is deterministic in *arrival*
    /// count, so fewer arrivals can flip which pulls get answered —
    /// but never increase the total beyond the arrival count, which is
    /// itself monotone.
    #[test]
    fn metering_counts_sent_not_delivered(
        n in 4usize..16,
        rounds in 2usize..12,
        seed in any::<u64>(),
    ) {
        let lossless = run_chaos(n, rounds, 0.0, 0.0, seed);
        let lossy = run_chaos(n, rounds, 0.0, 0.7, seed);
        // Pushes + queries are identical; replies bounded by arrivals.
        let ops_floor = lossless.oplog().len() as u64; // pushes + pulls issued
        prop_assert_eq!(lossy.oplog().len() as u64, ops_floor,
            "active operations must be identical across loss settings");
        prop_assert!(lossy.metrics().messages_sent <= lossless.metrics().messages_sent);
        prop_assert!(lossy.metrics().messages_sent > 0 || rounds == 0);
    }
}

#[test]
fn async_scheduler_is_deterministic_and_bounded() {
    let n = 16;
    let agents: Vec<ChaoticAgent> = (0..n as AgentId)
        .map(|id| ChaoticAgent::new(id, 3))
        .collect();
    let mut net = Network::new(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
    );
    let mut rng = DetRng::seeded(1, 2);
    net.run_async(500, &mut rng);
    assert_eq!(net.metrics().ticks, 500);
    assert!(net.metrics().max_active_links <= 1, "async: one op per tick");
}

// ---------------------------------------------------------------------
// Arena resets across topology shape changes
// ---------------------------------------------------------------------

/// Fingerprint of everything a recycled arena could leak: metrics, op
/// log length, per-agent observation counters, and the current round.
fn chaos_fingerprint(net: &Network<Blob, ChaoticAgent>) -> (String, usize, Vec<(u32, u32, u32, u32)>, usize) {
    let agents = net
        .agents()
        .iter()
        .map(|a| (a.acts, a.pulls_answered, a.received, a.replies_seen))
        .collect();
    (
        format!("{:?}", net.metrics()),
        net.oplog().len(),
        agents,
        net.round(),
    )
}

/// Run a fresh network over `topology` and return its fingerprint.
fn fresh_run(topology: Topology, seed: u64, rounds: usize) -> (String, usize, Vec<(u32, u32, u32, u32)>, usize) {
    let n = topology.n();
    let agents: Vec<ChaoticAgent> = (0..n as AgentId)
        .map(|id| ChaoticAgent::new(id, seed))
        .collect();
    let mut net = Network::with_config(
        topology,
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
        NetworkConfig {
            record_ops: true,
            loss_probability: 0.2,
            loss_seed: seed,
            ..NetworkConfig::default()
        },
    );
    net.run(rounds);
    chaos_fingerprint(&net)
}

/// Re-arm `net` in place over `topology` and return the trial fingerprint.
fn reset_run(
    net: &mut Network<Blob, ChaoticAgent>,
    topology: Topology,
    seed: u64,
    rounds: usize,
) -> (String, usize, Vec<(u32, u32, u32, u32)>, usize) {
    let n = topology.n();
    net.reset_into(
        topology,
        SizeEnv::for_n(n),
        FaultPlan::none(n),
        NetworkConfig {
            record_ops: true,
            loss_probability: 0.2,
            loss_seed: seed,
            ..NetworkConfig::default()
        },
        |agents, _topo| {
            agents.extend((0..n as AgentId).map(|id| ChaoticAgent::new(id, seed)))
        },
    );
    net.run(rounds);
    chaos_fingerprint(net)
}

/// `reset_into` across size and shape changes: a recycled network must
/// be indistinguishable from a fresh one when the incoming trial grows,
/// shrinks, or swaps graph family — no stale edges (the old topology's
/// connectivity must not gate deliveries) and no stale agent or scratch
/// state may survive the reset.
#[test]
fn reset_into_survives_topology_size_and_shape_changes() {
    let rounds = 12;
    // A trial sequence that exercises grow, shrink, and family changes:
    // complete(8) → complete(24) grow → ring(24) family change at equal
    // size → random_regular(40, 6) grow+family → complete(6) shrink.
    let trials: Vec<(Topology, u64)> = vec![
        (Topology::complete(8), 10),
        (Topology::complete(24), 11),
        (Topology::ring(24), 12),
        (Topology::random_regular(40, 6, 99), 13),
        (Topology::complete(6), 14),
    ];
    // Arena: one network driven through every trial in sequence.
    let first = &trials[0];
    let agents: Vec<ChaoticAgent> = (0..first.0.n() as AgentId)
        .map(|id| ChaoticAgent::new(id, first.1))
        .collect();
    let mut arena = Network::with_config(
        first.0.clone(),
        SizeEnv::for_n(first.0.n()),
        agents,
        FaultPlan::none(first.0.n()),
        NetworkConfig {
            record_ops: true,
            loss_probability: 0.2,
            loss_seed: first.1,
            ..NetworkConfig::default()
        },
    );
    arena.run(rounds);
    assert_eq!(
        chaos_fingerprint(&arena),
        fresh_run(first.0.clone(), first.1, rounds),
        "trial 0 (construction) must match a fresh run"
    );
    for (i, (topology, seed)) in trials.iter().enumerate().skip(1) {
        let got = reset_run(&mut arena, topology.clone(), *seed, rounds);
        let want = fresh_run(topology.clone(), *seed, rounds);
        assert_eq!(
            got, want,
            "trial {i} ({:?} n={}) leaked state through reset_into",
            std::mem::discriminant(topology),
            topology.n()
        );
    }
}

/// The same grow/shrink/family sequence through the *staged* engine:
/// the staged scratch (CSR ledgers, reply slots, plan buffers) is also
/// recycled by `reset_into` and must never leak across shapes either.
#[test]
fn reset_into_recycles_staged_scratch_across_shapes() {
    use gossip_net::rng::RngDiscipline;
    let rounds = 10;
    let run_staged_fresh = |topology: Topology, seed: u64| {
        let n = topology.n();
        let agents: Vec<ChaoticAgent> =
            (0..n as AgentId).map(|id| ChaoticAgent::new(id, seed)).collect();
        let mut net = Network::with_config(
            topology,
            SizeEnv::for_n(n),
            agents,
            FaultPlan::none(n),
            NetworkConfig {
                record_ops: true,
                loss_probability: 0.3,
                loss_seed: seed,
                rng_discipline: RngDiscipline::PerAgent,
                threads: 3,
                ..NetworkConfig::default()
            },
        );
        net.run_staged(rounds);
        chaos_fingerprint(&net)
    };
    let trials: Vec<(Topology, u64)> = vec![
        (Topology::complete(9), 20),
        (Topology::ring(30), 21),      // grow + family change
        (Topology::complete(5), 22),   // shrink
        (Topology::random_regular(16, 4, 7), 23),
    ];
    let first = &trials[0];
    let agents: Vec<ChaoticAgent> = (0..first.0.n() as AgentId)
        .map(|id| ChaoticAgent::new(id, first.1))
        .collect();
    let mut arena = Network::with_config(
        first.0.clone(),
        SizeEnv::for_n(first.0.n()),
        agents,
        FaultPlan::none(first.0.n()),
        NetworkConfig {
            record_ops: true,
            loss_probability: 0.3,
            loss_seed: first.1,
            rng_discipline: RngDiscipline::PerAgent,
            threads: 3,
            ..NetworkConfig::default()
        },
    );
    arena.run_staged(rounds);
    assert_eq!(chaos_fingerprint(&arena), run_staged_fresh(first.0.clone(), first.1));
    for (topology, seed) in trials.iter().skip(1) {
        let n = topology.n();
        arena.reset_into(
            topology.clone(),
            SizeEnv::for_n(n),
            FaultPlan::none(n),
            NetworkConfig {
                record_ops: true,
                loss_probability: 0.3,
                loss_seed: *seed,
                rng_discipline: RngDiscipline::PerAgent,
                threads: 3,
                ..NetworkConfig::default()
            },
            |agents, _| agents.extend((0..n as AgentId).map(|id| ChaoticAgent::new(id, *seed))),
        );
        arena.run_staged(rounds);
        assert_eq!(
            chaos_fingerprint(&arena),
            run_staged_fresh(topology.clone(), *seed),
            "staged scratch leaked across reset_into (n={n})"
        );
    }
}
