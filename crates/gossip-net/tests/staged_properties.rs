//! Staged-engine replay properties.
//!
//! The staged engine's exchange stage compiles each round's op list into
//! a CSR delivery ledger. Under [`RngDiscipline::Sequential`] that
//! ledger must *replay the monolithic engine exactly*: same op log event
//! for event, same metrics, same agent observations — for any topology,
//! any fault plan, any loss process, and any shard count. This suite
//! pins that with one property test quantified over
//! `topology × fault plan × loss seed` (the PR's staged-refactor safety
//! net) plus targeted edge cases the random matrix is unlikely to hit.

use gossip_net::fault::{FaultPlan, Placement};
use gossip_net::metrics::Metrics;
use gossip_net::network::{Network, NetworkConfig};
use gossip_net::oplog::OpEvent;
use gossip_net::rng::RngDiscipline;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;
use gossip_net::{Agent, AgentId, Op, RoundCtx};
use proptest::prelude::*;

#[derive(Clone, Debug, PartialEq)]
struct Num(u64);
impl MsgSize for Num {
    fn size_bits(&self, _env: &SizeEnv) -> u64 {
        8
    }
}

/// A deterministic mixed-traffic agent: its op each round is a pure
/// function of `(id, round)` — pushes, pulls, and silence all occur, and
/// targets sweep the whole id space so off-edge sends, faulty targets,
/// and self-delivery all happen. Records every observation.
struct Weaver {
    id: AgentId,
    n: usize,
    heard: Vec<(usize, AgentId, u64)>,
    answered: Vec<(usize, AgentId)>,
    replies: Vec<(usize, AgentId, Option<u64>)>,
}

impl Weaver {
    fn new(id: AgentId, n: usize) -> Self {
        Weaver { id, n, heard: vec![], answered: vec![], replies: vec![] }
    }
    fn observations(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.heard, self.answered, self.replies)
    }
}

impl Agent<Num> for Weaver {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Num>> {
        let r = ctx.round;
        let target = ((self.id as usize + r * 7 + 3) % self.n) as AgentId;
        match (self.id as usize + r) % 3 {
            0 => Some(Op::push(target, Num(self.id as u64 * 1000 + r as u64))),
            1 => Some(Op::pull(target, Num(r as u64))),
            _ => None,
        }
    }
    fn on_pull(&mut self, from: AgentId, _q: &Num, ctx: &RoundCtx) -> Option<Num> {
        self.answered.push((ctx.round, from));
        // Decline every third answer so PullUnanswered also arises from
        // *choice*, not just masks.
        if (self.id as usize + ctx.round) % 3 == 0 {
            None
        } else {
            Some(Num(self.id as u64))
        }
    }
    fn on_push(&mut self, from: AgentId, msg: &Num, ctx: &RoundCtx) {
        self.heard.push((ctx.round, from, msg.0));
    }
    fn on_reply(&mut self, from: AgentId, reply: Option<Num>, ctx: &RoundCtx) {
        self.replies.push((ctx.round, from, reply.map(|m| m.0)));
    }
}

fn build_topology(kind: u8, n: usize, seed: u64) -> Topology {
    match kind {
        0 => Topology::complete(n),
        1 => Topology::ring(n),
        2 => Topology::erdos_renyi(n, 0.3, seed),
        _ => {
            let d = 4.min(n - 1);
            let d = if (n * d) % 2 == 0 { d } else { d - 1 };
            if d == 0 {
                Topology::complete(n)
            } else {
                Topology::random_regular(n, d, seed)
            }
        }
    }
}

fn build_faults(n: usize, frac: f64, placement: u8, seed: u64) -> FaultPlan {
    if frac <= 0.0 {
        return FaultPlan::none(n);
    }
    let placement = match placement % 3 {
        0 => Placement::LowIds,
        1 => Placement::HighIds,
        _ => Placement::Random { seed },
    };
    FaultPlan::fraction(n, frac, placement)
}

type Observation = (Metrics, Vec<OpEvent>, Vec<String>, usize);

fn run_engine(
    engine_threads: Option<usize>, // None = monolithic step(), Some(t) = staged
    topology: &Topology,
    faults: &FaultPlan,
    loss_p: f64,
    loss_seed: u64,
    rounds: usize,
) -> Observation {
    let n = topology.n();
    let agents: Vec<Weaver> = (0..n as AgentId).map(|id| Weaver::new(id, n)).collect();
    let config = NetworkConfig {
        record_ops: true,
        loss_probability: loss_p,
        loss_seed,
        rng_discipline: RngDiscipline::Sequential,
        threads: engine_threads.unwrap_or(1),
        ..NetworkConfig::default()
    };
    let mut net = Network::with_config(
        topology.clone(),
        SizeEnv::for_n(n),
        agents,
        faults.clone(),
        config,
    );
    match engine_threads {
        None => net.run(rounds),
        Some(_) => net.run_staged(rounds),
    }
    let obs = net.agents().iter().map(|a| a.observations()).collect();
    (net.metrics().clone(), net.oplog().events().to_vec(), obs, net.round())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE replay property: for any topology family, fault plan, and
    /// loss process, the staged engine under the sequential discipline
    /// produces the monolithic engine's *exact* op log (event for
    /// event), metrics, and agent observations — at 1, 2, and 5 shards.
    #[test]
    fn csr_ledger_replays_legacy_delivery_order(
        topo_kind in 0u8..4,
        n in 6usize..28,
        topo_seed in 0u64..1000,
        fault_frac in prop_oneof![Just(0.0), Just(0.2), Just(0.45)],
        placement in 0u8..3,
        fault_seed in 0u64..1000,
        loss_p in prop_oneof![Just(0.0), Just(0.15), Just(0.5)],
        loss_seed in 0u64..1000,
    ) {
        let topology = build_topology(topo_kind, n, topo_seed);
        let faults = build_faults(n, fault_frac, placement, fault_seed);
        let rounds = 9;
        let legacy = run_engine(None, &topology, &faults, loss_p, loss_seed, rounds);
        for threads in [1usize, 2, 5] {
            let staged =
                run_engine(Some(threads), &topology, &faults, loss_p, loss_seed, rounds);
            prop_assert_eq!(
                &staged.1, &legacy.1,
                "op log diverged (threads={}, topo={}, n={})", threads, topo_kind, n
            );
            prop_assert_eq!(
                &staged.0, &legacy.0,
                "metrics diverged (threads={})", threads
            );
            prop_assert_eq!(
                &staged.2, &legacy.2,
                "agent observations diverged (threads={})", threads
            );
            prop_assert_eq!(staged.3, legacy.3);
        }
    }

    /// The per-agent discipline never replays the sequential loss
    /// pattern (different streams), but its own output is invariant in
    /// the shard count for the same quantified matrix.
    #[test]
    fn per_agent_discipline_is_shard_invariant_everywhere(
        topo_kind in 0u8..4,
        n in 6usize..24,
        topo_seed in 0u64..1000,
        fault_frac in prop_oneof![Just(0.0), Just(0.3)],
        placement in 0u8..3,
        fault_seed in 0u64..1000,
        loss_p in prop_oneof![Just(0.0), Just(0.35)],
        loss_seed in 0u64..1000,
    ) {
        let topology = build_topology(topo_kind, n, topo_seed);
        let faults = build_faults(n, fault_frac, placement, fault_seed);
        let run = |threads: usize| {
            let agents: Vec<Weaver> =
                (0..n as AgentId).map(|id| Weaver::new(id, n)).collect();
            let mut net = Network::with_config(
                topology.clone(),
                SizeEnv::for_n(n),
                agents,
                faults.clone(),
                NetworkConfig {
                    record_ops: true,
                    loss_probability: loss_p,
                    loss_seed,
                    rng_discipline: RngDiscipline::PerAgent,
                    threads,
                    ..NetworkConfig::default()
                },
            );
            net.run_staged(8);
            let obs: Vec<String> = net.agents().iter().map(|a| a.observations()).collect();
            (net.metrics().clone(), net.oplog().events().to_vec(), obs)
        };
        let one = run(1);
        for threads in [2usize, 7] {
            let t = run(threads);
            prop_assert_eq!(&t, &one, "per-agent output changed at threads={}", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded send-time metering contract: folding an op stream into
    /// per-shard [`Tally`]s (the staged engine's contiguous chunking) and
    /// merging them in shard order via [`Metrics::record_bulk`] is
    /// bit-identical to walking the stream sequentially through
    /// [`Metrics::record_message`] — sums and maxes commute, and phase
    /// attribution lands in the same scope either way.
    #[test]
    fn sharded_tally_merge_equals_sequential_metering(
        bits in prop::collection::vec(0u64..100_000, 0..300),
        shards in 1usize..12,
        phased in any::<bool>(),
    ) {
        use gossip_net::metrics::Tally;

        // Sequential spelling: one record_message per message, in order.
        let mut seq = Metrics::default();
        if phased {
            seq.enter_phase("find-min");
        }
        for &b in &bits {
            seq.record_message(b);
        }

        // Sharded spelling: contiguous chunks (the engine's op-range
        // split), one exact Tally per shard, merged in shard order.
        let mut sharded = Metrics::default();
        if phased {
            sharded.enter_phase("find-min");
        }
        let chunk = bits.len().div_ceil(shards).max(1);
        let mut tallies = vec![Tally::default(); shards];
        for (s, part) in bits.chunks(chunk).enumerate() {
            for &b in part {
                tallies[s].record(b);
            }
        }
        for t in &tallies {
            sharded.record_bulk(t, 0);
        }
        prop_assert_eq!(&sharded, &seq, "sharded metering diverged");

        // The pure Tally algebra underneath: merge of the per-shard
        // tallies equals one sequential tally.
        let mut one = Tally::default();
        for &b in &bits {
            one.record(b);
        }
        let mut merged = Tally::default();
        for t in &tallies {
            merged.merge(t);
        }
        prop_assert_eq!(merged, one);
    }
}
