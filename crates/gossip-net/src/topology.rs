//! Network topologies: the paper's complete graph plus the graph classes
//! its Conclusions suggest as future work.
//!
//! The protocol analysis assumes the complete graph `K_n`, where "choose a
//! neighbor u.a.r." means a uniform draw from `[n]` (the paper samples from
//! all of `[n]`, so an agent may address itself; a self-vote is still a
//! declared, verifiable vote and none of the asymptotics change). For the
//! complete graph the topology is implicit and costs no memory.
//!
//! General graphs are stored in CSR (compressed sparse row) form: one
//! `offsets` array of `n + 1` cursors into a flat `neighbors` array. This
//! is the cache-friendly layout for the hot `sample_peer` path — one
//! indexed load to find the row, one to pick the neighbor.

use crate::ids::AgentId;
use crate::rng::DetRng;

/// A communication topology over `n` agents.
#[derive(Debug, Clone)]
pub enum Topology {
    /// The complete graph `K_n`; peers are sampled uniformly from `[n]`
    /// (matching the paper's "`v` chosen u.a.r. in `[n]`").
    Complete {
        /// Number of agents.
        n: usize,
    },
    /// An arbitrary undirected graph in CSR form.
    Sparse(Csr),
}

impl Topology {
    /// The complete graph on `n` agents.
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "a network needs at least two agents");
        Topology::Complete { n }
    }

    /// Erdős–Rényi `G(n, p)`: each unordered pair is an edge independently
    /// with probability `p`. Deterministic given `seed`.
    pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Self {
        assert!(n >= 2);
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut rng = DetRng::seeded(seed, 0xE5D0);
        let mut adj: Vec<Vec<AgentId>> = vec![Vec::new(); n];
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.chance(p) {
                    adj[u].push(v as AgentId);
                    adj[v].push(u as AgentId);
                }
            }
        }
        Topology::Sparse(Csr::from_adjacency(&adj))
    }

    /// A random near-`d`-regular **simple** graph via the configuration
    /// model (pair-matching of `n·d` stubs; requires `n·d` even).
    ///
    /// Documented behavior (pinned by a property test): the stub matching
    /// is re-shuffled up to 64 times to avoid self-loops; any surviving
    /// self-loop and any parallel edge is then silently dropped, so the
    /// result is always a simple undirected graph with every degree **at
    /// most** `d` — exactly `d` for all but an `O(d²/n)` expected
    /// fraction of vertices. Fine for the expander experiments; not a
    /// uniform sample from exactly-`d`-regular graphs.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(n >= 2 && d >= 1 && d < n);
        assert!((n * d).is_multiple_of(2), "n*d must be even for a d-regular graph");
        let mut rng = DetRng::seeded(seed, 0x4E60);
        let mut stubs: Vec<AgentId> = (0..n)
            .flat_map(|u| std::iter::repeat_n(u as AgentId, d))
            .collect();
        let mut adj: Vec<Vec<AgentId>> = vec![Vec::new(); n];
        // Up to 64 full re-shuffles to avoid self-loops in the matching.
        for _attempt in 0..64 {
            rng.shuffle(&mut stubs);
            if stubs.chunks_exact(2).all(|c| c[0] != c[1]) {
                break;
            }
        }
        for c in stubs.chunks_exact(2) {
            // Keep the pair only if it is neither a self-loop nor a
            // duplicate of an edge already placed (d is small, so the
            // `contains` scan is cheap).
            if c[0] != c[1] && !adj[c[0] as usize].contains(&c[1]) {
                adj[c[0] as usize].push(c[1]);
                adj[c[1] as usize].push(c[0]);
            }
        }
        Topology::Sparse(Csr::from_adjacency(&adj))
    }

    /// The cycle `C_n`: agent `i` is adjacent to `i±1 (mod n)`. The
    /// worst-case topology for rumor spreading (diameter `n/2`).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least three agents");
        let adj: Vec<Vec<AgentId>> = (0..n)
            .map(|u| {
                vec![
                    ((u + n - 1) % n) as AgentId,
                    ((u + 1) % n) as AgentId,
                ]
            })
            .collect();
        Topology::Sparse(Csr::from_adjacency(&adj))
    }

    /// Number of agents.
    #[inline]
    pub fn n(&self) -> usize {
        match self {
            Topology::Complete { n } => *n,
            Topology::Sparse(csr) => csr.n(),
        }
    }

    /// Sample a communication peer for `u` uniformly at random.
    ///
    /// On the complete graph this is a uniform draw from `[n]` (the paper's
    /// rule). On sparse graphs it is a uniform neighbor; isolated vertices
    /// return `u` itself (the op then degenerates to a no-op delivery).
    #[inline]
    pub fn sample_peer(&self, u: AgentId, rng: &mut DetRng) -> AgentId {
        match self {
            Topology::Complete { n } => rng.index(*n) as AgentId,
            Topology::Sparse(csr) => {
                let nbrs = csr.neighbors(u);
                if nbrs.is_empty() {
                    u
                } else {
                    nbrs[rng.index(nbrs.len())]
                }
            }
        }
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: AgentId) -> usize {
        match self {
            Topology::Complete { n } => *n - 1,
            Topology::Sparse(csr) => csr.neighbors(u).len(),
        }
    }

    /// Whether `{u, v}` is an edge (complete graphs: everything except…
    /// nothing; the paper allows self-addressing, so `u == v` is accepted).
    #[inline]
    pub fn connected(&self, u: AgentId, v: AgentId) -> bool {
        match self {
            Topology::Complete { .. } => true,
            Topology::Sparse(csr) => u == v || csr.neighbors(u).contains(&v),
        }
    }
}

/// Compressed-sparse-row adjacency structure for undirected graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<AgentId>,
}

impl Csr {
    /// Build from per-vertex adjacency lists (kept as given; callers are
    /// responsible for symmetry if they want an undirected graph).
    pub fn from_adjacency(adj: &[Vec<AgentId>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in adj {
            neighbors.extend_from_slice(row);
            offsets.push(neighbors.len() as u32);
        }
        Csr { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edge slots (twice the undirected edge count for
    /// symmetric inputs).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbor slice of vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: AgentId) -> &[AgentId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// True if the adjacency structure is symmetric (an undirected graph).
    pub fn is_symmetric(&self) -> bool {
        (0..self.n()).all(|u| {
            self.neighbors(u as AgentId).iter().all(|&v| {
                self.neighbors(v).contains(&(u as AgentId))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_samples_cover_range() {
        let t = Topology::complete(8);
        let mut rng = DetRng::seeded(1, 0);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[t.sample_peer(3, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw should hit all of [n]");
    }

    #[test]
    fn complete_degree_and_connectivity() {
        let t = Topology::complete(5);
        assert_eq!(t.n(), 5);
        assert_eq!(t.degree(0), 4);
        assert!(t.connected(0, 4));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn complete_rejects_singleton() {
        let _ = Topology::complete(1);
    }

    #[test]
    fn ring_structure() {
        let t = Topology::ring(6);
        assert_eq!(t.degree(0), 2);
        assert!(t.connected(0, 1));
        assert!(t.connected(0, 5));
        assert!(!t.connected(0, 3));
        if let Topology::Sparse(csr) = &t {
            assert!(csr.is_symmetric());
        } else {
            panic!("ring should be sparse");
        }
    }

    #[test]
    fn ring_samples_only_neighbors() {
        let t = Topology::ring(10);
        let mut rng = DetRng::seeded(2, 0);
        for _ in 0..200 {
            let p = t.sample_peer(4, &mut rng);
            assert!(p == 3 || p == 5, "ring peer of 4 must be 3 or 5, got {p}");
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = Topology::erdos_renyi(10, 0.0, 7);
        for u in 0..10 {
            assert_eq!(empty.degree(u), 0);
        }
        let full = Topology::erdos_renyi(10, 1.0, 7);
        for u in 0..10 {
            assert_eq!(full.degree(u), 9);
        }
    }

    #[test]
    fn erdos_renyi_is_symmetric_and_deterministic() {
        let a = Topology::erdos_renyi(40, 0.3, 42);
        let b = Topology::erdos_renyi(40, 0.3, 42);
        match (&a, &b) {
            (Topology::Sparse(x), Topology::Sparse(y)) => {
                assert_eq!(x, y, "same seed must give same graph");
                assert!(x.is_symmetric());
            }
            _ => panic!("expected sparse graphs"),
        }
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 200;
        let p = 0.1;
        if let Topology::Sparse(csr) = Topology::erdos_renyi(n, p, 3) {
            let edges = csr.edge_slots() / 2;
            let expect = (n * (n - 1) / 2) as f64 * p;
            let dev = (edges as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "edge count {edges} vs expectation {expect}");
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn random_regular_degrees() {
        let t = Topology::random_regular(100, 6, 11);
        if let Topology::Sparse(csr) = &t {
            assert!(csr.is_symmetric());
            let max_deg = (0..100).map(|u| t.degree(u)).max().unwrap();
            let min_deg = (0..100).map(|u| t.degree(u)).min().unwrap();
            assert!(max_deg <= 6);
            assert!(min_deg >= 5, "config model should rarely drop edges");
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn isolated_vertex_self_peer() {
        let csr = Csr::from_adjacency(&[vec![], vec![0]]);
        let t = Topology::Sparse(csr);
        let mut rng = DetRng::seeded(0, 0);
        assert_eq!(t.sample_peer(0, &mut rng), 0);
    }

    #[test]
    fn csr_round_trips_adjacency() {
        let adj = vec![vec![1, 2], vec![0], vec![0]];
        let csr = Csr::from_adjacency(&adj);
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[0]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.edge_slots(), 4);
    }
}
