//! Deterministic randomness: seed derivation and per-agent RNG streams.
//!
//! Reproducibility discipline: a run is identified by a single `u64` master
//! seed. Every independent consumer of randomness (each agent, each
//! Monte-Carlo trial, the fault planner, the async scheduler, …) receives
//! its own *stream* derived as `derive_seed(master, stream_index)`. Streams
//! are decorrelated by running the (master, index) pair through two rounds
//! of the SplitMix64 finalizer, the standard generator used to seed
//! xoshiro-family PRNGs.
//!
//! [`DetRng`] wraps `rand::rngs::SmallRng` (xoshiro256++ on 64-bit
//! platforms): non-cryptographic, extremely fast, and entirely sufficient —
//! the protocol's adversary is a *rational deviator*, not a seed-predicting
//! cryptanalyst, matching the paper's model where honest coin flips are
//! private but not cryptographically hidden.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// One step of the SplitMix64 sequence: advances `*state` and returns the
/// next output. This is the reference finalizer from Steele, Lea &
/// Flood (2014), used pervasively to expand small seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for stream `stream` of master seed `master`.
///
/// Distinct `(master, stream)` pairs map to distinct, decorrelated seeds;
/// the same pair always maps to the same seed.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.rotate_left(32);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// How the engine's loss process consumes randomness (see
/// [`crate::network::staged`] for the full discipline contract).
///
/// * [`RngDiscipline::Sequential`] — the historical discipline: one loss
///   stream for the whole run, drawn message by message in the engine's
///   sequential delivery order (dynamic runs re-derive it per round, see
///   [`crate::dynamics`]). This is the default; every pre-PR-5 digest —
///   including the static golden corpus — is a `Sequential` run.
/// * [`RngDiscipline::PerAgent`] — the sharded discipline: every loss
///   draw comes from a stream keyed on `(loss_seed, round, agent)` (the
///   *receiving* agent), so the draws of one agent's inbox are
///   independent of every other agent's traffic and of the thread count.
///   This is what lets the staged engine run plan and apply in parallel
///   over agent shards while staying bit-identical for any shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngDiscipline {
    /// One sequential loss stream, drawn in delivery order (legacy).
    #[default]
    Sequential,
    /// Per-`(seed, round, agent)` loss streams (sharded engine).
    PerAgent,
}

/// Stream families of the [`RngDiscipline::PerAgent`] discipline: the
/// loss draws for the messages agent `v` *receives* in round `r` come
/// from `DetRng::seeded(derive_seed(loss_seed, FAMILY + r), v)`. Three
/// disjoint families keep query, push, and reply legs independent, so
/// each per-agent stream is opened exactly once per round.
pub mod loss_streams {
    use super::{derive_seed, DetRng};
    use crate::ids::AgentId;

    /// Family tag for pull-query deliveries (keyed on the pullee).
    pub const QUERY: u64 = 0x51AE_0000_0000_0000;
    /// Family tag for push deliveries (keyed on the receiver).
    pub const PUSH: u64 = 0x52AE_0000_0000_0000;
    /// Family tag for pull-reply deliveries (keyed on the puller).
    pub const REPLY: u64 = 0x53AE_0000_0000_0000;

    /// The per-agent loss stream for `(family, round, agent)`.
    #[inline]
    pub fn per_agent(loss_seed: u64, family: u64, round: usize, agent: AgentId) -> DetRng {
        DetRng::seeded(derive_seed(loss_seed, family + round as u64), agent as u64)
    }

    /// The per-instance loss stream of the multi-instance plane
    /// (rfc-core's `instances` module): one stream per `(family, round,
    /// instance, drawing agent, peer)` tuple, of which exactly one draw
    /// is consumed (each hosted instance emits at most one op per peer
    /// per round, so the `(agent, peer)` pair pins the draw uniquely).
    /// Because `instance` is folded into the lane key, adding or
    /// removing a co-hosted instance can never perturb another
    /// instance's loss pattern — the independence property pinned by
    /// `tests/instance_plane.rs`.
    #[inline]
    pub fn per_instance(
        loss_seed: u64,
        family: u64,
        round: usize,
        instance: u64,
        agent: AgentId,
        peer: AgentId,
    ) -> DetRng {
        let lane = derive_seed(
            derive_seed(loss_seed, family + round as u64),
            (instance << 32) | agent as u64,
        );
        DetRng::seeded(lane, peer as u64)
    }
}

/// A deterministic, seedable RNG for simulator components.
///
/// Thin wrapper over `SmallRng` so downstream crates depend on one concrete
/// type (keeping trait objects object-safe and avoiding generic infection
/// of every agent type).
///
/// ## Bounded-draw fast path
///
/// [`DetRng::below`]/[`DetRng::index`] are the simulator's hottest calls
/// (every peer sample and vote draw). The generic `gen_range` pays two
/// 64-bit divisions per draw (`zone` setup and the final `v % range`);
/// agents, however, draw from the *same* bound over and over (`n`, `m`).
/// `DetRng` therefore caches, per bound, the rejection `zone` and a
/// 128-bit reciprocal of the bound, replacing both divisions with
/// multiplies. The algorithm (modulo rejection over xoshiro256++ output)
/// and every returned value are **bit-identical** to the generic path —
/// pinned by the `bounded_draws_match_generic_gen_range` test.
#[derive(Debug, Clone)]
pub struct DetRng {
    rng: SmallRng,
    /// Two per-bound constant slots (bound, zone, reciprocal). Two, not
    /// one: the hottest loop — intention drawing — alternates between
    /// the vote-space bound `m` and the peer bound `n` every entry, and
    /// a single-slot cache would recompute the (slow, u128-division)
    /// constants on every draw.
    cache: [BoundCache; 2],
    /// Which cache slot was used last (the other one is the eviction
    /// victim).
    last_slot: u8,
}

/// Precomputed sampling constants for one bound.
#[derive(Debug, Clone, Copy, Default)]
struct BoundCache {
    /// The bound (0 = slot empty).
    range: u64,
    /// Rejection threshold (inclusive).
    zone: u64,
    /// `floor((2^128 - 1) / range)`: reciprocal for division-free `v % range`.
    recip: u128,
}

/// Exact `v / d` via the precomputed reciprocal `recip = floor((2^128-1)/d)`:
/// the high-128 product underestimates the true quotient by at most one,
/// fixed up with a single compare. No division instructions anywhere.
#[inline]
fn fast_div(v: u64, d: u64, recip: u128) -> u64 {
    // (recip * v) >> 128, computed in 64-bit halves to avoid overflow.
    let lo = (recip as u64 as u128) * (v as u128);
    let mid = ((recip >> 64) as u128) * (v as u128) + (lo >> 64);
    let mut q = (mid >> 64) as u64;
    // q ∈ {true_q - 1, true_q}: one fixup step suffices.
    if v.wrapping_sub(q.wrapping_mul(d)) >= d {
        q += 1;
    }
    q
}

impl DetRng {
    /// RNG for stream `stream` of `master` (see [`derive_seed`]).
    pub fn seeded(master: u64, stream: u64) -> Self {
        Self::wrap(SmallRng::seed_from_u64(derive_seed(master, stream)))
    }

    /// RNG from a raw seed, bypassing stream derivation.
    pub fn from_raw_seed(seed: u64) -> Self {
        Self::wrap(SmallRng::seed_from_u64(seed))
    }

    fn wrap(rng: SmallRng) -> Self {
        DetRng {
            rng,
            cache: [BoundCache::default(); 2],
            last_slot: 0,
        }
    }

    /// The raw xoshiro256++ state words (checkpoint support). The
    /// per-bound cache slots are *not* part of the state: each
    /// [`BoundCache`] is a pure function of its bound, so a restored
    /// generator recomputes identical constants on first use and every
    /// subsequent draw is bit-identical.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild a generator from state captured by [`DetRng::state`].
    /// Panics on the all-zero state (invalid for xoshiro256++ and never
    /// produced by any seeding path).
    pub fn from_state(state: [u64; 4]) -> Self {
        Self::wrap(SmallRng::from_state(state))
    }

    /// Fetch (or compute into the least-recently-used slot) the sampling
    /// constants for `range`.
    #[inline]
    fn bound_cache(&mut self, range: u64) -> BoundCache {
        if self.cache[0].range == range {
            self.last_slot = 0;
            return self.cache[0];
        }
        if self.cache[1].range == range {
            self.last_slot = 1;
            return self.cache[1];
        }
        // Same zone the generic rejection sampler derives:
        // zone = MAX - ((MAX - range + 1) % range).
        let ints_to_reject = (u64::MAX - range + 1) % range;
        let fresh = BoundCache {
            range,
            zone: u64::MAX - ints_to_reject,
            recip: u128::MAX / range as u128,
        };
        let victim = 1 - self.last_slot as usize;
        self.cache[victim] = fresh;
        self.last_slot = victim as u8;
        fresh
    }

    /// Uniform draw from `0..bound` (`bound > 0`). Bit-identical to
    /// `gen_range(0..bound)` on the same generator state.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let cache = self.bound_cache(bound);
        // Classic modulo rejection, divisions strength-reduced away.
        loop {
            let v = self.rng.next_u64();
            if v <= cache.zone {
                return v - fast_div(v, bound, cache.recip) * bound;
            }
        }
    }

    /// Uniform draw from `0..n` as a `usize` index.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index(0) is meaningless");
        self.below(n as u64) as usize
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

// Allow `DetRng` wherever a `rand` RNG is expected (distributions etc.).
impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let master = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(master, stream)),
                "collision at stream {stream}"
            );
        }
    }

    #[test]
    fn derive_seed_separates_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 7)));
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 0: first output.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn det_rng_reproducible() {
        let mut a = DetRng::seeded(99, 3);
        let mut b = DetRng::seeded(99, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_streams_differ() {
        let mut a = DetRng::seeded(99, 3);
        let mut b = DetRng::seeded(99, 4);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams look correlated: {same}/64 equal draws");
    }

    #[test]
    fn bounded_draws_match_generic_gen_range() {
        // The cached fast path must replay gen_range's exact outputs:
        // same generator state, same rejection pattern, same values —
        // for small, large, power-of-two and near-MAX bounds, including
        // bound switches that thrash the one-entry cache.
        let bounds: Vec<u64> = vec![
            1, 2, 3, 7, 8, 256, 1000, 1 << 20, (1 << 40) + 7,
            u64::MAX / 2, u64::MAX - 1, u64::MAX,
        ];
        let mut fast = DetRng::seeded(42, 9);
        let mut slow = SmallRng::seed_from_u64(derive_seed(42, 9));
        for round in 0..2000u64 {
            let bound = bounds[(round % bounds.len() as u64) as usize];
            assert_eq!(
                fast.below(bound),
                slow.gen_range(0..bound),
                "diverged at round {round} bound {bound}"
            );
        }
        // usize index path too.
        let mut fast = DetRng::seeded(7, 1);
        let mut slow = SmallRng::seed_from_u64(derive_seed(7, 1));
        for _ in 0..500 {
            assert_eq!(fast.index(321), slow.gen_range(0..321usize));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seeded(1, 1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::seeded(5, 0);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[r.below(8) as usize] += 1;
        }
        let expect = trials / 8;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "value {v} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = DetRng::seeded(2, 2);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seeded(3, 3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_permutes() {
        let mut r = DetRng::seeded(4, 4);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
