//! Deterministic randomness: seed derivation and per-agent RNG streams.
//!
//! Reproducibility discipline: a run is identified by a single `u64` master
//! seed. Every independent consumer of randomness (each agent, each
//! Monte-Carlo trial, the fault planner, the async scheduler, …) receives
//! its own *stream* derived as `derive_seed(master, stream_index)`. Streams
//! are decorrelated by running the (master, index) pair through two rounds
//! of the SplitMix64 finalizer, the standard generator used to seed
//! xoshiro-family PRNGs.
//!
//! [`DetRng`] wraps `rand::rngs::SmallRng` (xoshiro256++ on 64-bit
//! platforms): non-cryptographic, extremely fast, and entirely sufficient —
//! the protocol's adversary is a *rational deviator*, not a seed-predicting
//! cryptanalyst, matching the paper's model where honest coin flips are
//! private but not cryptographically hidden.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// One step of the SplitMix64 sequence: advances `*state` and returns the
/// next output. This is the reference finalizer from Steele, Lea &
/// Flood (2014), used pervasively to expand small seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for stream `stream` of master seed `master`.
///
/// Distinct `(master, stream)` pairs map to distinct, decorrelated seeds;
/// the same pair always maps to the same seed.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.rotate_left(32);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// A deterministic, seedable RNG for simulator components.
///
/// Thin wrapper over `SmallRng` so downstream crates depend on one concrete
/// type (keeping trait objects object-safe and avoiding generic infection
/// of every agent type).
#[derive(Debug, Clone)]
pub struct DetRng(SmallRng);

impl DetRng {
    /// RNG for stream `stream` of `master` (see [`derive_seed`]).
    pub fn seeded(master: u64, stream: u64) -> Self {
        DetRng(SmallRng::seed_from_u64(derive_seed(master, stream)))
    }

    /// RNG from a raw seed, bypassing stream derivation.
    pub fn from_raw_seed(seed: u64) -> Self {
        DetRng(SmallRng::seed_from_u64(seed))
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        self.0.gen_range(0..bound)
    }

    /// Uniform draw from `0..n` as a `usize` index.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index(0) is meaningless");
        self.0.gen_range(0..n)
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

// Allow `DetRng` wherever a `rand` RNG is expected (distributions etc.).
impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let master = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(master, stream)),
                "collision at stream {stream}"
            );
        }
    }

    #[test]
    fn derive_seed_separates_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 7)));
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 0: first output.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn det_rng_reproducible() {
        let mut a = DetRng::seeded(99, 3);
        let mut b = DetRng::seeded(99, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_streams_differ() {
        let mut a = DetRng::seeded(99, 3);
        let mut b = DetRng::seeded(99, 4);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams look correlated: {same}/64 equal draws");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seeded(1, 1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::seeded(5, 0);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[r.below(8) as usize] += 1;
        }
        let expect = trials / 8;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "value {v} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = DetRng::seeded(2, 2);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seeded(3, 3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_permutes() {
        let mut r = DetRng::seeded(4, 4);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
