//! Word-packed flag sets: one `u64` word per 64 flags.
//!
//! The engine keeps several per-agent and per-message flag sets on the
//! hot path — fault/down markers consulted once per op, and the staged
//! engine's delivered/lost verdicts written once per message. As dense
//! `Vec<bool>`s these cost a byte per flag and a cache line per 64
//! agents; packed, the same sets cost a bit per flag, and whole-set
//! operations (counting, copying, comparing) run word-at-a-time.
//!
//! Two access modes:
//!
//! * **Exclusive** ([`BitSet::set`], [`BitSet::clear_bit`]) — plain
//!   read-modify-write through `&mut self`, for sequential builders.
//! * **Shared-atomic** ([`BitSet::as_atomic`]) — the staged engine's
//!   parallel exchange stage resolves delivery verdicts from several
//!   worker threads whose bit indices interleave arbitrarily within a
//!   word. `as_atomic` reinterprets the word buffer as `[AtomicU64]`
//!   (same size, alignment and bit validity; exclusivity of the `&mut`
//!   borrow makes the cast sound) so shards can `fetch_or` concurrently.
//!   Every bit is still written by exactly one shard and only ever flips
//!   `0 → 1`, so the final word values are independent of interleaving —
//!   relaxed ordering suffices and determinism is preserved.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length set of flags, 64 per word, all-zero on (re)build.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set (length 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-zero set of `len` flags.
    pub fn zeros(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from per-flag booleans.
    pub fn from_bools(flags: &[bool]) -> Self {
        let mut bs = Self::zeros(flags.len());
        for (i, &f) in flags.iter().enumerate() {
            if f {
                bs.set(i);
            }
        }
        bs
    }

    /// Re-arm in place to `len` all-zero flags, retaining the word
    /// allocation (the steady-state round path allocates nothing once
    /// the high-water mark is reached).
    pub fn reset(&mut self, len: usize) {
        let need = len.div_ceil(64);
        self.words.clear();
        self.words.resize(need, 0);
        self.len = len;
    }

    /// Number of flags.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no flags at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read flag `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Raise flag `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Lower flag `i`.
    #[inline]
    pub fn clear_bit(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Number of raised flags (word-parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The flags as booleans, index order.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterator over the indices of raised flags, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Reinterpret the word buffer for shared-atomic writes (see the
    /// module docs). The `&mut` receiver guarantees no other reference
    /// observes the words while atomics alias them.
    pub fn as_atomic(&mut self) -> &[AtomicU64] {
        const {
            assert!(std::mem::align_of::<AtomicU64>() == std::mem::align_of::<u64>());
            assert!(std::mem::size_of::<AtomicU64>() == std::mem::size_of::<u64>());
        }
        // SAFETY: AtomicU64 has the same size, alignment and bit
        // validity as u64 (asserted above), and the exclusive borrow of
        // `self` is held for the returned lifetime, so no non-atomic
        // access can race the atomic view.
        unsafe { &*(self.words.as_mut_slice() as *mut [u64] as *const [AtomicU64]) }
    }
}

/// Raise flag `i` through an atomic view ([`BitSet::as_atomic`]).
#[inline]
pub fn atomic_set(words: &[AtomicU64], i: usize) {
    words[i >> 6].fetch_or(1u64 << (i & 63), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut bs = BitSet::zeros(130);
        assert_eq!(bs.len(), 130);
        assert_eq!(bs.count_ones(), 0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bs.get(i));
            bs.set(i);
            assert!(bs.get(i));
        }
        assert_eq!(bs.count_ones(), 8);
        bs.clear_bit(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count_ones(), 7);
    }

    #[test]
    fn from_bools_matches_to_bools() {
        let flags: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let bs = BitSet::from_bools(&flags);
        assert_eq!(bs.to_bools(), flags);
        assert_eq!(bs.count_ones(), flags.iter().filter(|&&f| f).count());
        assert_eq!(
            bs.ones().collect::<Vec<_>>(),
            (0..100usize).filter(|i| i % 3 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_retains_capacity_and_zeroes() {
        let mut bs = BitSet::zeros(200);
        bs.set(77);
        bs.set(199);
        bs.reset(150);
        assert_eq!(bs.len(), 150);
        assert_eq!(bs.count_ones(), 0);
        assert!(!bs.get(77));
    }

    #[test]
    fn atomic_view_sets_bits_concurrently() {
        let mut bs = BitSet::zeros(1024);
        let atomic = bs.as_atomic();
        std::thread::scope(|scope| {
            for shard in 0..4usize {
                scope.spawn(move || {
                    // Interleaved indices: every shard touches every word.
                    for i in (shard..1024).step_by(4) {
                        atomic_set(atomic, i);
                    }
                });
            }
        });
        assert_eq!(bs.count_ones(), 1024);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitSet::zeros(500);
        a.reset(10);
        a.set(3);
        let mut b = BitSet::zeros(10);
        b.set(3);
        assert_eq!(a, b);
    }
}
