//! Optional operation log for post-hoc audits.
//!
//! The *good-execution* definitions (paper Definitions 2 and 5) quantify
//! over who-pulled-whom and who-voted-for-whom facts that no single agent
//! observes. When enabled, the network records every active operation so
//! the audit layer (rfc-core::audit) can check those global events exactly:
//!
//! * Def. 5(1): every agent received a Commitment pull from an honest
//!   non-coalition agent;
//! * Def. 5(3): every agent received a Voting-phase vote from an honest
//!   agent that no coalition member pulled in Commitment.
//!
//! The log stores only `(round, kind, from, to)` — 16 bytes per op — not
//! message payloads, so it stays cheap even for large sweeps; it is off by
//! default and switched on by [`crate::NetworkConfig::record_ops`].

use crate::ids::AgentId;

/// Kind of a logged operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An active push from `from` to `to`.
    Push,
    /// An active pull by `from` addressed to `to` (the pullee).
    Pull,
    /// A pull by `from` addressed to `to` that `to` did not answer
    /// (silence — either `to` is faulty or chose not to reply).
    PullUnanswered,
}

/// One logged active operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Round in which the operation was issued.
    pub round: u32,
    /// What happened.
    pub kind: OpKind,
    /// The active agent.
    pub from: AgentId,
    /// The addressed peer.
    pub to: AgentId,
}

/// Append-only log of all active operations of a run.
#[derive(Debug, Clone, Default)]
pub struct OpLog {
    events: Vec<OpEvent>,
}

impl OpLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    #[inline]
    pub fn record(&mut self, round: u32, kind: OpKind, from: AgentId, to: AgentId) {
        self.events.push(OpEvent {
            round,
            kind,
            from,
            to,
        });
    }

    /// All events in issue order.
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Extend the log by `count` placeholder events and return the new
    /// tail as a mutable slice for scatter-writing.
    ///
    /// The staged engine's parallel op-log pass sizes one round's worth
    /// of events up front (a prefix sum over per-shard event counts)
    /// and has each shard write its events directly at their final
    /// positions — this is the pre-sized buffer that scatter lands in.
    /// The caller must overwrite **every** slot of the returned slice;
    /// a slot left untouched would hold a placeholder `Push 0→0` event.
    pub fn scatter_tail(&mut self, count: usize) -> &mut [OpEvent] {
        let start = self.events.len();
        self.events.resize(
            start + count,
            OpEvent { round: 0, kind: OpKind::Push, from: 0, to: 0 },
        );
        &mut self.events[start..]
    }

    /// Forget all events, retaining the backing allocation (arena reuse).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Events within a round range `[lo, hi)` (phase window).
    pub fn in_rounds(&self, lo: u32, hi: u32) -> impl Iterator<Item = &OpEvent> {
        self.events
            .iter()
            .filter(move |e| e.round >= lo && e.round < hi)
    }

    /// Pull events (answered or not) addressed to `to` in `[lo, hi)`.
    pub fn pulls_to(&self, to: AgentId, lo: u32, hi: u32) -> impl Iterator<Item = &OpEvent> {
        self.in_rounds(lo, hi).filter(move |e| {
            e.to == to && matches!(e.kind, OpKind::Pull | OpKind::PullUnanswered)
        })
    }

    /// Push events delivered to `to` in `[lo, hi)`.
    pub fn pushes_to(&self, to: AgentId, lo: u32, hi: u32) -> impl Iterator<Item = &OpEvent> {
        self.in_rounds(lo, hi)
            .filter(move |e| e.to == to && e.kind == OpKind::Push)
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpLog {
        let mut log = OpLog::new();
        log.record(0, OpKind::Pull, 1, 2);
        log.record(0, OpKind::Push, 3, 2);
        log.record(1, OpKind::PullUnanswered, 1, 4);
        log.record(2, OpKind::Push, 1, 2);
        log.record(2, OpKind::Pull, 2, 1);
        log
    }

    #[test]
    fn records_in_order() {
        let log = sample();
        assert_eq!(log.len(), 5);
        assert_eq!(log.events()[0].kind, OpKind::Pull);
        assert_eq!(log.events()[4].from, 2);
    }

    #[test]
    fn round_window_filters() {
        let log = sample();
        assert_eq!(log.in_rounds(0, 1).count(), 2);
        assert_eq!(log.in_rounds(1, 3).count(), 3);
        assert_eq!(log.in_rounds(3, 10).count(), 0);
    }

    #[test]
    fn pulls_to_includes_unanswered() {
        let log = sample();
        let pulls: Vec<_> = log.pulls_to(4, 0, 10).collect();
        assert_eq!(pulls.len(), 1);
        assert_eq!(pulls[0].kind, OpKind::PullUnanswered);
    }

    #[test]
    fn pushes_to_excludes_pulls() {
        let log = sample();
        assert_eq!(log.pushes_to(2, 0, 10).count(), 2);
        assert_eq!(log.pushes_to(1, 0, 10).count(), 0);
    }

    #[test]
    fn empty_log() {
        let log = OpLog::new();
        assert!(log.is_empty());
        assert_eq!(log.in_rounds(0, 100).count(), 0);
    }
}
