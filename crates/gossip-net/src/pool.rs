//! A persistent scoped worker pool for the staged round engine.
//!
//! The staged engine's plan and apply stages shard one round's work
//! across threads. Doing that with `std::thread::scope` costs an OS
//! thread spawn + join per stage per round — the ROADMAP flags exactly
//! this per-round spawning as the suspect for the sharding losses the
//! E16 table shows at small `n`. [`ScopedPool`] keeps the workers alive
//! across rounds (and across trials: [`crate::network::Network`] owns
//! one for the lifetime of its arena) and replaces spawn/join with a
//! channel send and a condvar wait.
//!
//! ## The scoped-dispatch pattern
//!
//! [`ScopedPool::scope`] accepts jobs that borrow the caller's stack
//! (`'env` closures), like `std::thread::scope` does, but runs them on
//! the persistent workers. Soundness rests on one invariant, upheld in
//! exactly one place: **`scope` does not return — not even by panic —
//! until every job dispatched inside it has finished.** The wait runs
//! unconditionally after the scope body, and worker panics are caught
//! (and re-raised on the caller) rather than allowed to strand the
//! job counter. Given that invariant, erasing the job's `'env` lifetime
//! to send it through the channel is safe: no borrow inside a job can
//! outlive the data it references.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased job after its scope lifetime has been erased (see the
/// module docs for why that is sound).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Job accounting shared between the dispatching side and the workers.
struct Shared {
    state: Mutex<State>,
    all_done: Condvar,
}

struct State {
    /// Jobs dispatched but not yet finished.
    outstanding: usize,
    /// Jobs that finished by panicking since the last `scope` returned.
    panicked: usize,
}

/// A fixed-size pool of persistent worker threads with scoped dispatch
/// (see module docs).
pub struct ScopedPool {
    /// One dedicated channel per worker: jobs are distributed
    /// round-robin, which for the staged engine's "one chunk per
    /// worker" dispatch pattern gives each worker exactly one job per
    /// stage — no work-stealing queue needed.
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next: usize,
}

impl ScopedPool {
    /// Spawn a pool of `workers` persistent threads (`workers >= 1`).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State { outstanding: 0, panicked: 0 }),
            all_done: Condvar::new(),
        });
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                // Exits when the pool drops its sender (recv errors).
                while let Ok(job) = rx.recv() {
                    let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
                    let mut st = shared.state.lock().unwrap();
                    st.outstanding -= 1;
                    if panicked {
                        st.panicked += 1;
                    }
                    if st.outstanding == 0 {
                        shared.all_done.notify_all();
                    }
                }
            }));
            senders.push(tx);
        }
        ScopedPool { senders, handles, shared, next: 0 }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Run a dispatch scope: `f` may [`Scope::spawn`] jobs that borrow
    /// data outside the call; `scope` returns only after every spawned
    /// job has completed. If any job panicked (or `f` itself did), the
    /// panic is re-raised here — after the wait, so borrows stay valid
    /// even on the unwind path.
    pub fn scope<'env, F>(&mut self, f: F)
    where
        F: FnOnce(&mut Scope<'env, '_>),
    {
        self.next = 0; // deterministic chunk -> worker assignment per scope
        let body = catch_unwind(AssertUnwindSafe(|| {
            let mut scope = Scope { pool: self, _env: PhantomData };
            f(&mut scope);
        }));
        // The load-bearing wait: runs on success AND unwind.
        let panicked = {
            let mut st = self.shared.state.lock().unwrap();
            while st.outstanding > 0 {
                st = self.shared.all_done.wait(st).unwrap();
            }
            std::mem::take(&mut st.panicked)
        };
        if let Err(p) = body {
            resume_unwind(p);
        }
        if panicked > 0 {
            panic!("{panicked} pool job(s) panicked");
        }
    }
}

impl Drop for ScopedPool {
    fn drop(&mut self) {
        self.senders.clear(); // hang up every channel
        for h in self.handles.drain(..) {
            let _ = h.join(); // worker panics were already re-raised in scope
        }
    }
}

impl std::fmt::Debug for ScopedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedPool")
            .field("workers", &self.workers())
            .finish()
    }
}

/// Dispatch handle passed to the closure of [`ScopedPool::scope`].
pub struct Scope<'env, 'pool> {
    pool: &'pool mut ScopedPool,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Dispatch one job to a pool worker. The job may borrow anything
    /// that outlives the enclosing [`ScopedPool::scope`] call.
    pub fn spawn(&mut self, job: impl FnOnce() + Send + 'env) {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: `ScopedPool::scope` waits for `outstanding == 0`
        // before returning, on both the success and the unwind path, so
        // this job — and every `'env` borrow it captures — is finished
        // before the borrowed data can be touched again. The counter is
        // incremented *before* the send, so the wait can never miss a
        // job that is still in a channel.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        self.pool.shared.state.lock().unwrap().outstanding += 1;
        let w = self.pool.next % self.pool.senders.len();
        self.pool.next += 1;
        self.pool.senders[w]
            .send(job)
            .expect("pool worker exited while the pool was alive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_scope_waits() {
        let mut pool = ScopedPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn jobs_may_borrow_mutable_chunks() {
        let mut pool = ScopedPool::new(3);
        let mut data = vec![0u64; 9];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(3).enumerate() {
                s.spawn(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 3 + j) as u64;
                    }
                });
            }
        });
        assert_eq!(data, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let mut pool = ScopedPool::new(2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut parts = [0u64; 2];
            pool.scope(|s| {
                let (a, b) = parts.split_at_mut(1);
                s.spawn(move || a[0] = round);
                s.spawn(move || b[0] = round * 2);
            });
            total += parts[0] + parts[1];
        }
        assert_eq!(total, (0..50u64).map(|r| 3 * r).sum::<u64>());
    }

    #[test]
    fn job_panic_is_relayed_after_the_wait() {
        let mut pool = ScopedPool::new(2);
        let flag = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {
                    flag.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(res.is_err(), "job panic must propagate to the caller");
        assert_eq!(flag.load(Ordering::SeqCst), 1, "sibling job still ran");
        // The pool survives a panicked scope.
        pool.scope(|s| {
            s.spawn(|| {
                flag.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(flag.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn more_jobs_than_workers_round_robin() {
        let mut pool = ScopedPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..7 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 7);
    }
}
