//! Agent and color identifiers.
//!
//! The paper assumes agents carry unique labels in `[n] = {1, …, n}`. We use
//! the dense zero-based range `0..n` instead, which lets every per-agent
//! table be a plain `Vec` indexed by id — no hashing on the hot path.

/// The label of an agent: a dense index in `0..n`.
///
/// `u32` bounds the simulator at ~4 billion agents, far above anything a
/// single machine can simulate, while halving the footprint of vote and
/// certificate records relative to `usize`.
pub type AgentId = u32;

/// A color (opinion) from the shared color space `Σ`.
///
/// For the *fair leader election* special case, each agent's color is its
/// own [`AgentId`].
pub type ColorId = u32;

/// Number of bits needed to address one of `n` distinct values
/// (`ceil(log2(n))`, and 1 when `n <= 1` so sizes never degenerate to 0).
#[inline]
pub fn bits_for(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// `ceil(log2(n))` as a convenience for round/phase arithmetic on `usize`.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    bits_for(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn bits_for_covers_the_range() {
        // 2^bits_for(n) >= n for all n: every value in 0..n is addressable.
        for n in 1u64..1000 {
            let b = bits_for(n);
            assert!(
                (b >= 63) || (1u64 << b) >= n,
                "2^{b} < {n}: range not covered"
            );
        }
    }

    #[test]
    fn bits_for_is_tight() {
        // 2^(bits_for(n)-1) < n for n >= 2: one fewer bit would not suffice.
        for n in 2u64..1000 {
            let b = bits_for(n);
            assert!((1u64 << (b - 1)) < n, "bits_for({n}) = {b} is not tight");
        }
    }

    #[test]
    fn ceil_log2_matches_u64_variant() {
        for n in 0usize..100 {
            assert_eq!(ceil_log2(n), bits_for(n as u64));
        }
    }

    #[test]
    fn bits_for_large_values() {
        assert_eq!(bits_for(1 << 40), 40);
        assert_eq!(bits_for((1 << 40) + 1), 41);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
