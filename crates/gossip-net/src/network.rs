//! The network engine: synchronous rounds and the async (sequential)
//! extension.
//!
//! [`Network::run`] executes the paper's synchronous GOSSIP model. One
//! round proceeds in four deterministic steps:
//!
//! 1. **act** — every active agent is asked (in id order) for its at most
//!    one operation. Faulty agents are never asked.
//! 2. **answer pulls** — every pull query is put to its target's
//!    [`Agent::on_pull`] (in puller-id order); replies are *computed* now
//!    but *delivered* later, so no agent's reply can depend on a message
//!    delivered in the same round. Faulty or out-of-neighborhood targets
//!    yield silence.
//! 3. **deliver pushes** — every push reaches its target's
//!    [`Agent::on_push`] (in sender-id order), unless the target is faulty
//!    (quiescent nodes drop input) or the edge does not exist.
//! 4. **deliver replies** — every puller's [`Agent::on_reply`] receives
//!    `Some(msg)` or `None`.
//!
//! The engine enforces the GOSSIP constraints *outside* the agents: one op
//! per agent per round (the `act` signature makes more impossible),
//! authenticated sender labels on every delivery, topology respected, and
//! faulty agents fully quiescent.
//!
//! # Metering contract
//!
//! Every wire message is metered via [`MsgSize`] **at send time**, in
//! both the synchronous and the asynchronous engine:
//!
//! * **pushes** — metered when sent, even if the edge does not exist,
//!   the receiver is faulty, or the loss process drops the message;
//! * **pull queries** — metered when issued (unless
//!   [`NetworkConfig::meter_queries`] is off), even if the query is lost
//!   or the target is faulty/unreachable;
//! * **pull replies** — metered when the pullee *produces* one (its
//!   [`Agent::on_pull`] returns `Some`), even if the reply is then lost
//!   in transit. No reply message exists — and none is metered — when
//!   the query never arrived, the target is faulty or out of
//!   neighborhood, or the pullee chooses silence.
//!
//! In short: lost messages are still metered (they were sent); messages
//! that were never sent are not. So under loss probability `p`,
//! `messages_sent == pushes + queries + produced replies` exactly, for
//! every `p`.
//!
//! **Dynamic adversity** (see [`crate::dynamics`]) extends, but never
//! changes, this contract:
//!
//! * a push or pull query addressed to a **crashed** agent (down via
//!   [`ScenarioEvent::Crash`]) is metered at send time and never
//!   delivered — exactly like one addressed to a plan-faulty agent;
//! * a push or pull query crossing an installed **partition cut** is
//!   metered at send time and never delivered — exactly like one
//!   addressed off-edge; a pull across the cut produces no reply (the
//!   query never arrived), so no reply is metered;
//! * a **recovered** agent is metered like any active agent from the
//!   round its [`ScenarioEvent::Recover`] fires;
//! * the per-round probability of a [`LossSchedule`] decides whether a
//!   message is *delivered*, never whether it is *metered*.
//!
//! Every metered-but-undelivered message (off-edge, cross-cut, faulty or
//! crashed receiver, or lost in transit) additionally increments
//! [`Metrics::undelivered`], so `messages_sent - undelivered` is the
//! exact count of handler invocations the wire produced.
//!
//! [`Network::run_async`] implements the sequential variant from the
//! paper's Conclusions: at each tick exactly one uniformly-random agent
//! wakes and performs one operation, which completes (including the pull
//! reply) before the next tick. Async metrics count **rounds ==
//! activations == ticks**, independent of fault placement.
//!
//! [`Network::step_staged`] (module [`staged`]) executes the same round
//! as an explicit plan → exchange → apply pipeline whose plan and apply
//! stages shard across worker threads — the intra-trial parallelism
//! axis. Under the default [`RngDiscipline::Sequential`] it replays
//! this engine bit for bit; see the [`staged`] module docs for the
//! discipline contract and the sharded-apply metering addendum.

use crate::agent::{Agent, Op, RoundCtx};
use crate::dynamics::{FaultState, LossSchedule, PartitionCut, ScenarioEvent, ScenarioScript};
use crate::fault::FaultPlan;
use crate::ids::AgentId;
use crate::metrics::Metrics;
use crate::oplog::{OpKind, OpLog};
use crate::rng::{DetRng, RngDiscipline};
use crate::size::{MsgSize, SizeEnv};
use crate::topology::Topology;

pub mod staged;

/// Engine options.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Record every active operation into an [`OpLog`] for audits.
    pub record_ops: bool,
    /// Meter pull queries on the wire (protocol queries are constant-size
    /// tags; disabling this models free control traffic).
    pub meter_queries: bool,
    /// Independent per-message drop probability in the closed interval
    /// `[0.0, 1.0]` (failure injection; the paper's model assumes
    /// reliable channels, i.e. 0.0, and 1.0 models total channel
    /// failure). Applies to pushes, pull queries, and pull replies;
    /// dropped messages are still metered (they were sent) but never
    /// delivered, and a dropped query or reply is indistinguishable from
    /// the peer's silence.
    pub loss_probability: f64,
    /// Seed for the loss process (kept separate from agent randomness so
    /// loss patterns are reproducible and orthogonal).
    pub loss_seed: u64,
    /// Time-varying loss: a piecewise-constant [`LossSchedule`] that
    /// **overrides** `loss_probability` when set. `None` (the default)
    /// means the constant `loss_probability` — the legacy static path.
    pub loss_schedule: Option<LossSchedule>,
    /// Timed adversity events (churn, partitions). The empty script is
    /// the static case and takes the historical code path bit for bit.
    pub scenario: ScenarioScript,
    /// Which loss-draw discipline the run uses (see
    /// [`RngDiscipline`]). Only consulted by the staged engine
    /// ([`staged`]); the monolithic [`Network::step`] is always
    /// `Sequential`. The default, `Sequential`, keeps every historical
    /// digest.
    pub rng_discipline: RngDiscipline,
    /// Worker threads for the staged engine's plan/apply shards
    /// (`0` = available parallelism). Has **no effect on results** —
    /// staged output is bit-identical for every thread count — and no
    /// effect at all on the monolithic [`Network::step`] path.
    pub threads: usize,
    /// Minimum agents per shard before the staged engine fans out
    /// (`0` = no floor, shard exactly as `threads` says). Below the
    /// floor the effective thread count is clamped so each shard keeps
    /// at least this many agents — barrier overhead otherwise eats the
    /// win at small `n`. Pure throughput knob: clamping is as
    /// result-invisible as `threads` itself.
    pub shard_floor: usize,
    /// Accumulate a wall-clock breakdown of the staged stages
    /// (plan/exchange/apply) into [`Network::stage_times`]. Timing never
    /// feeds engine logic, so results are identical either way; off by
    /// default to keep `Instant` calls off the hot path.
    pub time_stages: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            record_ops: false,
            meter_queries: true,
            loss_probability: 0.0,
            loss_seed: 0,
            loss_schedule: None,
            scenario: ScenarioScript::new(),
            rng_discipline: RngDiscipline::Sequential,
            threads: 1,
            shard_floor: 0,
            time_stages: false,
        }
    }
}

/// Cumulative wall-clock spent in each staged-engine stage, µs
/// (see [`NetworkConfig::time_stages`]). `exchange_us` covers the
/// exchange proper plus the pull-apply leg and op-log pass of the
/// per-agent discipline — everything between the plan barrier and the
/// final delivery fan-out — and is itself broken into the four
/// sub-clocks below under [`RngDiscipline::PerAgent`] (the sequential
/// discipline replays the monolithic engine in one interleaved pass, so
/// its sub-clocks stay zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Scenario replay + the sharded plan stage (including the parallel
    /// scatter of per-shard plan buffers into the flat op list).
    pub plan_us: u64,
    /// Everything between the plan barrier and the delivery fan-out
    /// (the sum of the four sub-clocks, plus loose change like the
    /// `mem::take` bookkeeping the sub-clocks don't cover).
    pub exchange_us: u64,
    /// The sharded push/reply delivery stage.
    pub apply_us: u64,
    /// Sub-clock of `exchange_us`: the send-time metering pass
    /// (per-shard exact tallies merged in shard order).
    pub meter_us: u64,
    /// Sub-clock of `exchange_us`: CSR ledger construction — histograms,
    /// the offset prefix sum, and the entry scatter.
    pub build_us: u64,
    /// Sub-clock of `exchange_us`: the op-log write (zero when
    /// [`NetworkConfig::record_ops`] is off).
    pub log_us: u64,
    /// Sub-clock of `exchange_us`: mask/loss verdict resolution plus the
    /// pull-apply leg (`on_pull` handlers and reply metering).
    pub resolve_us: u64,
}

impl StageTimes {
    /// Total time attributed to staged rounds, µs. The exchange
    /// sub-clocks (`meter_us`, `build_us`, `log_us`, `resolve_us`) are
    /// components *of* `exchange_us`, not additional time, so they do
    /// not contribute here.
    pub fn total_us(&self) -> u64 {
        self.plan_us + self.exchange_us + self.apply_us
    }

    /// The metering + op-log share of the exchange clock — the two
    /// formerly serial sections the prefix-sum drain attacked; reported
    /// by E16's breakdown table.
    pub fn meter_log_us(&self) -> u64 {
        self.meter_us + self.log_us
    }
}

/// Stream base for the **dynamic** loss-draw discipline: in a dynamic
/// run the loss RNG for round `r` is `seeded(loss_seed, BASE + r)`, so
/// the loss pattern of a round depends only on that round's messages
/// (see [`crate::dynamics`] module docs). Static runs keep the single
/// stream `seeded(loss_seed, 0x1055)` for bit-compatibility with the
/// pre-dynamics corpus.
const LOSS_ROUND_STREAM_BASE: u64 = 0x1055_0000_0000;

/// The mutable engine-side state of a run at a **round boundary** —
/// everything [`Network`] owns that a checkpoint must carry beyond what
/// is derivable from `(config, seed)`. Immutable ingredients (topology,
/// size env, fault *plan*, the scenario script and loss schedule inside
/// [`NetworkConfig`]) are rebuilt by the restorer, never captured; the
/// round's `current_p` and the `dynamic` flag are recomputed by the next
/// `begin_round`, which sets them unconditionally.
///
/// `Metrics` and the op log travel alongside (they are plain `Clone`
/// data with public mutators) — see [`Network::engine_state`] /
/// [`Network::restore_engine_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Rounds executed so far (the next round to run).
    pub round: usize,
    /// Cursor into the scenario timeline: events `< next_event` have
    /// been applied.
    pub next_event: usize,
    /// Live per-agent down flags (plan faults ∪ scripted crashes).
    pub down: Vec<bool>,
    /// Installed partition overlay, as its per-agent side assignment.
    pub partition_sides: Option<Vec<u8>>,
    /// Raw xoshiro256++ state of the sequential loss stream, if the run
    /// has one. Dynamic runs re-seed this stream every `begin_round`, so
    /// for them the captured words are dead weight kept only for
    /// uniformity; for static lossy runs they are load-bearing.
    pub loss_rng: Option<[u64; 4]>,
}

/// One wire message in flight inside the event-driven runtime (see
/// [`Network::drive_events`]): what will happen when it lands.
#[derive(Debug)]
enum EventKind<M> {
    /// A push on its way to `to`'s mailbox.
    Push {
        from: AgentId,
        to: AgentId,
        msg: M,
    },
    /// A pull query on its way to the pullee.
    Query {
        puller: AgentId,
        pullee: AgentId,
        query: M,
    },
    /// A pull reply (or the timeout notification `None`) on its way back
    /// to the puller.
    Reply {
        puller: AgentId,
        pullee: AgentId,
        reply: Option<M>,
    },
}

/// An in-flight message with its delivery tick. Ordered by `(due, seq)`
/// — `seq` is the global enqueue counter, so messages with equal delays
/// deliver in send order and the queue's behavior is deterministic.
/// The ordering is *reversed* so a max-[`std::collections::BinaryHeap`]
/// pops the earliest event first.
#[derive(Debug)]
struct InFlight<M> {
    due: usize,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the heap is a max-heap, we want the earliest due.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One delivery-delay draw for the event-driven runtime: uniform in
/// `[0, max_delay]` ticks. `max_delay == 0` consumes **no** draw, so the
/// delay-free configuration's RNG streams are bit-identical to
/// [`Network::run_async`]'s regardless of how `delay_rng` was seeded.
#[inline]
fn draw_delay(delay_rng: &mut DetRng, max_delay: usize) -> usize {
    if max_delay == 0 {
        0
    } else {
        delay_rng.index(max_delay + 1)
    }
}

/// A network of agents driven in synchronous GOSSIP rounds.
///
/// `M` is the protocol's message type (`MsgSize` for wire metering;
/// deliveries are by reference, so `M` does not need `Clone`); `A` is the
/// agent type — ideally a concrete type or a monomorphic enum such as
/// rfc-core's `AgentSlot` (jump-table dispatch, agents stored inline), or
/// a boxed trait object like `Box<dyn Agent<M>>` when dynamism is needed
/// (a blanket impl forwards `Agent` through `Box`).
pub struct Network<M, A = Box<dyn Agent<M>>> {
    topology: Topology,
    env: SizeEnv,
    agents: Vec<A>,
    faults: FaultPlan,
    // Dynamic-adversity state, layered over the immutable plan/topology:
    // the live fault flags, the installed partition overlay (if any), the
    // cursor into the scenario timeline, the resolved loss schedule and
    // the round's probability, and whether the run is dynamic at all
    // (decides the loss-draw discipline; see `begin_round`).
    fault_state: FaultState,
    partition: Option<PartitionCut>,
    next_event: usize,
    loss: LossSchedule,
    current_p: f64,
    dynamic: bool,
    metrics: Metrics,
    oplog: OpLog,
    config: NetworkConfig,
    loss_rng: Option<DetRng>,
    round: usize,
    // Workhorse buffers reused across rounds (perf-book: reuse collections).
    ops: Vec<(AgentId, Op<M>)>,
    replies: Vec<(AgentId, AgentId, Option<M>)>,
    // Scratch for `Agent::act_multi` (one agent's ops before they are
    // tagged with its id and appended to `ops`).
    multi_buf: Vec<Op<M>>,
    // Persistent worker pool for the staged engine's sharded stages —
    // spawned lazily on the first staged round that shards (see
    // `gossip_net::pool`), resized on `reset_into` if the thread count
    // changes.
    pool: Option<crate::pool::ScopedPool>,
    // Staged-engine scratch (CSR ledgers, reply slots, shard buffers) —
    // empty and allocation-free until `step_staged` is first called.
    staged: staged::StagedScratch<M>,
    // The event-driven runtime's delivery queue (see `drive_events`) —
    // empty and allocation-free unless events are driven. NOT captured
    // by `EngineState`: checkpoints are a round-boundary contract of the
    // tick-driven paths, and `drive_events` runs are finished (drained)
    // before any snapshot could be cut.
    events: std::collections::BinaryHeap<InFlight<M>>,
    event_seq: u64,
    // Cumulative per-stage wall clock, populated only when
    // `config.time_stages` is set (see `StageTimes`).
    stage_times: StageTimes,
}

impl<M: MsgSize, A: Agent<M>> Network<M, A> {
    /// Build a network. `agents.len()` must equal the topology size and the
    /// fault plan size.
    pub fn new(
        topology: Topology,
        env: SizeEnv,
        agents: Vec<A>,
        faults: FaultPlan,
    ) -> Self {
        Self::with_config(topology, env, agents, faults, NetworkConfig::default())
    }

    /// Build a network with explicit [`NetworkConfig`].
    pub fn with_config(
        topology: Topology,
        env: SizeEnv,
        agents: Vec<A>,
        faults: FaultPlan,
        config: NetworkConfig,
    ) -> Self {
        assert_eq!(
            agents.len(),
            topology.n(),
            "agent count must match topology size"
        );
        assert_eq!(
            agents.len(),
            faults.n(),
            "fault plan size must match agent count"
        );
        assert!(
            (0.0..=1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1]"
        );
        let n = agents.len();
        config.scenario.validate(n);
        let loss = config
            .loss_schedule
            .clone()
            .unwrap_or_else(|| LossSchedule::constant(config.loss_probability));
        let dynamic = !config.scenario.is_empty() || !loss.is_constant();
        let loss_rng = if loss.max_p() > 0.0 {
            Some(DetRng::seeded(config.loss_seed, 0x1055))
        } else {
            None
        };
        let fault_state = FaultState::from_plan(&faults);
        Network {
            topology,
            env,
            agents,
            faults,
            fault_state,
            partition: None,
            next_event: 0,
            loss,
            current_p: 0.0,
            dynamic,
            metrics: Metrics::new(),
            oplog: OpLog::new(),
            config,
            loss_rng,
            round: 0,
            ops: Vec::with_capacity(n),
            replies: Vec::with_capacity(n),
            multi_buf: Vec::new(),
            pool: None,
            staged: staged::StagedScratch::new(),
            events: std::collections::BinaryHeap::new(),
            event_seq: 0,
            stage_times: StageTimes::default(),
        }
    }

    /// Re-arm this network for a fresh trial **in place**, reusing every
    /// reusable allocation: the agent storage (`fill` pushes the new
    /// agents into the cleared, capacity-retaining vector), the op/reply
    /// scratch buffers, the metrics' phase table, and the op log's event
    /// buffer. This is the trial-arena primitive: a Monte-Carlo worker
    /// keeps one `Network` alive and calls `reset_into` per trial instead
    /// of rebuilding the world.
    ///
    /// Semantics are exactly those of [`Network::with_config`] — a reset
    /// network is observationally identical to a freshly built one (same
    /// seed ⇒ bit-identical run), only cheaper.
    pub fn reset_into(
        &mut self,
        topology: Topology,
        env: SizeEnv,
        faults: FaultPlan,
        config: NetworkConfig,
        fill: impl FnOnce(&mut Vec<A>, &Topology),
    ) {
        assert!(
            (0.0..=1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1]"
        );
        self.topology = topology;
        self.env = env;
        self.agents.clear();
        fill(&mut self.agents, &self.topology);
        assert_eq!(
            self.agents.len(),
            self.topology.n(),
            "agent count must match topology size"
        );
        assert_eq!(
            self.agents.len(),
            faults.n(),
            "fault plan size must match agent count"
        );
        config.scenario.validate(self.agents.len());
        self.faults = faults;
        self.fault_state.reset_from(&self.faults);
        self.partition = None;
        self.next_event = 0;
        self.metrics.reset();
        self.oplog.clear();
        self.loss = config
            .loss_schedule
            .clone()
            .unwrap_or_else(|| LossSchedule::constant(config.loss_probability));
        self.dynamic = !config.scenario.is_empty() || !self.loss.is_constant();
        self.current_p = 0.0;
        self.loss_rng = if self.loss.max_p() > 0.0 {
            Some(DetRng::seeded(config.loss_seed, 0x1055))
        } else {
            None
        };
        self.config = config;
        self.round = 0;
        self.ops.clear();
        self.replies.clear();
        self.multi_buf.clear();
        // The worker pool outlives trials (that is its whole point); it
        // is re-sized lazily by the next staged round if the new config
        // wants a different thread count.
        self.staged.clear();
        self.events.clear();
        self.event_seq = 0;
        self.stage_times = StageTimes::default();
    }

    /// The cumulative staged-stage wall-clock breakdown (all-zero unless
    /// [`NetworkConfig::time_stages`] was set and staged rounds ran).
    pub fn stage_times(&self) -> StageTimes {
        self.stage_times
    }

    /// Re-aim the staged engine at a different worker-thread count,
    /// effective from the next round. `threads` is a pure throughput
    /// knob — staged output is bit-identical for every value — so this
    /// is safe to call mid-run; the per-phase shard autotuner does
    /// exactly that at phase boundaries. The worker pool is re-sized
    /// lazily by the next staged round.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The configured staged-engine worker-thread count (`0` = available
    /// parallelism; see [`NetworkConfig::threads`]).
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Open round (or async tick) `round`: apply every scenario event
    /// due at or before it — in timeline order, so same-round events
    /// apply in script order — and fix the round's loss probability.
    ///
    /// Loss-draw discipline: a **static** run (empty script, constant
    /// schedule) keeps the single loss stream seeded at construction —
    /// bit-identical to the pre-dynamics engine. A **dynamic** run
    /// re-derives the stream per round from `(loss_seed, round)`, so
    /// events or schedule edits in one round can never perturb the loss
    /// draws of another.
    fn begin_round(&mut self, round: usize) {
        loop {
            let ev = match self.config.scenario.events().get(self.next_event) {
                Some(ev) if ev.round() <= round => ev.clone(),
                _ => break,
            };
            self.next_event += 1;
            match ev {
                ScenarioEvent::Crash { set, .. } => self.fault_state.crash(&set),
                ScenarioEvent::Recover { set, .. } => self.fault_state.recover(&set),
                ScenarioEvent::Partition { cut, .. } => self.partition = Some(cut),
                ScenarioEvent::Heal { .. } => self.partition = None,
            }
        }
        self.current_p = self.loss.p_at(round);
        if self.dynamic {
            if let Some(rng) = &mut self.loss_rng {
                *rng = DetRng::seeded(
                    self.config.loss_seed,
                    LOSS_ROUND_STREAM_BASE + round as u64,
                );
            }
        }
    }

    /// Sample the loss process: true if the current message is dropped.
    /// Draws from the loss stream only while the round's probability is
    /// positive (a `p = 0` round consumes no draws — in a static run
    /// that is the whole run, matching the legacy no-RNG path).
    #[inline]
    fn dropped(&mut self) -> bool {
        if self.current_p <= 0.0 {
            return false;
        }
        match &mut self.loss_rng {
            Some(rng) => {
                let p = self.current_p;
                rng.chance(p)
            }
            None => false,
        }
    }

    /// Effective connectivity: the base topology minus any installed
    /// partition overlay (delivery masking; see [`crate::dynamics`]).
    #[inline]
    fn reachable(&self, u: AgentId, v: AgentId) -> bool {
        self.topology.connected(u, v)
            && !matches!(&self.partition, Some(cut) if cut.blocks(u, v))
    }

    /// Run `rounds` synchronous rounds (without finalizing).
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Run `rounds` rounds and then call [`Agent::finalize`] on every
    /// active agent.
    pub fn run_to_completion(&mut self, rounds: usize) {
        self.run(rounds);
        self.finalize();
    }

    /// Execute one synchronous round. Scenario events due this round are
    /// applied first, before any `act` call ([`Self::begin_round`]).
    pub fn step(&mut self) {
        let round = self.round;
        self.begin_round(round);
        // -- 1. act ------------------------------------------------------
        self.ops.clear();
        {
            let ctx = RoundCtx {
                round,
                topology: &self.topology,
            };
            let mut multi_buf = std::mem::take(&mut self.multi_buf);
            for id in 0..self.agents.len() {
                if self.fault_state.is_down(id as AgentId) {
                    continue; // quiescent: never acts
                }
                self.agents[id].act_multi(&ctx, &mut multi_buf);
                for op in multi_buf.drain(..) {
                    self.ops.push((id as AgentId, op));
                }
            }
            self.multi_buf = multi_buf;
        }
        self.metrics.record_round(self.ops.len() as u64);

        // -- 2. answer pulls (compute replies before any delivery) -------
        // Both scratch buffers are borrowed out via `take` and put back
        // exactly once, emptied *before* the put-back, so their grown
        // capacity always survives into the next round (a two-step
        // `self.ops = ops; self.ops.clear()` could silently discard the
        // buffer if code between the steps ever touched `self.ops`).
        self.replies.clear();
        let mut ops = std::mem::take(&mut self.ops);
        for (from, op) in &ops {
            if let Op::Pull { from: target, query } = op {
                let reply = self.answer_pull(*from, *target, query, round);
                self.replies.push((*from, *target, reply));
            }
        }

        // -- 3. deliver pushes -------------------------------------------
        for (from, op) in &ops {
            if let Op::Push { to, msg } = op {
                self.deliver_push(*from, *to, msg, round);
            }
        }
        ops.clear();
        debug_assert!(self.ops.is_empty(), "ops buffer grew during delivery");
        self.ops = ops;

        // -- 4. deliver replies (already metered at send time in
        //    `answer_pull`; a reply lost in transit was still sent) ------
        let mut replies = std::mem::take(&mut self.replies);
        {
            let ctx = RoundCtx {
                round,
                topology: &self.topology,
            };
            for (puller, pullee, reply) in replies.drain(..) {
                self.agents[puller as usize].on_reply(pullee, reply, &ctx);
            }
        }
        debug_assert!(self.replies.is_empty(), "replies buffer grew during delivery");
        self.replies = replies;

        self.round += 1;
    }

    fn answer_pull(
        &mut self,
        puller: AgentId,
        pullee: AgentId,
        query: &M,
        round: usize,
    ) -> Option<M> {
        if !self.send_query_checks(puller, pullee, query) {
            // The query never reached a live handler (off-edge, cross-cut,
            // lost, or a faulty/crashed pullee): no reply exists.
            self.record_pull_op(round, puller, pullee, false);
            return None;
        }
        self.resolve_query(puller, pullee, query, round)
    }

    /// Send-side half of a pull: meter the query at send time, resolve
    /// reachability/loss/fault. Returns whether the query reaches a live
    /// handler; a metered query that does not is counted `undelivered`.
    fn send_query_checks(&mut self, puller: AgentId, pullee: AgentId, query: &M) -> bool {
        // The pull *query* travels on the wire regardless of the answer.
        if self.config.meter_queries {
            self.metrics.record_message(query.size_bits(&self.env));
        }
        // The loss draw is consumed unconditionally (matching the
        // historical stream even for off-edge queries).
        let reachable = self.reachable(puller, pullee);
        let query_lost = self.dropped();
        if !reachable || query_lost || self.fault_state.is_down(pullee) {
            if self.config.meter_queries {
                self.metrics.record_undelivered();
            }
            return false;
        }
        true
    }

    /// Receive-side half of a pull, for a query that reached its live
    /// pullee: invoke [`Agent::on_pull`], meter any produced reply at
    /// send time, draw its transit loss, and log the op.
    fn resolve_query(
        &mut self,
        puller: AgentId,
        pullee: AgentId,
        query: &M,
        round: usize,
    ) -> Option<M> {
        let reply = {
            let ctx = RoundCtx {
                round,
                topology: &self.topology,
            };
            // By-ref delivery: the pullee reads the engine-owned query.
            self.agents[pullee as usize].on_pull(puller, query, &ctx)
        };
        // A produced reply is metered HERE, at send time: it went on the
        // wire whether or not it survives transit. (Metering at delivery
        // would make lost replies invisible in bits_sent/messages_sent,
        // contradicting the metering contract and under-counting E13.)
        if let Some(msg) = &reply {
            self.metrics.record_message(msg.size_bits(&self.env));
        }
        // A produced reply can itself be lost in transit.
        let reply = if reply.is_some() && self.dropped() {
            self.metrics.record_undelivered();
            None
        } else {
            reply
        };
        self.record_pull_op(round, puller, pullee, reply.is_some());
        reply
    }

    /// Op-log record for a completed pull attempt (answered or not).
    fn record_pull_op(&mut self, round: usize, puller: AgentId, pullee: AgentId, answered: bool) {
        if self.config.record_ops {
            let kind = if answered {
                OpKind::Pull
            } else {
                OpKind::PullUnanswered
            };
            self.oplog.record(round as u32, kind, puller, pullee);
        }
    }

    fn deliver_push(&mut self, from: AgentId, to: AgentId, msg: &M, round: usize) {
        if self.send_push_checks(from, to, msg, round) {
            let ctx = RoundCtx {
                round,
                topology: &self.topology,
            };
            // By-ref delivery: no clone on the push path.
            self.agents[to as usize].on_push(from, msg, &ctx);
        }
    }

    /// Send-side half of a push. Metering contract: a push is metered
    /// HERE, at send time — *before* the edge/partition/fault/loss checks
    /// below. A push addressed off-edge (no such link), across an
    /// installed partition cut, to a faulty or crashed receiver, or lost
    /// in transit was still *sent* by its author and still occupied the
    /// wire on the sender's side, so it counts toward messages_sent and
    /// bits_sent even though it is never delivered. Returns whether the
    /// push survives to delivery.
    fn send_push_checks(&mut self, from: AgentId, to: AgentId, msg: &M, round: usize) -> bool {
        self.metrics.record_message(msg.size_bits(&self.env));
        if self.config.record_ops {
            self.oplog.record(round as u32, OpKind::Push, from, to);
        }
        if !self.reachable(from, to) || self.fault_state.is_down(to) || self.dropped() {
            // No such edge / cross-cut, quiescent receiver, or lost.
            self.metrics.record_undelivered();
            return false;
        }
        true
    }

    /// Run the **asynchronous (sequential) GOSSIP** variant: `ticks`
    /// activations, each waking one uniformly-random agent which performs
    /// one complete operation (including the pull round-trip). The round
    /// index exposed to agents is the tick index.
    ///
    /// Metrics semantics: **rounds == activations == ticks**. Every tick
    /// records a round — including ticks that wake a faulty (quiescent)
    /// agent or an agent that declines to act — so `metrics.rounds`
    /// always equals `metrics.ticks` and never depends on fault
    /// placement. The active-op count of a tick is 1 if an operation was
    /// performed, else 0.
    pub fn run_async(&mut self, ticks: usize, scheduler_rng: &mut DetRng) {
        let n = self.agents.len();
        for _ in 0..ticks {
            let round = self.round;
            self.begin_round(round);
            self.metrics.record_tick();
            let id = scheduler_rng.index(n) as AgentId;
            if self.fault_state.is_down(id) {
                self.metrics.record_round(0); // activation with no op
                self.round += 1;
                continue;
            }
            let op = {
                let ctx = RoundCtx {
                    round,
                    topology: &self.topology,
                };
                self.agents[id as usize].act(&ctx)
            };
            let performed = op.is_some() as u64;
            match op {
                None => {}
                Some(Op::Push { to, msg }) => {
                    self.deliver_push(id, to, &msg, round);
                }
                Some(Op::Pull { from: target, query }) => {
                    // `answer_pull` meters the query and any produced
                    // reply at send time; nothing to meter here.
                    let reply = self.answer_pull(id, target, &query, round);
                    let ctx = RoundCtx {
                        round,
                        topology: &self.topology,
                    };
                    self.agents[id as usize].on_reply(target, reply, &ctx);
                }
            }
            self.metrics.record_round(performed);
            self.round += 1;
        }
    }

    /// Run the **event-driven** generalization of [`Network::run_async`]:
    /// the same one-uniformly-random-activation-per-tick scheduler, but
    /// every message travels through a delivery queue with a per-message
    /// delay of `delay_rng.index(max_delay + 1)` ticks per leg (a pull
    /// costs two legs: query out, reply back). `max_delay == 0` consumes
    /// **no** delay draws and delivers everything inside its send tick —
    /// bit-identical to `run_async` in every metric, handler invocation,
    /// op-log entry and loss draw (the digest-pinned replay arm).
    ///
    /// Metering is unchanged from the module contract — every message is
    /// metered at send time — with one addendum real delays force: a
    /// message still in flight when the run's tick budget expires was
    /// sent but never delivered, so [`Network::drain_in_flight`] counts
    /// it `undelivered` (keeping `messages_sent - undelivered` == exact
    /// handler invocations). Mid-flight crashes likewise: a delivery
    /// whose receiver went down after the send checks is counted
    /// `undelivered` at its delivery tick.
    ///
    /// A query that fails its send checks (off-edge, lost, pullee down)
    /// produces no reply message; the puller still learns — by timeout,
    /// modeled as a `None` reply delivered after one round-trip delay.
    pub fn drive_events(
        &mut self,
        ticks: usize,
        scheduler_rng: &mut DetRng,
        delay_rng: &mut DetRng,
        max_delay: usize,
    ) {
        let n = self.agents.len();
        for _ in 0..ticks {
            let round = self.round;
            self.begin_round(round);
            self.metrics.record_tick();
            // Land everything due from earlier ticks before anyone acts.
            self.pump_events(round, delay_rng, max_delay);
            let id = scheduler_rng.index(n) as AgentId;
            if self.fault_state.is_down(id) {
                self.metrics.record_round(0); // activation with no op
                self.round += 1;
                continue;
            }
            let op = {
                let ctx = RoundCtx {
                    round,
                    topology: &self.topology,
                };
                self.agents[id as usize].act(&ctx)
            };
            let performed = op.is_some() as u64;
            match op {
                None => {}
                Some(Op::Push { to, msg }) => {
                    if self.send_push_checks(id, to, &msg, round) {
                        let due = round + draw_delay(delay_rng, max_delay);
                        self.enqueue(due, EventKind::Push { from: id, to, msg });
                    }
                }
                Some(Op::Pull { from: target, query }) => {
                    if self.send_query_checks(id, target, &query) {
                        let due = round + draw_delay(delay_rng, max_delay);
                        self.enqueue(
                            due,
                            EventKind::Query {
                                puller: id,
                                pullee: target,
                                query,
                            },
                        );
                    } else {
                        // The query never reaches a live handler; the
                        // puller learns by timeout after a round trip.
                        self.record_pull_op(round, id, target, false);
                        let due = round + draw_delay(delay_rng, max_delay);
                        self.enqueue(
                            due,
                            EventKind::Reply {
                                puller: id,
                                pullee: target,
                                reply: None,
                            },
                        );
                    }
                }
            }
            // Flush what this tick's op made due *now* (the whole tick,
            // with `max_delay == 0`): a zero-delay pull completes its
            // query → reply → `on_reply` chain before the tick closes,
            // replaying `run_async` exactly.
            self.pump_events(round, delay_rng, max_delay);
            self.metrics.record_round(performed);
            self.round += 1;
        }
    }

    /// Deliver every queued event due at or before `now`, in `(due,
    /// send-order)` order — including events enqueued *by* these
    /// deliveries that are themselves already due (a zero-delay reply
    /// chases its zero-delay query inside one call).
    fn pump_events(&mut self, now: usize, delay_rng: &mut DetRng, max_delay: usize) {
        while let Some(ev) = self.events.peek() {
            if ev.due > now {
                break;
            }
            let ev = self.events.pop().expect("peeked event");
            match ev.kind {
                EventKind::Push { from, to, msg } => {
                    if self.fault_state.is_down(to) {
                        // Crashed after the send checks passed.
                        self.metrics.record_undelivered();
                    } else {
                        let ctx = RoundCtx {
                            round: now,
                            topology: &self.topology,
                        };
                        self.agents[to as usize].on_push(from, &msg, &ctx);
                    }
                }
                EventKind::Query { puller, pullee, query } => {
                    if self.fault_state.is_down(pullee) {
                        // Crashed mid-flight: the metered query lands on
                        // a dead mailbox; the puller gets the timeout.
                        if self.config.meter_queries {
                            self.metrics.record_undelivered();
                        }
                        self.record_pull_op(now, puller, pullee, false);
                        let due = now + draw_delay(delay_rng, max_delay);
                        self.enqueue(due, EventKind::Reply { puller, pullee, reply: None });
                    } else {
                        let reply = self.resolve_query(puller, pullee, &query, now);
                        let due = now + draw_delay(delay_rng, max_delay);
                        self.enqueue(due, EventKind::Reply { puller, pullee, reply });
                    }
                }
                EventKind::Reply { puller, pullee, reply } => {
                    if self.fault_state.is_down(puller) {
                        // The puller crashed while its reply was in
                        // flight; a produced (metered) reply is lost.
                        if reply.is_some() {
                            self.metrics.record_undelivered();
                        }
                    } else {
                        let ctx = RoundCtx {
                            round: now,
                            topology: &self.topology,
                        };
                        self.agents[puller as usize].on_reply(pullee, reply, &ctx);
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, due: usize, kind: EventKind<M>) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(InFlight { due, seq, kind });
    }

    /// Number of messages currently in the delivery queue (timeout
    /// notifications included).
    pub fn events_in_flight(&self) -> usize {
        self.events.len()
    }

    /// Terminal honesty pass of the event-driven runtime: every message
    /// still in flight when the tick budget expires was **metered at
    /// send time but never delivered** — a pull issued in an agent's
    /// last activation, say, whose reply outlives the run. Count each
    /// such metered message `undelivered` (pushes; queries, when query
    /// metering is on; produced `Some` replies — a `None` timeout was
    /// never a wire message), preserving the contract that
    /// `messages_sent - undelivered` is the exact number of handler
    /// invocations. Returns how many undelivered messages were drained.
    pub fn drain_in_flight(&mut self) -> u64 {
        let round = self.round;
        let mut dropped = 0u64;
        while let Some(ev) = self.events.pop() {
            match ev.kind {
                EventKind::Push { .. } => {
                    self.metrics.record_undelivered();
                    dropped += 1;
                }
                EventKind::Query { puller, pullee, .. } => {
                    if self.config.meter_queries {
                        self.metrics.record_undelivered();
                        dropped += 1;
                    }
                    self.record_pull_op(round, puller, pullee, false);
                }
                EventKind::Reply { reply, .. } => {
                    if reply.is_some() {
                        self.metrics.record_undelivered();
                        dropped += 1;
                    }
                }
            }
        }
        dropped
    }

    /// Call [`Agent::finalize`] on every agent active **at finalization
    /// time** — the survivor set: plan-active agents that are not
    /// currently crashed. An agent that crashed and recovered before the
    /// end is finalized; one still down is not.
    pub fn finalize(&mut self) {
        let ctx = RoundCtx {
            round: self.round,
            topology: &self.topology,
        };
        for id in 0..self.agents.len() {
            if !self.fault_state.is_down(id as AgentId) {
                self.agents[id].finalize(&ctx);
            }
        }
    }

    /// Label the current metrics phase (see [`Metrics::enter_phase`]).
    pub fn enter_phase(&mut self, name: &str) {
        self.metrics.enter_phase(name);
    }

    /// Current round index (== rounds executed so far).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.agents.len()
    }

    /// The fault plan (the adversary's immutable pre-round-0 choice).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The live fault flags (plan ∪ scripted crashes): who is down *now*
    /// — after the last executed round's events.
    pub fn fault_state(&self) -> &FaultState {
        &self.fault_state
    }

    /// The currently installed partition cut, if any.
    pub fn partition(&self) -> Option<&PartitionCut> {
        self.partition.as_ref()
    }

    /// Communication metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The operation log (empty unless `record_ops` was set).
    pub fn oplog(&self) -> &OpLog {
        &self.oplog
    }

    /// The size environment used for metering.
    pub fn env(&self) -> &SizeEnv {
        &self.env
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to agent `u` (for post-run inspection).
    pub fn agent(&self, u: AgentId) -> &A {
        &self.agents[u as usize]
    }

    /// Mutable access to agent `u` (tests / instrumentation).
    pub fn agent_mut(&mut self, u: AgentId) -> &mut A {
        &mut self.agents[u as usize]
    }

    /// All agents, id-indexed (for post-run inspection).
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Consume the network, returning the agents for inspection.
    pub fn into_agents(self) -> Vec<A> {
        self.agents
    }

    /// Capture the mutable engine state at the current round boundary
    /// (checkpoint support). At a boundary the op/reply buffers and the
    /// staged scratch hold only dead last-round data (the monolithic
    /// path drains them at the end of `step`, the staged path clears
    /// them at the start of the next), so none of them are captured.
    pub fn engine_state(&self) -> EngineState {
        EngineState {
            round: self.round,
            next_event: self.next_event,
            down: self.fault_state.down_vec(),
            partition_sides: self.partition.as_ref().map(|c| c.sides().to_vec()),
            loss_rng: self.loss_rng.as_ref().map(|r| r.state()),
        }
    }

    /// Re-install a captured [`EngineState`] (plus the checkpointed
    /// metrics and op log) into a freshly built network — the inverse of
    /// [`Network::engine_state`]. The network must have been constructed
    /// with the *same* config and ingredients the state was captured
    /// under; this only swaps the mutable layer, it cannot retarget a
    /// run. The restored `Metrics` continues exact counts — the
    /// metering contract extends across the checkpoint seam.
    pub fn restore_engine_state(
        &mut self,
        state: EngineState,
        metrics: Metrics,
        oplog: OpLog,
    ) {
        assert_eq!(
            state.down.len(),
            self.agents.len(),
            "restored down-flag count must match agent count"
        );
        assert!(
            state.next_event <= self.config.scenario.events().len(),
            "restored scenario cursor out of range"
        );
        if let Some(sides) = &state.partition_sides {
            assert_eq!(
                sides.len(),
                self.agents.len(),
                "restored partition cut must match agent count"
            );
        }
        assert_eq!(
            state.loss_rng.is_some(),
            self.loss_rng.is_some(),
            "restored loss-stream presence must match the config (max_p > 0)"
        );
        self.round = state.round;
        self.next_event = state.next_event;
        self.fault_state = FaultState::restore(&self.faults, state.down);
        self.partition = state.partition_sides.map(PartitionCut::from_sides);
        self.loss_rng = state.loss_rng.map(DetRng::from_state);
        // `current_p` and `dynamic` are recomputed: `dynamic` was already
        // derived from the (identical) config at construction, and the
        // next `begin_round` sets `current_p` unconditionally.
        self.metrics = metrics;
        self.oplog = oplog;
    }
}

// Forward `Agent` through `Box` so trait objects (and richer protocol
// sub-traits) can be stored directly as the network's agent type.
impl<M, T: Agent<M> + ?Sized> Agent<M> for Box<T> {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<M>> {
        (**self).act(ctx)
    }
    fn act_multi(&mut self, ctx: &RoundCtx, out: &mut Vec<Op<M>>) {
        (**self).act_multi(ctx, out)
    }
    fn on_pull(&mut self, from: AgentId, query: &M, ctx: &RoundCtx) -> Option<M> {
        (**self).on_pull(from, query, ctx)
    }
    fn on_push(&mut self, from: AgentId, msg: &M, ctx: &RoundCtx) {
        (**self).on_push(from, msg, ctx)
    }
    fn on_reply(&mut self, from: AgentId, reply: Option<M>, ctx: &RoundCtx) {
        (**self).on_reply(from, reply, ctx)
    }
    fn finalize(&mut self, ctx: &RoundCtx) {
        (**self).finalize(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Placement;

    /// Test message: a number; 8 bits on the wire.
    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl MsgSize for Num {
        fn size_bits(&self, _env: &SizeEnv) -> u64 {
            8
        }
    }

    /// Pushes its id to a fixed target every round; counts what it hears.
    struct FixedPusher {
        id: AgentId,
        target: AgentId,
        heard: Vec<(AgentId, u64)>,
    }
    impl Agent<Num> for FixedPusher {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            Some(Op::push(self.target, Num(self.id as u64)))
        }
        fn on_push(&mut self, from: AgentId, msg: &Num, _ctx: &RoundCtx) {
            self.heard.push((from, msg.0));
        }
    }

    /// Pulls a fixed target; the pullee answers with its id.
    struct FixedPuller {
        target: AgentId,
        answers: Vec<Option<u64>>,
    }
    impl Agent<Num> for FixedPuller {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            Some(Op::pull(self.target, Num(0)))
        }
        fn on_pull(&mut self, _from: AgentId, _q: &Num, _ctx: &RoundCtx) -> Option<Num> {
            Some(Num(77))
        }
        fn on_reply(&mut self, _from: AgentId, reply: Option<Num>, _ctx: &RoundCtx) {
            self.answers.push(reply.map(|m| m.0));
        }
    }

    fn pushers(n: usize, target: AgentId) -> Vec<Box<dyn Agent<Num>>> {
        (0..n as AgentId)
            .map(|id| {
                Box::new(FixedPusher {
                    id,
                    target,
                    heard: vec![],
                }) as Box<dyn Agent<Num>>
            })
            .collect()
    }

    #[test]
    fn pushes_are_delivered_with_authentic_sender() {
        let n = 4;
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
        );
        net.run(1);
        let a0 = net.into_agents().remove(0);
        // Can't downcast dyn Agent easily; rebuild instead with direct refs.
        drop(a0);

        // Re-run with agent_mut-based inspection via a second network.
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
        );
        net.run(1);
        // Everyone (including 0) pushed to 0: agent 0 heard 4 messages with
        // senders 0,1,2,3 in id order.
        assert_eq!(net.metrics().messages_sent, 4);
    }

    #[test]
    fn faulty_agents_never_act_and_drop_input() {
        let n = 4;
        let faults = FaultPlan::place(n, 1, Placement::LowIds); // agent 0 faulty
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            faults,
        );
        net.run(3);
        // Only agents 1..3 act: 3 pushes per round.
        assert_eq!(net.metrics().messages_sent, 9);
        assert_eq!(net.metrics().max_active_links, 3);
    }

    #[test]
    fn pulls_to_faulty_agents_yield_silence() {
        let n = 3;
        let faults = FaultPlan::place(n, 1, Placement::HighIds); // agent 2 faulty
        let agents: Vec<Box<dyn Agent<Num>>> = vec![
            Box::new(FixedPuller {
                target: 2,
                answers: vec![],
            }),
            Box::new(FixedPuller {
                target: 0,
                answers: vec![],
            }),
            Box::new(FixedPuller {
                target: 0,
                answers: vec![],
            }),
        ];
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            agents,
            faults,
        );
        net.run(2);
        // Pull queries metered: 2 pullers x 2 rounds = 4 queries; replies:
        // only agent 1's pull of agent 0 is answered (2 replies).
        assert_eq!(net.metrics().messages_sent, 4 + 2);
    }

    #[test]
    fn oplog_records_pull_outcomes() {
        let n = 3;
        let faults = FaultPlan::place(n, 1, Placement::HighIds);
        let agents: Vec<Box<dyn Agent<Num>>> = vec![
            Box::new(FixedPuller {
                target: 2,
                answers: vec![],
            }),
            Box::new(FixedPuller {
                target: 0,
                answers: vec![],
            }),
            Box::new(FixedPuller {
                target: 0,
                answers: vec![],
            }),
        ];
        let mut net = Network::with_config(
            Topology::complete(n),
            SizeEnv::for_n(n),
            agents,
            faults,
            NetworkConfig {
                record_ops: true,
                ..NetworkConfig::default()
            },
        );
        net.run(1);
        let events = net.oplog().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, OpKind::PullUnanswered); // 0 pulled faulty 2
        assert_eq!(events[1].kind, OpKind::Pull); // 1 pulled live 0
    }

    #[test]
    fn ring_topology_blocks_non_edges() {
        // On a ring, agent 0 pushing to agent 3 (not a neighbor) is dropped.
        struct PushFar;
        impl Agent<Num> for PushFar {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                Some(Op::push(3, Num(1)))
            }
        }
        struct CountPushes(u32);
        impl Agent<Num> for CountPushes {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                None
            }
            fn on_push(&mut self, _f: AgentId, _m: &Num, _c: &RoundCtx) {
                self.0 += 1;
            }
        }
        let agents: Vec<Box<dyn Agent<Num>>> = vec![
            Box::new(PushFar),
            Box::new(CountPushes(0)),
            Box::new(CountPushes(0)),
            Box::new(CountPushes(0)),
            Box::new(CountPushes(0)),
            Box::new(CountPushes(0)),
        ];
        let mut net = Network::new(
            Topology::ring(6),
            SizeEnv::for_n(6),
            agents,
            FaultPlan::none(6),
        );
        net.run(1);
        // Message was metered (it was sent) but not delivered.
        assert_eq!(net.metrics().messages_sent, 1);
    }

    #[test]
    fn round_counter_advances() {
        let n = 2;
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
        );
        assert_eq!(net.round(), 0);
        net.run(5);
        assert_eq!(net.round(), 5);
        assert_eq!(net.metrics().rounds, 5);
    }

    #[test]
    fn async_run_activates_one_agent_per_tick() {
        let n = 8;
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
        );
        let mut rng = DetRng::seeded(7, 0);
        net.run_async(100, &mut rng);
        assert_eq!(net.metrics().ticks, 100);
        // At most one message per tick (pure pushes here).
        assert!(net.metrics().messages_sent <= 100);
    }

    #[test]
    fn lossy_channel_drops_a_fraction_of_pushes() {
        // Count deliveries under 30% loss: ~70% should arrive.
        struct Recv(u32);
        impl Agent<Num> for Recv {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                None
            }
            fn on_push(&mut self, _f: AgentId, _m: &Num, _c: &RoundCtx) {
                self.0 += 1;
            }
        }
        struct Send;
        impl Agent<Num> for Send {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                Some(Op::push(1, Num(7)))
            }
        }
        let agents: Vec<Box<dyn Agent<Num>>> = vec![Box::new(Send), Box::new(Recv(0))];
        let mut net = Network::with_config(
            Topology::complete(2),
            SizeEnv::for_n(2),
            agents,
            FaultPlan::none(2),
            NetworkConfig {
                loss_probability: 0.3,
                loss_seed: 5,
                ..NetworkConfig::default()
            },
        );
        let rounds = 2000;
        net.run(rounds);
        // All sends metered…
        assert_eq!(net.metrics().messages_sent, rounds as u64);
        // …but only ~70% delivered. Extract via downcast-free trick: run a
        // probe round where the receiver pushes its count.
        // (We can read the concrete agent because A = Box<dyn Agent<Num>>;
        // instead, recreate with concrete type.)
        let agents: Vec<ProbeAgent> = vec![ProbeAgent::sender(), ProbeAgent::receiver()];
        let mut net = Network::with_config(
            Topology::complete(2),
            SizeEnv::for_n(2),
            agents,
            FaultPlan::none(2),
            NetworkConfig {
                loss_probability: 0.3,
                loss_seed: 5,
                ..NetworkConfig::default()
            },
        );
        net.run(rounds);
        let got = net.agent(1).received;
        let frac = got as f64 / rounds as f64;
        assert!(
            (0.6..0.8).contains(&frac),
            "expected ~70% delivery, got {frac}"
        );
    }

    struct ProbeAgent {
        sender: bool,
        received: u32,
    }
    impl ProbeAgent {
        fn sender() -> Self {
            ProbeAgent {
                sender: true,
                received: 0,
            }
        }
        fn receiver() -> Self {
            ProbeAgent {
                sender: false,
                received: 0,
            }
        }
    }
    impl Agent<Num> for ProbeAgent {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            if self.sender {
                Some(Op::push(1, Num(7)))
            } else {
                None
            }
        }
        fn on_push(&mut self, _f: AgentId, _m: &Num, _c: &RoundCtx) {
            self.received += 1;
        }
    }

    /// Always pulls `target`; counts replies it *produces* (as pullee)
    /// and replies actually *delivered* to it (as puller).
    struct CountingPuller {
        target: AgentId,
        produced: u64,
        delivered: u64,
    }
    impl CountingPuller {
        fn new(target: AgentId) -> Self {
            CountingPuller {
                target,
                produced: 0,
                delivered: 0,
            }
        }
    }
    impl Agent<Num> for CountingPuller {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            Some(Op::pull(self.target, Num(0)))
        }
        fn on_pull(&mut self, _from: AgentId, _q: &Num, _ctx: &RoundCtx) -> Option<Num> {
            self.produced += 1;
            Some(Num(7))
        }
        fn on_reply(&mut self, _from: AgentId, reply: Option<Num>, _ctx: &RoundCtx) {
            self.delivered += reply.is_some() as u64;
        }
    }

    #[test]
    fn lossy_pulls_yield_silence_not_errors() {
        let agents = vec![CountingPuller::new(1), CountingPuller::new(0)];
        let mut net = Network::with_config(
            Topology::complete(2),
            SizeEnv::for_n(2),
            agents,
            FaultPlan::none(2),
            NetworkConfig {
                loss_probability: 0.5,
                loss_seed: 9,
                ..NetworkConfig::default()
            },
        );
        net.run(400);
        // 800 queries metered; a reply is produced only for the ~50% of
        // queries that arrive, and metered whether or not it survives the
        // return leg.
        let produced: u64 = net.agents().iter().map(|a| a.produced).sum();
        let delivered: u64 = net.agents().iter().map(|a| a.delivered).sum();
        assert_eq!(net.metrics().messages_sent, 800 + produced);
        assert!((250..550).contains(&produced), "~half the queries arrive: {produced}");
        assert!(delivered > 0, "some replies should survive");
        assert!(
            delivered < produced,
            "with 50% loss on the return leg, some produced replies are lost"
        );
    }

    #[test]
    fn dropped_pull_replies_are_metered_at_send() {
        // Regression (metering contract): under loss, messages_sent must
        // equal pushes + queries + PRODUCED replies. The old engine
        // converted a lost reply to None before metering, silently
        // under-counting the wire traffic.
        struct Pusher;
        impl Agent<Num> for Pusher {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                Some(Op::push(1, Num(3)))
            }
        }
        enum Mixed {
            Push(Pusher),
            Pull(CountingPuller),
        }
        impl Agent<Num> for Mixed {
            fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Num>> {
                match self {
                    Mixed::Push(a) => a.act(ctx),
                    Mixed::Pull(a) => a.act(ctx),
                }
            }
            fn on_pull(&mut self, from: AgentId, q: &Num, ctx: &RoundCtx) -> Option<Num> {
                match self {
                    Mixed::Push(a) => a.on_pull(from, q, ctx),
                    Mixed::Pull(a) => a.on_pull(from, q, ctx),
                }
            }
            fn on_push(&mut self, from: AgentId, m: &Num, ctx: &RoundCtx) {
                match self {
                    Mixed::Push(a) => a.on_push(from, m, ctx),
                    Mixed::Pull(a) => a.on_push(from, m, ctx),
                }
            }
            fn on_reply(&mut self, from: AgentId, r: Option<Num>, ctx: &RoundCtx) {
                match self {
                    Mixed::Push(a) => a.on_reply(from, r, ctx),
                    Mixed::Pull(a) => a.on_reply(from, r, ctx),
                }
            }
        }
        let agents = vec![
            Mixed::Push(Pusher),
            Mixed::Pull(CountingPuller::new(2)),
            Mixed::Pull(CountingPuller::new(1)),
        ];
        let rounds = 500u64;
        let mut net = Network::with_config(
            Topology::complete(3),
            SizeEnv::for_n(3),
            agents,
            FaultPlan::none(3),
            NetworkConfig {
                loss_probability: 0.3,
                loss_seed: 17,
                ..NetworkConfig::default()
            },
        );
        net.run(rounds as usize);
        let produced: u64 = net
            .agents()
            .iter()
            .map(|a| match a {
                Mixed::Pull(p) => p.produced,
                Mixed::Push(_) => 0,
            })
            .sum();
        let pushes = rounds;
        let queries = 2 * rounds;
        assert!(produced < queries, "30% of queries are lost before the pullee");
        assert_eq!(
            net.metrics().messages_sent,
            pushes + queries + produced,
            "every sent message — including replies later lost in transit — must be metered"
        );
    }

    #[test]
    fn async_pull_messages_are_metered_exactly_once() {
        // Loss-free async: every tick is one pull — one query + one
        // produced reply = exactly two wire messages, never double-metered.
        let agents = vec![CountingPuller::new(1), CountingPuller::new(0)];
        let mut net = Network::new(
            Topology::complete(2),
            SizeEnv::for_n(2),
            agents,
            FaultPlan::none(2),
        );
        let mut rng = DetRng::seeded(3, 0);
        net.run_async(250, &mut rng);
        assert_eq!(net.metrics().messages_sent, 2 * 250);
        let produced: u64 = net.agents().iter().map(|a| a.produced).sum();
        let delivered: u64 = net.agents().iter().map(|a| a.delivered).sum();
        assert_eq!(produced, 250);
        assert_eq!(delivered, 250);
    }

    #[test]
    fn zero_loss_is_byte_identical_to_default() {
        let mk = |loss: f64| {
            let agents = pushers(4, 0);
            let mut net = Network::with_config(
                Topology::complete(4),
                SizeEnv::for_n(4),
                agents,
                FaultPlan::none(4),
                NetworkConfig {
                    loss_probability: loss,
                    loss_seed: 1,
                    ..NetworkConfig::default()
                },
            );
            net.run(20);
            net.metrics().messages_sent
        };
        assert_eq!(mk(0.0), mk(0.0));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_above_one_is_rejected() {
        let _ = Network::with_config(
            Topology::complete(2),
            SizeEnv::for_n(2),
            pushers(2, 0),
            FaultPlan::none(2),
            NetworkConfig {
                loss_probability: 1.5,
                loss_seed: 0,
                ..NetworkConfig::default()
            },
        );
    }

    #[test]
    fn total_loss_is_accepted_and_delivers_nothing() {
        // loss_probability = 1.0 is a legitimate failure-injection
        // scenario (total channel failure): everything sent is metered,
        // nothing arrives.
        let agents = vec![ProbeAgent::sender(), ProbeAgent::receiver()];
        let mut net = Network::with_config(
            Topology::complete(2),
            SizeEnv::for_n(2),
            agents,
            FaultPlan::none(2),
            NetworkConfig {
                loss_probability: 1.0,
                loss_seed: 4,
                ..NetworkConfig::default()
            },
        );
        net.run(50);
        assert_eq!(net.metrics().messages_sent, 50, "sends are still metered");
        assert_eq!(net.agent(1).received, 0, "nothing may arrive at p = 1");
    }

    #[test]
    fn async_rounds_equal_ticks_for_any_fault_placement() {
        // Regression: a faulty agent's tick used to skip record_round,
        // making metrics.rounds depend on where the faults sit. The
        // defined semantics are rounds == activations == ticks.
        let n = 8;
        let ticks = 200;
        for faults in [
            FaultPlan::none(n),
            FaultPlan::place(n, 3, Placement::LowIds),
            FaultPlan::place(n, 3, Placement::HighIds),
        ] {
            let mut net = Network::new(
                Topology::complete(n),
                SizeEnv::for_n(n),
                pushers(n, 0),
                faults,
            );
            let mut rng = DetRng::seeded(11, 0);
            net.run_async(ticks, &mut rng);
            assert_eq!(net.metrics().ticks, ticks as u64);
            assert_eq!(
                net.metrics().rounds,
                ticks as u64,
                "rounds must equal ticks regardless of fault placement"
            );
        }
    }

    #[test]
    #[should_panic(expected = "agent count must match")]
    fn size_mismatch_is_rejected() {
        let _ = Network::new(
            Topology::complete(3),
            SizeEnv::for_n(3),
            pushers(2, 0),
            FaultPlan::none(2),
        );
    }

    #[test]
    fn pushes_to_unreachable_targets_are_metered_at_send_time() {
        // Metering contract (pinned): a push is "sent" the moment its
        // author emits it, so it is metered even when the target edge
        // does not exist AND even when the target is faulty — the checks
        // that suppress *delivery* must never suppress *metering*.
        struct Quiet;
        impl Agent<Num> for Quiet {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                None
            }
        }
        struct PushOffEdge;
        impl Agent<Num> for PushOffEdge {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                Some(Op::push(3, Num(9))) // ring of 6: 0–3 is not an edge
            }
        }
        let mut agents: Vec<Box<dyn Agent<Num>>> = vec![Box::new(PushOffEdge)];
        agents.extend((1..6).map(|_| Box::new(Quiet) as Box<dyn Agent<Num>>));
        let faults = FaultPlan::place(6, 1, Placement::HighIds); // 5 faulty
        let mut net = Network::new(Topology::ring(6), SizeEnv::for_n(6), agents, faults);
        net.run(4);
        // 4 rounds × 1 off-edge push: all metered, none delivered.
        assert_eq!(net.metrics().messages_sent, 4);
        assert_eq!(net.metrics().bits_sent, 4 * 8);

        // Same for a push to a *faulty* neighbor: metered, not delivered.
        struct PushToFaulty;
        impl Agent<Num> for PushToFaulty {
            fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
                Some(Op::push(5, Num(1))) // 5 is a ring neighbor of 0, faulty
            }
        }
        let mut agents: Vec<Box<dyn Agent<Num>>> = vec![Box::new(PushToFaulty)];
        agents.extend((1..6).map(|_| Box::new(Quiet) as Box<dyn Agent<Num>>));
        let faults = FaultPlan::place(6, 1, Placement::HighIds);
        let mut net = Network::new(Topology::ring(6), SizeEnv::for_n(6), agents, faults);
        net.run(4);
        assert_eq!(net.metrics().messages_sent, 4);
    }

    #[test]
    fn reset_into_matches_fresh_network_bit_for_bit() {
        let n = 8;
        let mk_cfg = || NetworkConfig {
            record_ops: true,
            loss_probability: 0.25,
            loss_seed: 13,
            ..NetworkConfig::default()
        };
        let run = |net: &mut Network<Num, Box<dyn Agent<Num>>>| {
            net.enter_phase("a");
            net.run(10);
            net.enter_phase("b");
            net.run(10);
            (net.metrics().clone(), net.oplog().len(), net.round())
        };
        let mut fresh = Network::with_config(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
            mk_cfg(),
        );
        let expected = run(&mut fresh);

        // Arena path: one network, reset twice, must reproduce `expected`
        // both times (no state may leak through the reset).
        let mut arena = Network::with_config(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 7), // different agents on purpose
            FaultPlan::none(n),
            NetworkConfig::default(),
        );
        run(&mut arena);
        for _ in 0..2 {
            arena.reset_into(
                Topology::complete(n),
                SizeEnv::for_n(n),
                FaultPlan::none(n),
                mk_cfg(),
                |agents, _topo| agents.extend(pushers(n, 0)),
            );
            let got = run(&mut arena);
            assert_eq!(got, expected, "reset network must be indistinguishable");
        }
    }

    #[test]
    fn drive_events_zero_delay_replays_run_async_bit_for_bit() {
        // The digest-pinned contract: with max_delay == 0 the event
        // queue delivers everything inside its send tick and the whole
        // run — metrics, loss draws, op log, handler effects — is
        // bit-identical to the tick-driven scheduler. Checked on a lossy
        // config so the loss-stream alignment is exercised too.
        let mk = || {
            Network::with_config(
                Topology::complete(2),
                SizeEnv::for_n(2),
                vec![CountingPuller::new(1), CountingPuller::new(0)],
                FaultPlan::none(2),
                NetworkConfig {
                    record_ops: true,
                    loss_probability: 0.5,
                    loss_seed: 9,
                    ..NetworkConfig::default()
                },
            )
        };
        let mut tick = mk();
        let mut sched = DetRng::seeded(3, 0);
        tick.run_async(400, &mut sched);

        let mut ev = mk();
        let mut sched = DetRng::seeded(3, 0);
        let mut delays = DetRng::seeded(99, 1); // seed is irrelevant: 0 draws
        ev.drive_events(400, &mut sched, &mut delays, 0);
        assert_eq!(ev.events_in_flight(), 0, "zero-delay queue must be empty");
        assert_eq!(ev.drain_in_flight(), 0);

        assert_eq!(tick.metrics().clone(), ev.metrics().clone());
        assert_eq!(tick.oplog().len(), ev.oplog().len());
        let sums = |n: &Network<Num, CountingPuller>| {
            (
                n.agents().iter().map(|a| a.produced).sum::<u64>(),
                n.agents().iter().map(|a| a.delivered).sum::<u64>(),
            )
        };
        assert_eq!(sums(&tick), sums(&ev));
    }

    #[test]
    fn budget_expired_pull_replies_count_undelivered() {
        // Regression (metering contract, real delays): a pull issued in
        // an agent's last activations whose query or reply is still in
        // flight when the tick budget expires was metered at send time
        // but never reaches a handler. The terminal drain must count
        // every such message `undelivered`, preserving
        // `messages_sent - undelivered == exact handler invocations`.
        let mut net = Network::new(
            Topology::complete(2),
            SizeEnv::for_n(2),
            vec![CountingPuller::new(1), CountingPuller::new(0)],
            FaultPlan::none(2),
        );
        let ticks = 50u64;
        let mut sched = DetRng::seeded(3, 0);
        let mut delays = DetRng::seeded(3, 1);
        net.drive_events(ticks as usize, &mut sched, &mut delays, 10);
        assert!(
            net.events_in_flight() > 0,
            "with delays up to 10 ticks, the last sends must still be in flight"
        );
        let drained = net.drain_in_flight();
        assert!(drained > 0, "in-flight metered messages must drain as undelivered");
        assert_eq!(net.events_in_flight(), 0);

        // Every tick issues one metered pull query; replies are metered
        // when produced. The invariant the old accounting broke:
        let produced: u64 = net.agents().iter().map(|a| a.produced).sum();
        let delivered: u64 = net.agents().iter().map(|a| a.delivered).sum();
        let m = net.metrics();
        assert_eq!(m.messages_sent, ticks + produced);
        assert_eq!(
            m.messages_sent - m.undelivered,
            produced + delivered,
            "metered-but-undelivered in-flight messages must not count as handled"
        );
        assert!(
            delivered < produced,
            "some produced replies expired with the budget"
        );
    }

    #[test]
    #[should_panic(expected = "agent count must match")]
    fn reset_into_rejects_size_mismatch() {
        let n = 4;
        let mut net = Network::new(
            Topology::complete(n),
            SizeEnv::for_n(n),
            pushers(n, 0),
            FaultPlan::none(n),
        );
        net.reset_into(
            Topology::complete(n),
            SizeEnv::for_n(n),
            FaultPlan::none(n),
            NetworkConfig::default(),
            |agents, _| agents.extend(pushers(n - 1, 0)),
        );
    }
}
