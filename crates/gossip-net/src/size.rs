//! Message-size accounting in bits.
//!
//! The paper's headline complexity claims are stated in bits: messages of
//! size `O(log² n)` and total communication `O(n log³ n)`. To validate those
//! claims (experiments E2/E3) every message type reports its wire size via
//! [`MsgSize`], using the *information-theoretic* field widths collected in
//! a [`SizeEnv`]:
//!
//! * an agent id costs `ceil(log2 n)` bits,
//! * a vote value in `[m] = [n³]` costs `ceil(log2 m) ≈ 3·log2 n` bits,
//! * a round index in `[q]` costs `ceil(log2 q)` bits,
//! * a color costs `ceil(log2 |Σ|)` bits,
//! * every message additionally pays a small constant [`SizeEnv::TAG_BITS`]
//!   tag identifying its variant.
//!
//! Counting idealized widths (rather than Rust struct sizes) matches how
//! the paper accounts message complexity and makes the measured scaling
//! directly comparable to the `O(log² n)` bound.

use crate::ids::bits_for;

/// Field-width environment used to price messages, fixed per network run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeEnv {
    /// Bits to encode one agent id (`ceil(log2 n)`).
    pub id_bits: u32,
    /// Bits to encode one vote value in `[m]` (`ceil(log2 m)`).
    pub value_bits: u32,
    /// Bits to encode one round index within a phase (`ceil(log2 q)`).
    pub round_bits: u32,
    /// Bits to encode one color from `Σ` (`ceil(log2 |Σ|)`).
    pub color_bits: u32,
}

impl SizeEnv {
    /// Per-message variant tag, charged on every message.
    ///
    /// Three bits price up to [`SizeEnv::MAX_TAGGED_VARIANTS`] = 8
    /// distinct message kinds; the protocol uses five. The real wire
    /// codec (`rfc_core::codec`) asserts this bound in its per-variant
    /// honesty test, so growing the message enum past 8 variants is a
    /// compile-the-tests-and-find-out breakage, not a silent one.
    pub const TAG_BITS: u64 = 3;

    /// Number of message variants [`SizeEnv::TAG_BITS`] can address.
    pub const MAX_TAGGED_VARIANTS: usize = 1 << Self::TAG_BITS as usize;

    /// The canonical `γ` the idealized widths assume (the repo-wide
    /// default `RunConfig` gamma): [`SizeEnv::for_n`] must price a
    /// round index in `[q]` with `q = ceil(γ·log₂ n)`.
    pub const CANONICAL_GAMMA: u64 = 3;

    /// Environment for the paper's canonical parameters on `n` agents:
    /// `m = n³`, `q = γ·log₂ n` rounds per phase with the canonical
    /// `γ = 3` ([`SizeEnv::CANONICAL_GAMMA`]), colors bounded by `n`
    /// (leader election is the worst case: `|Σ| = n`).
    pub fn for_n(n: usize) -> Self {
        let n = n.max(2) as u64;
        let id_bits = bits_for(n);
        SizeEnv {
            id_bits,
            value_bits: 3 * id_bits, // log2(n^3) = 3 log2(n)
            // Price a round index in [q] for the canonical q = γ·log₂ n.
            // (Historically this used γ = 2, which cannot represent the
            // top round indices of a default γ = 3 run — e.g. n = 256:
            // 4 bits for indices up to 23. The real codec's round-trip
            // proves those indices exist on the wire; `covers_round`
            // pins the fix.)
            round_bits: bits_for((Self::CANONICAL_GAMMA * bits_for(n) as u64).max(2)),
            color_bits: id_bits,
        }
    }

    /// Environment with an explicit vote-space size `m` and phase length
    /// `q` (used by the `m = n` ablation, E11).
    pub fn with_params(n: usize, m: u64, q: usize, colors: usize) -> Self {
        let n = n.max(2) as u64;
        SizeEnv {
            id_bits: bits_for(n),
            value_bits: bits_for(m.max(2)),
            round_bits: bits_for((q as u64).max(2)),
            color_bits: bits_for((colors as u64).max(2)),
        }
    }

    /// Cost of one `(value, target-id)` vote-intention entry.
    #[inline]
    pub fn intent_entry_bits(&self) -> u64 {
        self.value_bits as u64 + self.id_bits as u64
    }

    /// Cost of one `(voter, round, value)` vote record.
    #[inline]
    pub fn vote_record_bits(&self) -> u64 {
        self.id_bits as u64 + self.round_bits as u64 + self.value_bits as u64
    }

    /// Can `id_bits` represent every id in `[n]`? The idealized widths
    /// are only honest if each field's width covers its value range —
    /// the real codec's per-variant test asserts these for the values
    /// it round-trips.
    #[inline]
    pub fn covers_id(&self, n: usize) -> bool {
        width_covers(self.id_bits, n.saturating_sub(1) as u64)
    }

    /// Can `value_bits` represent every vote value in `[m]`?
    #[inline]
    pub fn covers_value(&self, m: u64) -> bool {
        width_covers(self.value_bits, m.saturating_sub(1))
    }

    /// Can `round_bits` represent every round index in `[q]`?
    #[inline]
    pub fn covers_round(&self, q: usize) -> bool {
        width_covers(self.round_bits, q.saturating_sub(1) as u64)
    }
}

/// Does a `width`-bit field represent `max_value`?
#[inline]
fn width_covers(width: u32, max_value: u64) -> bool {
    width >= 64 || max_value < (1u64 << width)
}

/// Types that know their wire size in bits under a given [`SizeEnv`].
pub trait MsgSize {
    /// Idealized encoded size of this message in bits.
    fn size_bits(&self, env: &SizeEnv) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_n_widths_scale_logarithmically() {
        let e1 = SizeEnv::for_n(1 << 10);
        assert_eq!(e1.id_bits, 10);
        assert_eq!(e1.value_bits, 30);
        let e2 = SizeEnv::for_n(1 << 20);
        assert_eq!(e2.id_bits, 20);
        assert_eq!(e2.value_bits, 60);
    }

    #[test]
    fn for_n_handles_tiny_networks() {
        let e = SizeEnv::for_n(0);
        assert!(e.id_bits >= 1);
        assert!(e.value_bits >= 1);
        assert!(e.round_bits >= 1);
    }

    #[test]
    fn with_params_uses_explicit_m() {
        // m = n ablation: vote values only cost log2(n) bits.
        let e = SizeEnv::with_params(1024, 1024, 40, 2);
        assert_eq!(e.value_bits, 10);
        assert_eq!(e.round_bits, 6); // ceil(log2 40)
        assert_eq!(e.color_bits, 1);
    }

    #[test]
    fn record_costs_compose_fields() {
        let e = SizeEnv::for_n(256);
        assert_eq!(e.intent_entry_bits(), (e.value_bits + e.id_bits) as u64);
        assert_eq!(
            e.vote_record_bits(),
            (e.id_bits + e.round_bits + e.value_bits) as u64
        );
    }

    #[test]
    fn vote_value_width_is_three_id_widths() {
        for exp in 3..16 {
            let e = SizeEnv::for_n(1usize << exp);
            assert_eq!(e.value_bits, 3 * e.id_bits);
        }
    }

    /// Regression (size-accounting honesty): `for_n`'s round width must
    /// cover the round indices a canonical γ = 3 run actually puts on
    /// the wire. The old accounting used γ = 2, so at e.g. n = 256
    /// (`q = 24`) it priced a round index at 4 bits — unable to
    /// represent indices 16..=23 that every default run sends.
    #[test]
    fn for_n_round_width_covers_canonical_q() {
        for exp in 3..24u32 {
            let n = 1usize << exp;
            let e = SizeEnv::for_n(n);
            let q = (SizeEnv::CANONICAL_GAMMA as usize) * exp as usize;
            assert!(
                e.covers_round(q),
                "n=2^{exp}: round_bits={} cannot represent q={q} round indices",
                e.round_bits
            );
            assert!(e.covers_id(n));
            assert!(e.covers_value((n as u64).saturating_pow(3)));
        }
    }

    #[test]
    fn coverage_predicates_bound_exact_ranges() {
        let e = SizeEnv::with_params(1024, 1024, 40, 2);
        assert!(e.covers_id(1024) && !e.covers_id(1025));
        assert!(e.covers_value(1024) && !e.covers_value(2048));
        assert!(e.covers_round(40) && !e.covers_round(65));
        // Degenerate widths never panic.
        assert!(width_covers(64, u64::MAX));
        assert!(e.covers_id(0));
    }

    #[test]
    fn tag_space_bounds_variant_count() {
        assert_eq!(SizeEnv::MAX_TAGGED_VARIANTS, 8);
    }
}
