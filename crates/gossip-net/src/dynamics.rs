//! Dynamic adversity: scenario scripts that make faults, topology and
//! loss **functions of time**.
//!
//! The paper's adversary is frozen before round 0 — permanent quiescent
//! faults ([`crate::fault::FaultPlan`]) and one constant loss probability.
//! This module opens the time axis with four primitives, all replayed
//! deterministically by [`crate::Network::step`] before any delivery of
//! the round they are due:
//!
//! * **Churn** — [`ScenarioEvent::Crash`] / [`ScenarioEvent::Recover`]:
//!   agents go quiescent mid-run and may come back. A crashed agent is
//!   indistinguishable from a plan-faulty one while down (never acts,
//!   drops pushes, yields silence to pulls); on recovery it resumes with
//!   the local state it had when it crashed — everything sent to it in
//!   between is lost. Plan-permanent faults can never be recovered.
//! * **Partitions** — [`ScenarioEvent::Partition`] installs a
//!   [`PartitionCut`]: a blocked-edge *overlay* that masks every edge
//!   crossing the cut until [`ScenarioEvent::Heal`]. The overlay affects
//!   delivery only — agents still sample peers from the base topology
//!   and their RNG streams are untouched; a cross-cut send is metered
//!   (it went on the wire) but never delivered, exactly like a push to a
//!   non-edge.
//! * **Scheduled loss** — [`LossSchedule`]: a piecewise-constant drop
//!   probability over rounds (with [`LossSchedule::burst`] as the common
//!   special case), replacing the single
//!   [`crate::NetworkConfig::loss_probability`].
//!
//! The mutable per-run fault flags live in [`FaultState`], layered over
//! the immutable `FaultPlan`: the plan is what the pre-round-0 adversary
//! chose, the state is what is down *now*.
//!
//! ## Determinism and the loss-draw discipline
//!
//! A run is **static** when the scenario is empty and the loss schedule
//! is constant; static runs take the historical code path bit for bit
//! (single loss stream seeded once, one draw per wire message while the
//! probability is positive). A run with events or a multi-piece schedule
//! is **dynamic**: the loss stream is re-derived *per round* from
//! `(loss_seed, round)`, so the loss pattern of round `r` depends only on
//! the messages of round `r` — changing a burst window or a partition
//! event cannot perturb the loss draws of unrelated rounds (pinned by
//! `loss_draw_isolation` tests).

use crate::bits::BitSet;
use crate::fault::FaultPlan;
use crate::ids::AgentId;
use crate::topology::Topology;

/// A piecewise-constant per-message drop probability over rounds.
///
/// Internally a sorted list of `(from_round, p)` steps: the probability
/// at round `r` is the `p` of the last step with `from_round <= r`.
/// Schedules are normalized at construction (sorted, deduplicated with
/// later entries winning, adjacent equal probabilities merged, an
/// implicit `(0, 0.0)` prefix when the first step starts late), so two
/// schedules describing the same function compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct LossSchedule {
    steps: Vec<(usize, f64)>,
}

impl LossSchedule {
    /// The constant schedule `p` for every round (the legacy
    /// `loss_probability` as a schedule).
    pub fn constant(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        LossSchedule { steps: vec![(0, p)] }
    }

    /// A schedule from explicit `(from_round, p)` pieces.
    pub fn piecewise(steps: Vec<(usize, f64)>) -> Self {
        for &(_, p) in &steps {
            assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        }
        let mut steps = steps;
        steps.sort_by_key(|&(r, _)| r);
        let mut norm: Vec<(usize, f64)> = Vec::with_capacity(steps.len() + 1);
        for (r, p) in steps {
            match norm.last_mut() {
                Some(last) if last.0 == r => last.1 = p, // later entry wins
                _ => norm.push((r, p)),
            }
        }
        if norm.first().map(|&(r, _)| r != 0).unwrap_or(true) {
            norm.insert(0, (0, 0.0));
        }
        // Merge adjacent equal probabilities so e.g. a zero-length burst
        // normalizes back to a constant schedule.
        norm.dedup_by(|next, prev| prev.1 == next.1);
        LossSchedule { steps: norm }
    }

    /// `base` everywhere except a burst window `[from, until)` at
    /// `burst_p` (an empty window normalizes to `constant(base)`).
    pub fn burst(base: f64, burst_p: f64, from: usize, until: usize) -> Self {
        assert!(from <= until, "burst window must not be inverted");
        Self::piecewise(vec![(0, base), (from, burst_p), (until, base)])
    }

    /// The drop probability in force at `round`.
    #[inline]
    pub fn p_at(&self, round: usize) -> f64 {
        let idx = self.steps.partition_point(|&(r, _)| r <= round);
        self.steps[idx - 1].1
    }

    /// The largest probability anywhere in the schedule (0 ⇒ the run can
    /// never drop a message and needs no loss RNG).
    pub fn max_p(&self) -> f64 {
        self.steps.iter().fold(0.0f64, |m, &(_, p)| m.max(p))
    }

    /// True when the schedule is a single piece — the static case that
    /// must stay bit-identical to the legacy `loss_probability` path.
    pub fn is_constant(&self) -> bool {
        self.steps.len() == 1
    }

    /// The normalized steps (inspection/tests).
    pub fn steps(&self) -> &[(usize, f64)] {
        &self.steps
    }
}

/// A partition of the agent set into sides; edges between different
/// sides are blocked while the cut is installed.
///
/// The cut is an overlay over the base [`Topology`]: it masks delivery
/// but does not change what agents see (they keep sampling peers from
/// the base graph). Self-delivery (`u == v`, legal on the complete
/// graph) is never blocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCut {
    sides: Vec<u8>,
}

impl PartitionCut {
    /// Two-sided cut: ids `0..k` on side 0, the rest on side 1.
    pub fn split_at(n: usize, k: usize) -> Self {
        assert!(k <= n, "split point beyond the agent range");
        PartitionCut {
            sides: (0..n).map(|u| (u >= k) as u8).collect(),
        }
    }

    /// Arbitrary cut from an explicit per-agent side assignment.
    pub fn from_sides(sides: Vec<u8>) -> Self {
        PartitionCut { sides }
    }

    /// Number of agents the cut covers.
    pub fn n(&self) -> usize {
        self.sides.len()
    }

    /// The side agent `u` is on.
    #[inline]
    pub fn side_of(&self, u: AgentId) -> u8 {
        self.sides[u as usize]
    }

    /// The full per-agent side assignment (checkpoint support — the
    /// inverse of [`PartitionCut::from_sides`]).
    pub fn sides(&self) -> &[u8] {
        &self.sides
    }

    /// Does the overlay block the edge `{u, v}`?
    #[inline]
    pub fn blocks(&self, u: AgentId, v: AgentId) -> bool {
        u != v && self.sides[u as usize] != self.sides[v as usize]
    }

    /// Materialize the masked topology (base minus blocked edges) as an
    /// explicit sparse graph — an inspection/testing helper; the engine
    /// applies the overlay per delivery and never builds this.
    pub fn mask(&self, base: &Topology) -> Topology {
        let n = base.n();
        assert_eq!(n, self.sides.len(), "cut size must match topology size");
        let adj: Vec<Vec<AgentId>> = (0..n as AgentId)
            .map(|u| match base {
                Topology::Complete { .. } => (0..n as AgentId)
                    .filter(|&v| v != u && !self.blocks(u, v))
                    .collect(),
                Topology::Sparse(csr) => csr
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| !self.blocks(u, v))
                    .collect(),
            })
            .collect();
        Topology::Sparse(crate::topology::Csr::from_adjacency(&adj))
    }
}

/// One timed adversity event. Events fire at the *start* of their round,
/// before any `act` call of that round.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// The agents in `set` crash (go quiescent) at `round`.
    Crash {
        /// Round the crash takes effect.
        round: usize,
        /// Agents going down (already-down agents are unaffected).
        set: Vec<AgentId>,
    },
    /// The agents in `set` recover at `round` (plan-permanent faults
    /// stay down; see [`FaultState::recover`]).
    Recover {
        /// Round the recovery takes effect.
        round: usize,
        /// Agents coming back.
        set: Vec<AgentId>,
    },
    /// Install a [`PartitionCut`] at `round`, replacing any current cut.
    Partition {
        /// Round the cut is installed.
        round: usize,
        /// The cut.
        cut: PartitionCut,
    },
    /// Remove the current cut (no-op when none is installed).
    Heal {
        /// Round the network heals.
        round: usize,
    },
}

impl ScenarioEvent {
    /// The round this event fires at.
    pub fn round(&self) -> usize {
        match self {
            ScenarioEvent::Crash { round, .. }
            | ScenarioEvent::Recover { round, .. }
            | ScenarioEvent::Partition { round, .. }
            | ScenarioEvent::Heal { round } => *round,
        }
    }
}

/// A deterministic timeline of adversity events.
///
/// Events are kept sorted by round; events sharing a round apply in the
/// order they were added (so `recover(r, s)` followed by `crash(r, s)`
/// leaves `s` down in round `r` — pinned by the event-ordering tests).
/// An empty script is the static case and costs nothing per round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioScript {
    events: Vec<ScenarioEvent>,
}

impl ScenarioScript {
    /// The empty script (static adversity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, keeping the timeline sorted by round (stable:
    /// same-round events keep insertion order).
    pub fn event(mut self, ev: ScenarioEvent) -> Self {
        let pos = self.events.partition_point(|e| e.round() <= ev.round());
        self.events.insert(pos, ev);
        self
    }

    /// Crash `set` at `round`.
    pub fn crash(self, round: usize, set: Vec<AgentId>) -> Self {
        self.event(ScenarioEvent::Crash { round, set })
    }

    /// Recover `set` at `round`.
    pub fn recover(self, round: usize, set: Vec<AgentId>) -> Self {
        self.event(ScenarioEvent::Recover { round, set })
    }

    /// Install `cut` at `round`.
    pub fn partition(self, round: usize, cut: PartitionCut) -> Self {
        self.event(ScenarioEvent::Partition { round, cut })
    }

    /// Heal any partition at `round`.
    pub fn heal(self, round: usize) -> Self {
        self.event(ScenarioEvent::Heal { round })
    }

    /// True when no events are scheduled (the static case).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by round.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Panic unless every referenced agent id / cut size fits a network
    /// of `n` agents (called by the network constructors).
    pub fn validate(&self, n: usize) {
        for ev in &self.events {
            match ev {
                ScenarioEvent::Crash { set, .. } | ScenarioEvent::Recover { set, .. } => {
                    for &u in set {
                        assert!(
                            (u as usize) < n,
                            "scenario references agent {u} outside 0..{n}"
                        );
                    }
                }
                ScenarioEvent::Partition { cut, .. } => {
                    assert_eq!(
                        cut.n(),
                        n,
                        "partition cut must assign a side to every agent"
                    );
                }
                ScenarioEvent::Heal { .. } => {}
            }
        }
    }
}

/// The **mutable** fault flags of a live run, layered over the immutable
/// pre-round-0 [`FaultPlan`].
///
/// `is_down(u)` is what the engine consults everywhere it used to ask
/// `plan.is_faulty(u)`: plan faults are down forever; scripted crashes
/// toggle on [`ScenarioEvent::Crash`] and off on
/// [`ScenarioEvent::Recover`]. Recovering a plan-permanent fault is a
/// no-op — the paper's adversary committed to it before round 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultState {
    permanent: BitSet,
    down: BitSet,
    n_down: usize,
}

impl FaultState {
    /// Initial state: exactly the plan's faults are down.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        FaultState {
            permanent: plan.flags().clone(),
            down: plan.flags().clone(),
            n_down: plan.n_faulty(),
        }
    }

    /// Re-arm **in place** from a fresh plan, reusing both flag buffers
    /// (the arena-reset primitive; a reset state is `==` to
    /// [`FaultState::from_plan`] of the same plan).
    pub fn reset_from(&mut self, plan: &FaultPlan) {
        self.permanent.clone_from(plan.flags());
        self.down.clone_from(plan.flags());
        self.n_down = plan.n_faulty();
    }

    /// Rebuild a mid-run state from the plan plus the live `down` flags
    /// captured by a checkpoint (checkpoint support). The permanent
    /// layer always comes from the plan — it is immutable, so it is
    /// derived, never serialized. Every plan fault must still be down in
    /// `down` (plan faults never recover).
    pub fn restore(plan: &FaultPlan, down: Vec<bool>) -> Self {
        assert_eq!(down.len(), plan.n(), "down-flag count must match plan");
        assert!(
            plan.flags().ones().all(|i| down[i]),
            "a plan-permanent fault cannot be up in a restored state"
        );
        let n_down = down.iter().filter(|&&d| d).count();
        FaultState {
            permanent: plan.flags().clone(),
            down: BitSet::from_bools(&down),
            n_down,
        }
    }

    /// The live per-agent down flags as booleans (checkpoint support —
    /// the mutable half of the state, the inverse of
    /// [`FaultState::restore`]; the permanent half is the plan's).
    pub fn down_vec(&self) -> Vec<bool> {
        self.down.to_bools()
    }

    /// Is agent `u` down (plan-faulty or currently crashed)?
    #[inline]
    pub fn is_down(&self, u: AgentId) -> bool {
        self.down.get(u as usize)
    }

    /// Total number of agents.
    #[inline]
    pub fn n(&self) -> usize {
        self.down.len()
    }

    /// Number of agents currently down.
    #[inline]
    pub fn n_down(&self) -> usize {
        self.n_down
    }

    /// Number of agents currently active.
    #[inline]
    pub fn n_active(&self) -> usize {
        self.down.len() - self.n_down
    }

    /// Crash every agent in `set` (already-down agents are unaffected).
    pub fn crash(&mut self, set: &[AgentId]) {
        for &u in set {
            let u = u as usize;
            if !self.down.get(u) {
                self.down.set(u);
                self.n_down += 1;
            }
        }
    }

    /// Recover every agent in `set`; plan-permanent faults stay down.
    pub fn recover(&mut self, set: &[AgentId]) {
        for &u in set {
            let u = u as usize;
            if self.down.get(u) && !self.permanent.get(u) {
                self.down.clear_bit(u);
                self.n_down -= 1;
            }
        }
    }

    /// Iterator over the currently active agent ids.
    pub fn active_ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        (0..self.down.len()).filter(|&i| !self.down.get(i)).map(|i| i as AgentId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Placement;

    #[test]
    fn constant_schedule_is_one_piece() {
        let s = LossSchedule::constant(0.3);
        assert!(s.is_constant());
        assert_eq!(s.p_at(0), 0.3);
        assert_eq!(s.p_at(1_000_000), 0.3);
        assert_eq!(s.max_p(), 0.3);
    }

    #[test]
    fn piecewise_lookup_and_normalization() {
        let s = LossSchedule::piecewise(vec![(10, 0.5), (0, 0.1), (20, 0.1)]);
        assert_eq!(s.p_at(0), 0.1);
        assert_eq!(s.p_at(9), 0.1);
        assert_eq!(s.p_at(10), 0.5);
        assert_eq!(s.p_at(19), 0.5);
        assert_eq!(s.p_at(20), 0.1);
        assert!(!s.is_constant());
        assert_eq!(s.max_p(), 0.5);
    }

    #[test]
    fn late_start_gets_zero_prefix_and_same_round_later_wins() {
        let s = LossSchedule::piecewise(vec![(5, 0.4)]);
        assert_eq!(s.p_at(0), 0.0);
        assert_eq!(s.p_at(5), 0.4);
        let s = LossSchedule::piecewise(vec![(0, 0.1), (0, 0.2)]);
        assert!(s.is_constant());
        assert_eq!(s.p_at(0), 0.2);
    }

    #[test]
    fn empty_burst_normalizes_to_constant() {
        let s = LossSchedule::burst(0.2, 0.9, 7, 7);
        assert!(s.is_constant());
        assert_eq!(s.p_at(100), 0.2);
        let b = LossSchedule::burst(0.2, 0.9, 7, 9);
        assert!(!b.is_constant());
        assert_eq!(b.p_at(8), 0.9);
        assert_eq!(b.p_at(9), 0.2);
    }

    #[test]
    fn overlapping_bursts_compose_later_wins() {
        // Two bursts spelled as one piecewise script: [10, 20) at 0.9
        // and [15, 25) at 0.8. In the overlap the later-round step wins
        // (piecewise semantics), and the tail returns to base.
        let s = LossSchedule::piecewise(vec![
            (0, 0.05),
            (10, 0.9),
            (20, 0.05), // end of burst one…
            (15, 0.8),  // …but burst two re-raises inside it
            (25, 0.05),
        ]);
        assert_eq!(s.p_at(9), 0.05);
        assert_eq!(s.p_at(10), 0.9);
        assert_eq!(s.p_at(14), 0.9);
        assert_eq!(s.p_at(15), 0.8);
        assert_eq!(s.p_at(20), 0.05);
        assert_eq!(s.p_at(24), 0.05);
        assert_eq!(s.p_at(25), 0.05);
        assert_eq!(s.max_p(), 0.9);
        // Same-round duplicate steps from two bursts: the later list
        // entry wins and the schedule stays normalized (no dup rounds).
        let dup = LossSchedule::piecewise(vec![(0, 0.1), (8, 0.9), (8, 0.7)]);
        assert_eq!(dup.p_at(8), 0.7);
        assert!(dup.steps().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn adjacent_equal_steps_merge_to_one_piece() {
        // A burst whose raised level equals base disappears entirely —
        // the normalized form is constant, so `max_p` (which gates the
        // loss-RNG's existence, and with it the checkpoint's RNG slot)
        // cannot be inflated by a no-op burst.
        let s = LossSchedule::burst(0.3, 0.3, 5, 9);
        assert!(s.is_constant());
        assert_eq!(s.steps().len(), 1);
        assert_eq!(s.max_p(), 0.3);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn schedule_rejects_bad_probability() {
        let _ = LossSchedule::piecewise(vec![(0, 1.5)]);
    }

    #[test]
    fn split_cut_blocks_only_cross_edges() {
        let cut = PartitionCut::split_at(6, 3);
        assert!(!cut.blocks(0, 2));
        assert!(!cut.blocks(4, 5));
        assert!(cut.blocks(0, 3));
        assert!(cut.blocks(5, 2));
        assert!(!cut.blocks(4, 4), "self-delivery is never blocked");
    }

    #[test]
    fn mask_of_complete_graph_is_two_cliques() {
        let cut = PartitionCut::split_at(6, 2);
        let masked = cut.mask(&Topology::complete(6));
        assert!(masked.connected(0, 1));
        assert!(masked.connected(3, 5));
        assert!(!masked.connected(1, 2));
        assert_eq!(masked.degree(0), 1);
        assert_eq!(masked.degree(3), 3);
    }

    #[test]
    fn script_sorts_by_round_stably() {
        let cut = PartitionCut::split_at(4, 2);
        let s = ScenarioScript::new()
            .heal(9)
            .crash(3, vec![1])
            .partition(3, cut)
            .recover(3, vec![1]);
        let rounds: Vec<usize> = s.events().iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![3, 3, 3, 9]);
        // Insertion order preserved within round 3.
        assert!(matches!(s.events()[0], ScenarioEvent::Crash { .. }));
        assert!(matches!(s.events()[1], ScenarioEvent::Partition { .. }));
        assert!(matches!(s.events()[2], ScenarioEvent::Recover { .. }));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn validate_rejects_out_of_range_ids() {
        ScenarioScript::new().crash(0, vec![9]).validate(4);
    }

    #[test]
    fn fault_state_layers_over_plan() {
        let plan = FaultPlan::place(6, 2, Placement::LowIds); // 0, 1 faulty
        let mut st = FaultState::from_plan(&plan);
        assert_eq!(st.n_down(), 2);
        st.crash(&[3, 4]);
        assert_eq!(st.n_down(), 4);
        assert!(st.is_down(3));
        st.recover(&[0, 3]); // 0 is plan-permanent: stays down
        assert!(st.is_down(0), "plan faults can never recover");
        assert!(!st.is_down(3));
        assert_eq!(st.n_down(), 3);
        assert_eq!(st.n_active(), 3);
        assert_eq!(st.active_ids().collect::<Vec<_>>(), vec![2, 3, 5]);
    }

    #[test]
    fn crash_and_recover_are_idempotent() {
        let plan = FaultPlan::none(4);
        let mut st = FaultState::from_plan(&plan);
        st.crash(&[2, 2]);
        assert_eq!(st.n_down(), 1);
        st.recover(&[2, 2, 1]);
        assert_eq!(st.n_down(), 0);
    }

    #[test]
    fn reset_from_matches_fresh() {
        let a = FaultPlan::place(5, 1, Placement::HighIds);
        let b = FaultPlan::none(7);
        let mut st = FaultState::from_plan(&a);
        st.crash(&[0, 1]);
        st.reset_from(&b);
        assert_eq!(st, FaultState::from_plan(&b));
    }
}
