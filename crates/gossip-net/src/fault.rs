//! The worst-case *permanent* fault adversary.
//!
//! Following the paper (§1, §2): before round 0 an adversary that knows the
//! protocol marks each agent as *active* or *faulty*; afterwards it takes
//! no further action. Faulty agents are quiescent for the whole execution —
//! they never act, never answer pulls, and silently drop pushes. The
//! protocol only assumes the active set `A` has linear size, `|A| = Θ(n)`.
//!
//! Because the protocol treats agent ids symmetrically (ids are only used
//! as addresses and tie-breakers drawn after the fault choice), all
//! placements of a fixed number of faults are equivalent in distribution.
//! We still ship several placement strategies so experiment E6 can
//! *demonstrate* that equivalence rather than assume it.

use crate::bits::BitSet;
use crate::ids::AgentId;
use crate::rng::DetRng;

/// An immutable fault assignment fixed before round 0.
///
/// Stored word-packed ([`BitSet`], one `u64` per 64 agents): the flags
/// are consulted once per op on the hot path and cloned into every
/// [`crate::dynamics::FaultState`], so at `n = 10⁷` the packed form is
/// 1.25 MB against 10 MB of `Vec<bool>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    faulty: BitSet,
    n_faulty: usize,
}

/// Placement strategy for a given number of faulty agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fault the lowest-id agents `0..k`. Adversarially "targets" the ids
    /// that win ties in naive min-id protocols.
    LowIds,
    /// Fault the highest-id agents `n-k..n`.
    HighIds,
    /// Fault every `ceil(n/k)`-th agent (an evenly spread pattern).
    Strided,
    /// Fault a uniformly random `k`-subset (seeded).
    Random {
        /// Seed of the placement draw.
        seed: u64,
    },
}

impl FaultPlan {
    /// No faults: all `n` agents active.
    pub fn none(n: usize) -> Self {
        FaultPlan {
            faulty: BitSet::zeros(n),
            n_faulty: 0,
        }
    }

    /// Fault exactly `k` of `n` agents according to `placement`.
    ///
    /// Panics if `k >= n` (the paper requires `|A| = Θ(n)`; we insist on at
    /// least one active agent at the type level and leave the linear-size
    /// requirement to callers).
    pub fn place(n: usize, k: usize, placement: Placement) -> Self {
        assert!(k < n, "at least one agent must stay active (k={k}, n={n})");
        let mut faulty = BitSet::zeros(n);
        match placement {
            Placement::LowIds => {
                for i in 0..k {
                    faulty.set(i);
                }
            }
            Placement::HighIds => {
                for i in n - k..n {
                    faulty.set(i);
                }
            }
            Placement::Strided => {
                if let Some(stride) = n.checked_div(k) {
                    let stride = stride.max(1);
                    let mut placed = 0usize;
                    let mut i = 0usize;
                    // Walk with stride n/k, wrapping to unfilled slots.
                    while placed < k {
                        if !faulty.get(i % n) {
                            faulty.set(i % n);
                            placed += 1;
                        }
                        i += stride.max(1);
                        // Guard against cycles that revisit filled slots.
                        if i > 4 * n * (placed + 1) {
                            i += 1;
                        }
                    }
                }
            }
            Placement::Random { seed } => {
                let mut rng = DetRng::seeded(seed, 0xFA17);
                let mut ids: Vec<AgentId> = (0..n as AgentId).collect();
                rng.shuffle(&mut ids);
                for &id in ids.iter().take(k) {
                    faulty.set(id as usize);
                }
            }
        }
        FaultPlan { faulty, n_faulty: k }
    }

    /// Fault a `frac` fraction of agents (rounded down) with the given
    /// placement. `frac` is the paper's fault-tolerance parameter `α`.
    pub fn fraction(n: usize, frac: f64, placement: Placement) -> Self {
        assert!((0.0..1.0).contains(&frac), "α must be in [0, 1)");
        let k = ((n as f64) * frac).floor() as usize;
        Self::place(n, k.min(n - 1), placement)
    }

    /// Is agent `u` faulty?
    #[inline]
    pub fn is_faulty(&self, u: AgentId) -> bool {
        self.faulty.get(u as usize)
    }

    /// Total number of agents (active + faulty).
    #[inline]
    pub fn n(&self) -> usize {
        self.faulty.len()
    }

    /// Number of faulty agents.
    #[inline]
    pub fn n_faulty(&self) -> usize {
        self.n_faulty
    }

    /// Number of active agents `|A|`.
    #[inline]
    pub fn n_active(&self) -> usize {
        self.faulty.len() - self.n_faulty
    }

    /// Iterator over the active agent ids.
    pub fn active_ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        (0..self.faulty.len()).filter(|&i| !self.faulty.get(i)).map(|i| i as AgentId)
    }

    /// Borrow the packed per-agent fault flags.
    #[inline]
    pub fn flags(&self) -> &BitSet {
        &self.faulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_all_active() {
        let p = FaultPlan::none(10);
        assert_eq!(p.n_active(), 10);
        assert_eq!(p.n_faulty(), 0);
        assert!((0..10).all(|u| !p.is_faulty(u)));
    }

    #[test]
    fn low_ids_faults_prefix() {
        let p = FaultPlan::place(10, 3, Placement::LowIds);
        assert!(p.is_faulty(0) && p.is_faulty(1) && p.is_faulty(2));
        assert!(!p.is_faulty(3));
        assert_eq!(p.n_faulty(), 3);
    }

    #[test]
    fn high_ids_faults_suffix() {
        let p = FaultPlan::place(10, 3, Placement::HighIds);
        assert!(p.is_faulty(7) && p.is_faulty(8) && p.is_faulty(9));
        assert!(!p.is_faulty(6));
    }

    #[test]
    fn strided_places_exactly_k() {
        for k in [0, 1, 3, 5, 9] {
            let p = FaultPlan::place(10, k, Placement::Strided);
            assert_eq!(p.n_faulty(), k);
            assert_eq!(p.flags().count_ones(), k);
        }
    }

    #[test]
    fn random_places_exactly_k_and_is_seeded() {
        let a = FaultPlan::place(50, 20, Placement::Random { seed: 5 });
        let b = FaultPlan::place(50, 20, Placement::Random { seed: 5 });
        let c = FaultPlan::place(50, 20, Placement::Random { seed: 6 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.n_faulty(), 20);
        assert_eq!(a.flags().count_ones(), 20);
    }

    #[test]
    fn fraction_rounds_down() {
        let p = FaultPlan::fraction(10, 0.35, Placement::LowIds);
        assert_eq!(p.n_faulty(), 3);
        let p = FaultPlan::fraction(10, 0.0, Placement::LowIds);
        assert_eq!(p.n_faulty(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn cannot_fault_everyone() {
        let _ = FaultPlan::place(5, 5, Placement::LowIds);
    }

    #[test]
    fn active_ids_complements_faulty() {
        let p = FaultPlan::place(8, 4, Placement::Strided);
        let active: Vec<_> = p.active_ids().collect();
        assert_eq!(active.len(), 4);
        for u in active {
            assert!(!p.is_faulty(u));
        }
    }
}
