#![warn(missing_docs)]
//! # gossip-net — a synchronous GOSSIP-model network simulator
//!
//! This crate implements the communication substrate assumed by
//! *Rational Fair Consensus in the GOSSIP Model* (Clementi, Gualà, Proietti,
//! Scornavacca; IPDPS 2017): a complete network of `n` agents with unique
//! labels in `[n]`, evolving in synchronous rounds. In every round each
//! agent may *actively* perform **at most one** communication operation with
//! one neighbor:
//!
//! * **push** — send one message to a chosen neighbor, or
//! * **pull** — ask a chosen neighbor a query; the neighbor may reply with
//!   one message (or stay silent).
//!
//! A node may *passively* receive arbitrarily many messages per round, so the
//! number of active links per round is `O(n)`. Channels are *secure*: during
//! a communication over edge `{u, v}` both endpoints learn the authentic
//! label of their peer (agents cannot forge sender identities), and the
//! exchanged message is private. Both properties are enforced by
//! construction here: the simulator stamps every delivery with the true
//! sender id and never exposes a message to third parties.
//!
//! ## What the simulator enforces vs. what agents control
//!
//! The *model constraints* — one active operation per round, authenticated
//! peer labels, quiescence of faulty nodes — are enforced by [`Network`]
//! and cannot be violated even by adversarial [`Agent`] implementations.
//! Everything else — which neighbor to contact, what to send, whether to
//! answer a pull — is up to the agent, which is exactly the degree of
//! freedom rational deviating agents have in the paper.
//!
//! ## Determinism
//!
//! Every run is a pure function of the master seed: agents own
//! deterministic RNG streams derived via [`rng::derive_seed`], and the
//! round loop processes operations in agent-id order. The delivery
//! semantics within a round are (in order): all `act` calls, then all pull
//! replies are *computed* (from post-`act` state), then all pushes are
//! delivered, then all pull replies are delivered. In the honest protocol
//! pushes and pulls never share a phase, so this ordering is unobservable;
//! it merely pins down a deterministic semantics for adversarial mixtures.
//!
//! ## Beyond the paper
//!
//! Two extensions requested by the paper's Conclusions are built in:
//! arbitrary [`topology::Topology`]s (Erdős–Rényi, random regular, ring,
//! …) instead of only the complete graph, and an **asynchronous
//! (sequential) GOSSIP** scheduler ([`Network::run_async`]) where a single
//! uniformly-random agent wakes per tick.
//!
//! ## Quick example
//!
//! ```
//! use gossip_net::prelude::*;
//!
//! // A toy message type: a single number, 64 bits on the wire.
//! #[derive(Clone, Debug, PartialEq)]
//! struct Num(u64);
//! impl MsgSize for Num {
//!     fn size_bits(&self, _env: &SizeEnv) -> u64 { 64 }
//! }
//!
//! // Agents that push their id to a random neighbor every round.
//! struct Pusher { id: AgentId, rng: DetRng, seen: Vec<u64> }
//! impl Agent<Num> for Pusher {
//!     fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Num>> {
//!         let to = ctx.topology.sample_peer(self.id, &mut self.rng);
//!         Some(Op::push(to, Num(self.id as u64)))
//!     }
//!     fn on_push(&mut self, _from: AgentId, msg: &Num, _ctx: &RoundCtx) {
//!         self.seen.push(msg.0);
//!     }
//! }
//!
//! let n = 16;
//! let mut net = Network::new(
//!     Topology::complete(n),
//!     SizeEnv::for_n(n),
//!     (0..n as AgentId)
//!         .map(|id| Box::new(Pusher { id, rng: DetRng::seeded(42, id as u64), seen: vec![] }) as Box<dyn Agent<Num>>)
//!         .collect(),
//!     FaultPlan::none(n),
//! );
//! net.run(10);
//! assert_eq!(net.metrics().messages_sent, 160);
//! ```

pub mod agent;
pub mod bits;
pub mod dynamics;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod network;
pub mod oplog;
pub mod pool;
pub mod rng;
pub mod size;
pub mod topology;

pub use agent::{Agent, Op, RoundCtx};
pub use bits::BitSet;
pub use dynamics::{FaultState, LossSchedule, PartitionCut, ScenarioEvent, ScenarioScript};
pub use fault::FaultPlan;
pub use ids::{AgentId, ColorId};
pub use metrics::Metrics;
pub use network::staged::MIN_AGENTS_PER_SHARD;
pub use network::{Network, NetworkConfig, StageTimes};
pub use oplog::{OpEvent, OpKind, OpLog};
pub use pool::ScopedPool;
pub use rng::RngDiscipline;
pub use size::{MsgSize, SizeEnv};
pub use topology::Topology;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::agent::{Agent, Op, RoundCtx};
    pub use crate::dynamics::{LossSchedule, PartitionCut, ScenarioEvent, ScenarioScript};
    pub use crate::fault::FaultPlan;
    pub use crate::ids::{AgentId, ColorId};
    pub use crate::network::{Network, NetworkConfig};
    pub use crate::rng::RngDiscipline;
    pub use crate::rng::DetRng;
    pub use crate::size::{MsgSize, SizeEnv};
    pub use crate::topology::Topology;
}
