//! The agent interface: what a (possibly selfish) node may do each round.
//!
//! An [`Agent`] is a local algorithm `σ_u` in the paper's sense: an
//! adaptive rule that, given everything the agent has seen so far, decides
//! the next action. Honest agents implement the protocol `P`; rational
//! deviators implement anything else expressible against this same
//! interface. The interface is intentionally *exactly* as powerful as the
//! GOSSIP model allows — one active push or pull per round, arbitrary
//! message content, optional silence — so the strategy space of an
//! implementation coincides with the strategy space quantified over in
//! Theorem 7.

use crate::ids::AgentId;
use crate::topology::Topology;

/// The single active operation an agent may perform in one round.
#[derive(Debug, Clone, PartialEq)]
pub enum Op<M> {
    /// Send `msg` to `to`. Delivery is guaranteed within the round if the
    /// edge exists; faulty receivers silently drop it.
    Push {
        /// The receiver.
        to: AgentId,
        /// The message.
        msg: M,
    },
    /// Ask `from` the question `query`; `from` may answer with one message
    /// or stay silent. The reply (or its absence) is delivered via
    /// [`Agent::on_reply`] in the same round.
    Pull {
        /// The agent being pulled.
        from: AgentId,
        /// The query message.
        query: M,
    },
}

impl<M> Op<M> {
    /// Convenience constructor for a push.
    pub fn push(to: AgentId, msg: M) -> Self {
        Op::Push { to, msg }
    }

    /// Convenience constructor for a pull.
    pub fn pull(from: AgentId, query: M) -> Self {
        Op::Pull { from, query }
    }

    /// The peer this operation addresses.
    pub fn peer(&self) -> AgentId {
        match self {
            Op::Push { to, .. } => *to,
            Op::Pull { from, .. } => *from,
        }
    }
}

/// Per-round context handed to every agent callback.
///
/// Carries only *public* knowledge: the current round number and the
/// topology (every agent knows `n` and how to address every other agent —
/// paper §2). Private state (color, RNG, collected votes) lives inside the
/// agent itself.
#[derive(Debug, Clone, Copy)]
pub struct RoundCtx<'a> {
    /// Current round, starting at 0.
    pub round: usize,
    /// The network topology (agents sample peers through this).
    pub topology: &'a Topology,
}

impl<'a> RoundCtx<'a> {
    /// Number of agents in the network.
    #[inline]
    pub fn n(&self) -> usize {
        self.topology.n()
    }
}

/// A local algorithm run by one network node.
///
/// All methods have no-op defaults except [`Agent::act`]; a passive agent
/// that never communicates is just `fn act(..) -> None`.
///
/// Deliveries are **by reference**: the engine retains ownership of the
/// in-flight operation and hands each receiver a `&M`, so a delivery
/// costs no clone — an agent clones only the parts it actually keeps
/// (protocol messages make that cheap via `Arc` payloads). The reply to
/// a pull is the one owned message an agent produces per delivery, and
/// it is *moved* to the puller via [`Agent::on_reply`].
///
/// Implementations must be deterministic functions of (constructor
/// arguments, observed messages, own RNG stream) — the simulator provides
/// no other entropy source, which is what makes whole runs replayable.
pub trait Agent<M> {
    /// Called once per round (in agent-id order). Return the at-most-one
    /// active operation for this round, or `None` to stay passive.
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<M>>;

    /// Multi-op variant of [`Agent::act`], used by the synchronous
    /// engines. A plain agent keeps the paper's one-op-per-round
    /// contract via the default (it forwards to `act`); a *multiplexer*
    /// agent hosting several protocol instances on one network node
    /// (see rfc-core's instance plane) overrides this to emit one op per
    /// hosted instance per round — each instance individually still
    /// plays by GOSSIP rules, the node aggregates their traffic.
    ///
    /// Ops are appended to `out` (which arrives empty) and are treated
    /// by the engine exactly as if consecutive ids had emitted them:
    /// same-sender ops keep their emission order through every delivery
    /// stage. `out` is engine-owned scratch; implementations must only
    /// push into it.
    fn act_multi(&mut self, ctx: &RoundCtx, out: &mut Vec<Op<M>>) {
        if let Some(op) = self.act(ctx) {
            out.push(op);
        }
    }

    /// Another agent pulled us: `from` is the authenticated peer label,
    /// `query` its question. Return `Some(reply)` to answer or `None` to
    /// stay silent (the puller observes silence, exactly like pulling a
    /// faulty node — the "pretend to be faulty" deviation of §1).
    fn on_pull(&mut self, from: AgentId, query: &M, ctx: &RoundCtx) -> Option<M> {
        let _ = (from, query, ctx);
        None
    }

    /// A pushed message arrived (authenticated sender `from`). The
    /// message is borrowed from the sender's op; clone what you keep.
    fn on_push(&mut self, from: AgentId, msg: &M, ctx: &RoundCtx) {
        let _ = (from, msg, ctx);
    }

    /// The reply to *our* pull this round: `Some(msg)` if the peer
    /// answered, `None` if it was faulty or chose silence.
    fn on_reply(&mut self, from: AgentId, reply: Option<M>, ctx: &RoundCtx) {
        let _ = (from, reply, ctx);
    }

    /// Called once after the final round; agents finish local computation
    /// here (e.g. the protocol's Verification phase).
    fn finalize(&mut self, ctx: &RoundCtx) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Unit;

    struct Passive;
    impl Agent<Unit> for Passive {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Unit>> {
            None
        }
    }

    #[test]
    fn op_peer_extracts_target() {
        let p: Op<Unit> = Op::push(3, Unit);
        assert_eq!(p.peer(), 3);
        let q: Op<Unit> = Op::pull(9, Unit);
        assert_eq!(q.peer(), 9);
    }

    #[test]
    fn default_handlers_are_silent() {
        let topo = Topology::complete(4);
        let ctx = RoundCtx {
            round: 0,
            topology: &topo,
        };
        let mut a = Passive;
        assert!(a.act(&ctx).is_none());
        assert!(a.on_pull(1, &Unit, &ctx).is_none());
        a.on_push(1, &Unit, &ctx);
        a.on_reply(1, None, &ctx);
        a.finalize(&ctx);
    }

    #[test]
    fn ctx_exposes_n() {
        let topo = Topology::complete(7);
        let ctx = RoundCtx {
            round: 5,
            topology: &topo,
        };
        assert_eq!(ctx.n(), 7);
        assert_eq!(ctx.round, 5);
    }
}
