//! The staged round engine: plan → exchange → apply, sharded across
//! worker threads **inside** one trial.
//!
//! [`Network::step`] walks agents one by one; trial-level parallelism
//! (`experiments::parallel`) therefore tops out where one trial stops
//! fitting the experiment — the million-agent regime has no per-trial
//! parallelism to offer it. This module refactors the round into three
//! explicit stages:
//!
//! 1. **plan** — every active agent is asked for its at-most-one [`Op`],
//!    *in parallel over contiguous agent shards*; per-shard intent
//!    buffers are concatenated in shard order, which reproduces exactly
//!    the id-order op list the monolithic engine builds (an agent's
//!    `act` touches only its own state and private RNG, so acts
//!    commute).
//! 2. **exchange** — the flat op list is turned into a CSR-style
//!    *delivery ledger* grouped by receiver (one ledger for pushes by
//!    receiver, one for pull queries by pullee, one flat list of pulls
//!    by puller), and every dynamics mask — topology edge, partition
//!    cut, crash/fault state, loss draw — is applied once per message,
//!    at send time, exactly as the metering contract demands. Under
//!    [`RngDiscipline::Sequential`] this stage is one serial pass;
//!    under [`RngDiscipline::PerAgent`] with several workers the
//!    ledgers are built by a sharded counting-sort pipeline
//!    (`build_ledgers_par`: per-shard histograms → offset prefix
//!    sum → parallel scatter → sharded mask resolution) that produces
//!    bit-identical ledgers, verdict bitsets, and meters.
//! 3. **apply** — deliveries run *in parallel over receiver shards*:
//!    first every pull query reaches its pullee's `on_pull`
//!    ([`RngDiscipline::PerAgent`] only — see below), then every
//!    delivered push reaches `on_push` and every reply reaches its
//!    puller's `on_reply`. A receiver's deliveries stay in ledger
//!    (= sender-id) order, and handlers mutate only their own agent, so
//!    the interleaving across shards is unobservable.
//!
//! ## Determinism: bit-identical for any thread count
//!
//! Nothing any stage computes depends on the shard count: plan buffers
//! scatter into the flat op list at offsets prefix-summed in shard
//! order (= id order), ledger scatter positions come from a global
//! counting sort whether built serially or sharded, send-time meters
//! and per-shard reply meters are exact [`Tally`]s merged in shard
//! order (sums and maxes commute), op-log events scatter into a
//! pre-sized buffer at positions prefix-summed from per-shard event
//! counts (reproducing the sequential all-pulls-then-all-pushes round
//! shape exactly), and every loss draw comes from a stream whose
//! identity is independent of sharding. No per-round pass over the op
//! list remains serial. `threads` is a pure throughput knob — pinned by
//! the thread-invariance suite (`tests/sharded_engine.rs`) and the
//! sharded golden rows — which is also what makes the per-phase shard
//! autotuner ([`Network::run_staged_autotuned`]) digest-invariant by
//! construction: it only ever moves that knob.
//!
//! ## The two RNG disciplines
//!
//! * [`RngDiscipline::Sequential`] (default): the exchange stage replays
//!   the monolithic engine literally — pull queries are answered inline,
//!   in puller order, drawing the query/reply loss coins from the single
//!   sequential loss stream in the legacy interleaving. Plan and apply
//!   still shard, and the result — metrics, op log, every agent's state —
//!   is **bit-identical to [`Network::step`]** (pinned by
//!   `staged_properties.rs`). The cost is that `on_pull` work stays
//!   serial, which caps speedup in the pull-heavy Commitment/Find-Min
//!   phases.
//! * [`RngDiscipline::PerAgent`]: every loss draw for a message agent
//!   `v` receives in round `r` comes from the stream
//!   [`loss_streams::per_agent`]`(loss_seed, FAMILY, r, v)` — families
//!   [`loss_streams::QUERY`], [`loss_streams::PUSH`],
//!   [`loss_streams::REPLY`] keep the three legs independent — drawn in
//!   ledger order. Draws no longer thread through a shared stream, so
//!   the *reply* coin can be pre-drawn at exchange time (one draw per
//!   pull, consumed whether or not the pullee answers) and `on_pull`
//!   moves into the parallel apply stage. This discipline produces
//!   different (equally valid) loss patterns than `Sequential`, so it
//!   has its own golden rows; with `p = 0` it differs from `Sequential`
//!   only in handler interleaving, which is unobservable.
//!
//! ## Metering contract addendum (sharded apply + sharded send-time)
//!
//! The send-time metering contract of [`crate::network`] is unchanged
//! in *meaning*: pushes and pull queries are metered at send time, in
//! op order, before any mask. Its *implementation* is now sharded too:
//! each exchange shard folds its contiguous op range into an exact
//! per-shard [`Tally`] and the tallies are merged into [`Metrics`] in
//! shard order ([`Metrics::record_bulk`]). A [`Tally`] is three sums
//! and a max, all of which commute and associate, so the merged meters
//! equal the sequential op-order pass bit for bit (pinned by a proptest
//! in `staged_properties.rs`). Pull replies are likewise metered where
//! they are *produced* — inside the parallel pull-apply shards — into
//! per-shard [`Tally`]s merged in shard order. A produced reply whose
//! pre-drawn transit coin came up "lost" is metered and counted
//! undelivered, like every other lost message.

use super::*;
use crate::bits::{atomic_set, BitSet};
use crate::metrics::Tally;
use crate::oplog::OpEvent;
use crate::rng::loss_streams;

/// Tuned default for [`NetworkConfig::shard_floor`]: below ~2048 agents
/// per shard the per-round barrier/merge overhead of an extra shard
/// outweighs its share of the work (the "sharding cliff" measured by
/// `rfc-bench`'s staged rows), so runners clamp the shard count to keep
/// at least this many agents per shard unless explicitly overridden.
pub const MIN_AGENTS_PER_SHARD: usize = 2048;

/// Reusable scratch for the staged engine: the delivery ledgers, reply
/// slots, delivery-verdict bitsets, and per-shard plan/count buffers.
/// All buffers are retained across rounds (and across
/// [`Network::reset_into`] trials, cleared) — the steady-state staged
/// round allocates only when a high-water mark grows.
///
/// Delivery verdicts live in [`BitSet`]s indexed by **op index** rather
/// than as fields of the ledger entries. That keeps the entries at two
/// words (struct-of-arrays: the cold verdict bits stop riding along on
/// every entry copy), makes the sequential path's regroup permutation a
/// no-op for the bits, and — because an op index names its bit globally
/// — lets the parallel exchange shards resolve verdicts straight into
/// the shared sets with relaxed atomic ORs (each bit written by exactly
/// one shard; see [`crate::bits`]).
#[derive(Debug)]
pub struct StagedScratch<M> {
    /// Per-shard plan output, concatenated into `Network::ops` in shard
    /// order after the plan barrier.
    plan_bufs: Vec<Vec<(AgentId, Op<M>)>>,
    /// Per-shard `act_multi` scratch (one agent's ops before they are
    /// id-tagged into the shard's plan buffer).
    plan_tmp: Vec<Vec<Op<M>>>,
    /// Counting-sort scratch (`n + 1` counters; query side).
    counts: Vec<u32>,
    /// Counting-sort scratch (`n + 1` counters; push side).
    counts2: Vec<u32>,
    /// Push ledger offsets by receiver (`n + 1`).
    push_off: Vec<u32>,
    /// Push ledger entries, grouped by receiver, op order within a
    /// receiver.
    push_entries: Vec<PushEntry>,
    /// Query ledger offsets by pullee (`n + 1`; `PerAgent` only).
    query_off: Vec<u32>,
    /// Query ledger entries, grouped by pullee (`PerAgent` only).
    query_entries: Vec<QueryEntry>,
    /// Scatter target for the sequential path's push regroup (swapped
    /// with `push_entries` after grouping; retained across rounds).
    push_scratch: Vec<PushEntry>,
    /// All pulls of the round, in op (= puller-id) order.
    pulls: Vec<PullRec>,
    /// Reply slots aligned with `query_entries`, written by the
    /// pull-apply shards (`PerAgent` only).
    reply_out: Vec<Option<M>>,
    /// Replies to deliver, aligned with `pulls`.
    reply_inbox: Vec<Option<M>>,
    /// Push delivery verdicts, by op index.
    push_delivered: BitSet,
    /// Query delivery verdicts, by op index (`PerAgent` only).
    query_delivered: BitSet,
    /// Pre-drawn reply transit coins, by op index of the pull
    /// (`PerAgent` only).
    reply_lost: BitSet,
    /// Per-shard query histograms for the parallel ledger build
    /// (`threads × n` cursors; turned into absolute scatter cursors by
    /// the offset merge).
    shard_qcounts: Vec<Vec<u32>>,
    /// Per-shard push histograms (same life cycle as `shard_qcounts`).
    shard_pcounts: Vec<Vec<u32>>,
    /// Per-shard pull totals (sizes the contiguous `pulls` segments).
    shard_pulls: Vec<u32>,
    /// Per-shard undelivered counts from the parallel mask resolution,
    /// merged into [`Metrics`] after the barrier.
    shard_undelivered: Vec<u64>,
    /// Per-shard reply meters for `apply_pulls` (kept here so the
    /// steady-state round does not allocate the merge buffer).
    shard_meters: Vec<(Tally, u64)>,
    /// Per-shard send-time meters for the exchange stage's sharded
    /// metering pass (merged in shard order).
    meter_tallies: Vec<Tally>,
}

/// One push delivery: `from` pushed op `op`. The mask verdict lives in
/// [`StagedScratch::push_delivered`] at bit `op`.
#[derive(Debug, Clone, Copy)]
struct PushEntry {
    from: AgentId,
    op: u32,
}

/// One pull-query delivery to a pullee (`PerAgent` only). The `on_pull`
/// gate and the pre-drawn reply transit coin live in
/// [`StagedScratch::query_delivered`] / [`StagedScratch::reply_lost`]
/// at bit `op`.
#[derive(Debug, Clone, Copy)]
struct QueryEntry {
    puller: AgentId,
    op: u32,
}

/// One pull, in op order: `qpos` is the index of its query entry in the
/// query ledger (`u32::MAX` under `Sequential`, which answers inline).
#[derive(Debug, Clone, Copy)]
struct PullRec {
    puller: AgentId,
    pullee: AgentId,
    qpos: u32,
}

impl<M> StagedScratch<M> {
    /// Empty scratch; every buffer allocates lazily on first staged
    /// round.
    pub fn new() -> Self {
        StagedScratch {
            plan_bufs: Vec::new(),
            plan_tmp: Vec::new(),
            counts: Vec::new(),
            counts2: Vec::new(),
            push_off: Vec::new(),
            push_entries: Vec::new(),
            push_scratch: Vec::new(),
            query_off: Vec::new(),
            query_entries: Vec::new(),
            pulls: Vec::new(),
            reply_out: Vec::new(),
            reply_inbox: Vec::new(),
            push_delivered: BitSet::new(),
            query_delivered: BitSet::new(),
            reply_lost: BitSet::new(),
            shard_qcounts: Vec::new(),
            shard_pcounts: Vec::new(),
            shard_pulls: Vec::new(),
            shard_undelivered: Vec::new(),
            shard_meters: Vec::new(),
            meter_tallies: Vec::new(),
        }
    }

    /// Forget all round state, retaining allocations (arena reuse).
    pub fn clear(&mut self) {
        for buf in &mut self.plan_bufs {
            buf.clear();
        }
        for tmp in &mut self.plan_tmp {
            tmp.clear();
        }
        self.counts.clear();
        self.counts2.clear();
        self.push_off.clear();
        self.push_entries.clear();
        self.push_scratch.clear();
        self.query_off.clear();
        self.query_entries.clear();
        self.pulls.clear();
        self.reply_out.clear();
        self.reply_inbox.clear();
        self.push_delivered.reset(0);
        self.query_delivered.reset(0);
        self.reply_lost.reset(0);
        for qc in &mut self.shard_qcounts {
            qc.clear();
        }
        for pc in &mut self.shard_pcounts {
            pc.clear();
        }
        self.shard_pulls.clear();
        self.shard_undelivered.clear();
        self.shard_meters.clear();
        self.meter_tallies.clear();
    }
}

/// A raw shared-mutable scatter target for the parallel counting-sort
/// ledger build. Each shard writes through absolute cursors derived
/// from the offset merge; the cursor ranges of distinct `(shard,
/// receiver)` pairs are pairwise disjoint by construction, so no index
/// is ever written twice and no read happens until the scope joins.
struct SharedWriter<T>(*mut T);
// SAFETY: the writer only ever *writes*, at indices the counting sort
// proves disjoint across threads; T: Send carries the values across.
unsafe impl<T: Send> Send for SharedWriter<T> {}
unsafe impl<T: Send> Sync for SharedWriter<T> {}
// Manual impls: a raw pointer is always copyable — the derive would
// needlessly bound `T: Copy`, and the plan scatter moves non-`Copy`
// ops through this.
impl<T> Clone for SharedWriter<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedWriter<T> {}

impl<T> SharedWriter<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedWriter(slice.as_mut_ptr())
    }

    /// Write `val` at `idx`.
    ///
    /// SAFETY: `idx` must be in bounds of the source slice and no other
    /// thread may touch `idx` during the scope.
    unsafe fn write(&self, idx: usize, val: T) {
        unsafe { self.0.add(idx).write(val) }
    }

    /// Move `len` values from `src` into `idx..idx + len`.
    ///
    /// SAFETY: the range must be in bounds and untouched by any other
    /// thread during the scope, `src..src + len` must not overlap it,
    /// and the caller must forget the source values (this is a move).
    unsafe fn write_block(&self, idx: usize, src: *const T, len: usize) {
        unsafe { std::ptr::copy_nonoverlapping(src, self.0.add(idx), len) }
    }
}

impl<M> Default for StagedScratch<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: MsgSize + Send + Sync, A: Agent<M> + Send> Network<M, A> {
    /// Worker threads the staged stages shard over: the configured
    /// count, `0` meaning available parallelism, capped by `n`, then
    /// clamped by [`NetworkConfig::shard_floor`] so every shard keeps at
    /// least `shard_floor` agents (the per-agent discipline is
    /// thread-invariant, so the clamp is a pure throughput knob).
    fn effective_threads(&self) -> usize {
        let n = self.agents.len();
        let t = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.config.threads
        };
        let t = t.clamp(1, n.max(1));
        match self.config.shard_floor {
            0 => t,
            floor => t.min((n / floor).max(1)),
        }
    }

    /// Execute one staged round (see the module docs). Output is
    /// bit-identical for every `NetworkConfig::threads` value; under
    /// [`RngDiscipline::Sequential`] it is additionally bit-identical to
    /// the monolithic [`Network::step`].
    pub fn step_staged(&mut self) {
        let round = self.round;
        let timed = self.config.time_stages;
        let t0 = timed.then(std::time::Instant::now);
        self.begin_round(round);
        let threads = self.effective_threads();
        self.plan(round, threads);
        if let Some(t) = t0 {
            self.stage_times.plan_us += t.elapsed().as_micros() as u64;
        }
        self.metrics.record_round(self.ops.len() as u64);
        let t1 = timed.then(std::time::Instant::now);
        match self.config.rng_discipline {
            RngDiscipline::Sequential => self.exchange_sequential(round),
            RngDiscipline::PerAgent => {
                self.exchange_per_agent(round, threads);
                self.apply_pulls(round, threads);
                let tl = timed.then(std::time::Instant::now);
                self.log_round_ops(round, threads);
                if let Some(t) = tl {
                    self.stage_times.log_us += t.elapsed().as_micros() as u64;
                }
            }
        }
        if let Some(t) = t1 {
            self.stage_times.exchange_us += t.elapsed().as_micros() as u64;
        }
        let t2 = timed.then(std::time::Instant::now);
        self.apply_deliveries(round, threads);
        if let Some(t) = t2 {
            self.stage_times.apply_us += t.elapsed().as_micros() as u64;
        }
        self.round += 1;
    }

    /// Run `rounds` staged rounds (without finalizing).
    pub fn run_staged(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step_staged();
        }
    }

    /// Run `rounds` staged rounds, autotuning the shard count for this
    /// phase: each candidate is probed for a few rounds, wall-clocked
    /// per round, and the fastest candidate runs the remainder. Returns
    /// the chosen count.
    ///
    /// Digest-invariant by construction: the only knob this moves is
    /// `threads`, which the thread-invariance suite pins as a pure
    /// throughput knob — so a probe round *is* a real round, and none
    /// is wasted or replayed. Candidates are still clamped per round by
    /// [`NetworkConfig::shard_floor`] via `effective_threads`, so the
    /// tuner can only pick within the floor's envelope. Pull-heavy
    /// phases (Find-Min, Commitment — `on_pull` work dominates) and
    /// push-heavy ones (Voting) hit their sharding cliffs at different
    /// counts, which is why the choice is per phase, not per run.
    pub fn run_staged_autotuned(&mut self, rounds: usize, candidates: &[usize]) -> usize {
        let mut remaining = rounds;
        let mut best = self.config.threads.max(1);
        if candidates.len() > 1 {
            // Probe depth: enough rounds to damp per-round noise, never
            // so many that probing eats the phase budget.
            let probe = (rounds / (candidates.len() * 4)).clamp(1, 8);
            let mut best_us = u64::MAX;
            for &cand in candidates {
                if remaining == 0 {
                    break;
                }
                let take = probe.min(remaining);
                remaining -= take;
                self.config.threads = cand;
                let t = std::time::Instant::now();
                self.run_staged(take);
                let per_round = t.elapsed().as_micros() as u64 / take as u64;
                if per_round < best_us {
                    best_us = per_round;
                    best = cand;
                }
            }
        } else if let Some(&only) = candidates.first() {
            best = only;
        }
        self.config.threads = best;
        self.run_staged(remaining);
        best
    }

    // ------------------------------------------------------------------
    // Stage 1: plan
    // ------------------------------------------------------------------

    /// Collect every active agent's ops into `self.ops`, sharded. The
    /// per-shard buffers concatenate in shard order, i.e. id order —
    /// exactly the monolithic act loop's output. Multi-op agents
    /// (overridden [`Agent::act_multi`]) keep their emission order
    /// within their id slot.
    fn plan(&mut self, round: usize, threads: usize) {
        let Network { pool, agents, staged, topology, fault_state, ops, multi_buf, .. } = self;
        ops.clear();
        let n = agents.len();
        let topology: &Topology = topology;
        let fault_state: &FaultState = fault_state;
        if threads <= 1 {
            let ctx = RoundCtx { round, topology };
            for (id, agent) in agents.iter_mut().enumerate() {
                if fault_state.is_down(id as AgentId) {
                    continue; // quiescent: never acts
                }
                agent.act_multi(&ctx, multi_buf);
                for op in multi_buf.drain(..) {
                    ops.push((id as AgentId, op));
                }
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let bufs = &mut staged.plan_bufs;
        let tmps = &mut staged.plan_tmp;
        if bufs.len() < threads {
            bufs.resize_with(threads, Vec::new);
        }
        if tmps.len() < threads {
            tmps.resize_with(threads, Vec::new);
        }
        let pool = ensure_pool(pool, threads);
        pool.scope(|scope| {
            let mut rest: &mut [A] = agents;
            let mut base = 0usize;
            for (buf, tmp) in bufs[..threads].iter_mut().zip(tmps[..threads].iter_mut()) {
                let take = chunk.min(rest.len());
                if take == 0 {
                    break;
                }
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let lo = base;
                base += take;
                scope.spawn(move || {
                    buf.clear();
                    let ctx = RoundCtx { round, topology };
                    for (off, agent) in head.iter_mut().enumerate() {
                        let id = (lo + off) as AgentId;
                        if fault_state.is_down(id) {
                            continue;
                        }
                        agent.act_multi(&ctx, tmp);
                        for op in tmp.drain(..) {
                            buf.push((id, op));
                        }
                    }
                });
            }
        });
        // Concatenate in shard order — as a parallel scatter: a length
        // prefix sum over the shard buffers gives each shard its
        // destination offset in the pre-sized `ops` Vec, so the serial
        // shard-order `append` loop this replaces becomes one more
        // disjoint-range parallel write. The result is the identical
        // id-ordered op list.
        let total: usize = staged.plan_bufs[..threads].iter().map(Vec::len).sum();
        ops.reserve(total);
        let dst = SharedWriter(ops.as_mut_ptr());
        pool.scope(|scope| {
            let mut base = 0usize;
            for buf in staged.plan_bufs[..threads].iter_mut() {
                let lo = base;
                base += buf.len();
                if buf.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    // SAFETY: `lo..lo + buf.len()` is this shard's
                    // disjoint slot of the reserved tail, and the
                    // block write + `set_len(0)` pair *moves* the
                    // elements out of `buf` — nothing is dropped or
                    // duplicated.
                    unsafe {
                        dst.write_block(lo, buf.as_ptr(), buf.len());
                        buf.set_len(0);
                    }
                });
            }
        });
        // SAFETY: every slot in `0..total` was initialized by exactly
        // one shard above.
        unsafe { ops.set_len(total) };
        debug_assert!(
            ops.windows(2).all(|w| w[0].0 <= w[1].0),
            "plan merge must produce id-ordered ops"
        );
    }

    // ------------------------------------------------------------------
    // Stage 2: exchange
    // ------------------------------------------------------------------

    /// Sequential-discipline exchange: a literal replay of the
    /// monolithic engine's stages 2–3. Pulls are answered inline via
    /// [`Network::answer_pull`] (same metering, op log, and loss-stream
    /// interleaving, draw for draw); pushes are metered, logged, and
    /// gated exactly like [`Network::deliver_push`] — only the handler
    /// invocation is deferred to the apply stage.
    fn exchange_sequential(&mut self, round: usize) {
        self.staged.pulls.clear();
        self.staged.reply_inbox.clear();
        let ops = std::mem::take(&mut self.ops);
        for (from, op) in &ops {
            if let Op::Pull { from: target, query } = op {
                let reply = self.answer_pull(*from, *target, query, round);
                self.staged.pulls.push(PullRec {
                    puller: *from,
                    pullee: *target,
                    qpos: u32::MAX,
                });
                self.staged.reply_inbox.push(reply);
            }
        }
        // Pushes: metering contract first (send time, before any mask),
        // then the exact legacy gate — note the short-circuit: the loss
        // coin is drawn only for reachable, live receivers, precisely as
        // `deliver_push` does. Verdicts go into the op-indexed bitset,
        // which the regroup below permutes around for free.
        self.staged.push_entries.clear();
        self.staged.push_entries.reserve(ops.len());
        self.staged.push_delivered.reset(ops.len());
        for (i, (from, op)) in ops.iter().enumerate() {
            if let Op::Push { to, msg } = op {
                self.metrics.record_message(msg.size_bits(&self.env));
                if self.config.record_ops {
                    self.oplog.record(round as u32, OpKind::Push, *from, *to);
                }
                let delivered = self.reachable(*from, *to)
                    && !self.fault_state.is_down(*to)
                    && !self.dropped();
                if delivered {
                    self.staged.push_delivered.set(i);
                } else {
                    self.metrics.record_undelivered();
                }
                self.staged.push_entries.push(PushEntry { from: *from, op: i as u32 });
            }
        }
        self.ops = ops;
        self.group_pushes_by_receiver();
    }

    /// Per-agent-discipline exchange: meter everything (sharded exact
    /// tallies, merged in shard order — see the metering addendum), then
    /// build both delivery ledgers — in one pass on a single worker, or
    /// via the sharded counting-sort pipeline for several. No agent code
    /// runs here, so the whole apply stage can shard afterwards.
    ///
    /// Both builders produce bit-identical ledgers, verdict bitsets, and
    /// meters: scatter positions come from the same global counting
    /// sort, and every loss stream is keyed by `(seed, family, round,
    /// agent)` — never by shard.
    fn exchange_per_agent(&mut self, round: usize, threads: usize) {
        let timed = self.config.time_stages;
        let ops = std::mem::take(&mut self.ops);
        let t0 = timed.then(std::time::Instant::now);
        self.meter_ops(&ops, threads);
        if let Some(t) = t0 {
            self.stage_times.meter_us += t.elapsed().as_micros() as u64;
        }
        if threads <= 1 {
            self.build_ledgers_seq(&ops, round);
        } else {
            self.build_ledgers_par(&ops, round, threads);
        }
        self.ops = ops;
    }

    /// Send-time metering over the round's op list (before any mask).
    /// Instead of a serial op-order `record_message` walk, each shard
    /// folds its contiguous op range into an exact [`Tally`] and the
    /// tallies merge into [`Metrics`] in shard order — sums and maxes
    /// commute, so the result equals the sequential pass bit for bit.
    /// Even single-threaded this is a win: one phase lookup per round
    /// instead of one per message.
    fn meter_ops(&mut self, ops: &[(AgentId, Op<M>)], threads: usize) {
        let meter_queries = self.config.meter_queries;
        let n_ops = ops.len();
        let Network { pool, staged: st, metrics, env, .. } = self;
        let env: &SizeEnv = env;
        if threads <= 1 || n_ops < threads {
            let mut tally = Tally::default();
            tally_ops(ops, meter_queries, env, &mut tally);
            metrics.record_bulk(&tally, 0);
            return;
        }
        let chunk = n_ops.div_ceil(threads).max(1);
        st.meter_tallies.clear();
        st.meter_tallies.resize_with(threads, Tally::default);
        let pool = ensure_pool(pool, threads);
        pool.scope(|scope| {
            for (s, tally) in st.meter_tallies.iter_mut().enumerate() {
                let lo = s * chunk;
                let hi = (lo + chunk).min(n_ops);
                if lo >= hi {
                    continue;
                }
                let ops_range = &ops[lo..hi];
                scope.spawn(move || tally_ops(ops_range, meter_queries, env, tally));
            }
        });
        for tally in st.meter_tallies.drain(..) {
            metrics.record_bulk(&tally, 0);
        }
    }

    /// Single-worker ledger build: one histogram pass over the ops, one
    /// scatter pass writing both CSR ledgers directly in receiver-grouped
    /// form (plus the pull list and the pre-drawn reply coins), then
    /// per-receiver mask/loss resolution in ledger order. No regroup
    /// pass, no per-entry `Vec` pushes: both entry arrays are sized once
    /// and block-written through counting-sort cursors.
    fn build_ledgers_seq(&mut self, ops: &[(AgentId, Op<M>)], round: usize) {
        let n = self.agents.len();
        let p = self.current_p;
        let loss_seed = self.config.loss_seed;
        let meter_queries = self.config.meter_queries;
        let timed = self.config.time_stages;
        let Network { staged: st, fault_state, topology, partition, metrics, stage_times, .. } =
            self;
        let t_build = timed.then(std::time::Instant::now);

        // Histograms (`+ 1` slots so offsets fall out of a prefix sum).
        st.counts.clear();
        st.counts.resize(n + 1, 0);
        st.counts2.clear();
        st.counts2.resize(n + 1, 0);
        for (_, op) in ops {
            match op {
                Op::Pull { from: target, .. } => st.counts[*target as usize + 1] += 1,
                Op::Push { to, .. } => st.counts2[*to as usize + 1] += 1,
            }
        }
        st.query_off.clear();
        st.query_off.reserve(n + 1);
        let mut acc = 0u32;
        for &c in &st.counts {
            acc += c;
            st.query_off.push(acc);
        }
        let total_queries = acc as usize;
        st.push_off.clear();
        st.push_off.reserve(n + 1);
        let mut acc = 0u32;
        for &c in &st.counts2 {
            acc += c;
            st.push_off.push(acc);
        }
        let total_pushes = acc as usize;

        st.query_entries.clear();
        st.query_entries.resize(total_queries, QueryEntry { puller: 0, op: 0 });
        st.push_entries.clear();
        st.push_entries.resize(total_pushes, PushEntry { from: 0, op: 0 });
        st.pulls.clear();
        st.pulls.reserve(total_queries);
        st.query_delivered.reset(ops.len());
        st.push_delivered.reset(ops.len());
        st.reply_lost.reset(ops.len());

        // Scatter; cursors start at the offsets, so each receiver's
        // entries land in op order (the stable counting sort the apply
        // stage depends on). The reply transit coin is pre-drawn here:
        // one stream per *puller* per round, one draw per pull, consumed
        // whether or not the pullee ends up answering (the per-agent
        // discipline's documented difference from the sequential
        // stream).
        st.counts.copy_from_slice(&st.query_off);
        st.counts2.copy_from_slice(&st.push_off);
        for (i, (from, op)) in ops.iter().enumerate() {
            match op {
                Op::Pull { from: target, .. } => {
                    let cursor = &mut st.counts[*target as usize];
                    let pos = *cursor;
                    *cursor += 1;
                    st.query_entries[pos as usize] = QueryEntry { puller: *from, op: i as u32 };
                    st.pulls.push(PullRec { puller: *from, pullee: *target, qpos: pos });
                    if p > 0.0 {
                        let mut rng = loss_streams::per_agent(
                            loss_seed,
                            loss_streams::REPLY,
                            round,
                            *from,
                        );
                        if rng.chance(p) {
                            st.reply_lost.set(i);
                        }
                    }
                }
                Op::Push { to, .. } => {
                    let cursor = &mut st.counts2[*to as usize];
                    let pos = *cursor;
                    *cursor += 1;
                    st.push_entries[pos as usize] = PushEntry { from: *from, op: i as u32 };
                }
            }
        }

        if let Some(t) = t_build {
            stage_times.build_us += t.elapsed().as_micros() as u64;
        }
        let t_resolve = timed.then(std::time::Instant::now);
        let undelivered = resolve_masks_range(
            0,
            n,
            &st.query_entries,
            &st.query_off,
            &st.push_entries,
            &st.push_off,
            st.query_delivered.as_atomic(),
            st.push_delivered.as_atomic(),
            p,
            loss_seed,
            round,
            meter_queries,
            fault_state,
            topology,
            partition.as_ref(),
        );
        metrics.record_bulk(&Tally::default(), undelivered);
        if let Some(t) = t_resolve {
            stage_times.resolve_us += t.elapsed().as_micros() as u64;
        }
    }

    /// Sharded ledger build. Stage A: each shard histograms its op
    /// range. Stage B (sequential, `O(n·threads)`): the per-shard counts
    /// are merged into the global CSR offsets and, in place, into
    /// absolute scatter cursors — shard `s`'s cursor for receiver `v`
    /// starts at `off[v] + Σ_{s' < s} counts[s'][v]`, so scatter
    /// positions reproduce the sequential counting sort exactly. Stage
    /// C: shards scatter their op ranges through those cursors
    /// ([`SharedWriter`]; positions pairwise disjoint by construction),
    /// write pull records into contiguous per-shard `pulls` segments
    /// (shard order = op order), and pre-draw the reply coins into the
    /// shared op-indexed bitset (relaxed atomic ORs — each bit has
    /// exactly one writer, so the verdict is interleaving-independent).
    /// Stage D: mask/loss resolution shards over *receivers* with the
    /// same per-receiver streams and ledger order as the sequential
    /// build, counting undelivered per shard and merging after the
    /// barrier (a sum, so the merge is exact).
    fn build_ledgers_par(&mut self, ops: &[(AgentId, Op<M>)], round: usize, threads: usize) {
        let n = self.agents.len();
        let p = self.current_p;
        let loss_seed = self.config.loss_seed;
        let meter_queries = self.config.meter_queries;
        let n_ops = ops.len();
        let chunk = n_ops.div_ceil(threads).max(1);
        let timed = self.config.time_stages;
        let Network {
            pool, staged: st, fault_state, topology, partition, metrics, stage_times, ..
        } = self;
        let fault_state: &FaultState = fault_state;
        let topology: &Topology = topology;
        let partition = partition.as_ref();
        let pool = ensure_pool(pool, threads);
        let t_build = timed.then(std::time::Instant::now);

        // Stage A: per-shard histograms over disjoint op ranges.
        if st.shard_qcounts.len() < threads {
            st.shard_qcounts.resize_with(threads, Vec::new);
        }
        if st.shard_pcounts.len() < threads {
            st.shard_pcounts.resize_with(threads, Vec::new);
        }
        st.shard_pulls.clear();
        st.shard_pulls.resize(threads, 0);
        pool.scope(|scope| {
            for (s, ((qc, pc), np)) in st.shard_qcounts[..threads]
                .iter_mut()
                .zip(st.shard_pcounts[..threads].iter_mut())
                .zip(st.shard_pulls.iter_mut())
                .enumerate()
            {
                let lo = s * chunk;
                let hi = (lo + chunk).min(n_ops);
                if lo >= hi {
                    // Stage B still reads this shard's counters.
                    qc.clear();
                    qc.resize(n, 0);
                    pc.clear();
                    pc.resize(n, 0);
                    continue;
                }
                let ops_range = &ops[lo..hi];
                scope.spawn(move || {
                    qc.clear();
                    qc.resize(n, 0);
                    pc.clear();
                    pc.resize(n, 0);
                    let mut pulls = 0u32;
                    for (_, op) in ops_range {
                        match op {
                            Op::Pull { from: target, .. } => {
                                qc[*target as usize] += 1;
                                pulls += 1;
                            }
                            Op::Push { to, .. } => pc[*to as usize] += 1,
                        }
                    }
                    *np = pulls;
                });
            }
        });

        // Stage B: offset merge; the per-shard histograms become the
        // per-shard absolute scatter cursors in place.
        st.query_off.clear();
        st.query_off.resize(n + 1, 0);
        st.push_off.clear();
        st.push_off.resize(n + 1, 0);
        let mut qacc = 0u32;
        let mut pacc = 0u32;
        for v in 0..n {
            st.query_off[v] = qacc;
            st.push_off[v] = pacc;
            for s in 0..threads {
                let qc = &mut st.shard_qcounts[s][v];
                let c = *qc;
                *qc = qacc;
                qacc += c;
                let pc = &mut st.shard_pcounts[s][v];
                let c = *pc;
                *pc = pacc;
                pacc += c;
            }
        }
        st.query_off[n] = qacc;
        st.push_off[n] = pacc;
        let total_queries = qacc as usize;
        let total_pushes = pacc as usize;
        debug_assert_eq!(
            st.shard_pulls.iter().map(|&c| c as usize).sum::<usize>(),
            total_queries,
            "per-shard pull totals must cover the query ledger"
        );

        // Stage C: scatter.
        st.query_entries.clear();
        st.query_entries.resize(total_queries, QueryEntry { puller: 0, op: 0 });
        st.push_entries.clear();
        st.push_entries.resize(total_pushes, PushEntry { from: 0, op: 0 });
        st.pulls.clear();
        st.pulls.resize(total_queries, PullRec { puller: 0, pullee: 0, qpos: 0 });
        st.query_delivered.reset(n_ops);
        st.push_delivered.reset(n_ops);
        st.reply_lost.reset(n_ops);
        let qw = SharedWriter::new(&mut st.query_entries);
        let pw = SharedWriter::new(&mut st.push_entries);
        let reply_lost = st.reply_lost.as_atomic();
        pool.scope(|scope| {
            let mut pulls_rest: &mut [PullRec] = &mut st.pulls;
            for (s, ((qc, pc), &seg_len)) in st.shard_qcounts[..threads]
                .iter_mut()
                .zip(st.shard_pcounts[..threads].iter_mut())
                .zip(st.shard_pulls.iter())
                .enumerate()
            {
                let (seg, rest) = pulls_rest.split_at_mut(seg_len as usize);
                pulls_rest = rest;
                let lo = s * chunk;
                let hi = (lo + chunk).min(n_ops);
                if lo >= hi {
                    continue;
                }
                let ops_range = &ops[lo..hi];
                scope.spawn(move || {
                    let mut seg = seg.iter_mut();
                    for (off, (from, op)) in ops_range.iter().enumerate() {
                        let i = lo + off;
                        match op {
                            Op::Pull { from: target, .. } => {
                                let cursor = &mut qc[*target as usize];
                                let pos = *cursor;
                                *cursor += 1;
                                // SAFETY: `pos` walks this shard's
                                // disjoint cursor range of the
                                // counting sort; in bounds of
                                // `query_entries` by the offset merge.
                                unsafe {
                                    qw.write(
                                        pos as usize,
                                        QueryEntry { puller: *from, op: i as u32 },
                                    );
                                }
                                *seg.next().expect("pull segment sized by its stage-A count") =
                                    PullRec { puller: *from, pullee: *target, qpos: pos };
                                if p > 0.0 {
                                    let mut rng = loss_streams::per_agent(
                                        loss_seed,
                                        loss_streams::REPLY,
                                        round,
                                        *from,
                                    );
                                    if rng.chance(p) {
                                        atomic_set(reply_lost, i);
                                    }
                                }
                            }
                            Op::Push { to, .. } => {
                                let cursor = &mut pc[*to as usize];
                                let pos = *cursor;
                                *cursor += 1;
                                // SAFETY: as above, for `push_entries`.
                                unsafe {
                                    pw.write(
                                        pos as usize,
                                        PushEntry { from: *from, op: i as u32 },
                                    );
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some(t) = t_build {
            stage_times.build_us += t.elapsed().as_micros() as u64;
        }
        let t_resolve = timed.then(std::time::Instant::now);

        // Stage D: mask/loss resolution over receiver ranges.
        let agents_chunk = n.div_ceil(threads).max(1);
        st.shard_undelivered.clear();
        st.shard_undelivered.resize(threads, 0);
        {
            let q_entries = &st.query_entries[..];
            let q_off = &st.query_off[..];
            let p_entries = &st.push_entries[..];
            let p_off = &st.push_off[..];
            let query_delivered = st.query_delivered.as_atomic();
            let push_delivered = st.push_delivered.as_atomic();
            pool.scope(|scope| {
                for (s, slot) in st.shard_undelivered.iter_mut().enumerate() {
                    let lo = s * agents_chunk;
                    let hi = (lo + agents_chunk).min(n);
                    if lo >= hi {
                        continue;
                    }
                    scope.spawn(move || {
                        *slot = resolve_masks_range(
                            lo,
                            hi,
                            q_entries,
                            q_off,
                            p_entries,
                            p_off,
                            query_delivered,
                            push_delivered,
                            p,
                            loss_seed,
                            round,
                            meter_queries,
                            fault_state,
                            topology,
                            partition,
                        );
                    });
                }
            });
        }
        let undelivered: u64 = st.shard_undelivered.iter().sum();
        metrics.record_bulk(&Tally::default(), undelivered);
        if let Some(t) = t_resolve {
            stage_times.resolve_us += t.elapsed().as_micros() as u64;
        }
    }

    /// Regroup `staged.push_entries` (currently in op order, with the
    /// receiver recoverable from `ops`) into receiver-grouped CSR form,
    /// building `push_off`. Stable: a receiver's entries stay in op
    /// (= sender-id) order, the monolithic engine's delivery order.
    fn group_pushes_by_receiver(&mut self) {
        let n = self.agents.len();
        let st = &mut self.staged;
        st.counts.clear();
        st.counts.resize(n + 1, 0);
        let receiver = |ops: &[(AgentId, Op<M>)], e: &PushEntry| -> usize {
            match &ops[e.op as usize].1 {
                Op::Push { to, .. } => *to as usize,
                Op::Pull { .. } => unreachable!("push ledger entry points at a pull"),
            }
        };
        for e in &st.push_entries {
            st.counts[receiver(&self.ops, e) + 1] += 1;
        }
        st.push_off.clear();
        st.push_off.reserve(n + 1);
        let mut acc = 0u32;
        for &c in &st.counts {
            acc += c;
            st.push_off.push(acc);
        }
        st.counts.copy_from_slice(&st.push_off);
        st.push_scratch.clear();
        st.push_scratch.resize(st.push_entries.len(), PushEntry { from: 0, op: 0 });
        for e in &st.push_entries {
            let cursor = &mut st.counts[receiver(&self.ops, e)];
            st.push_scratch[*cursor as usize] = *e;
            *cursor += 1;
        }
        std::mem::swap(&mut st.push_entries, &mut st.push_scratch);
    }

    // ------------------------------------------------------------------
    // Stage 3: apply
    // ------------------------------------------------------------------

    /// `PerAgent` apply, leg one: deliver every gated query to its
    /// pullee's `on_pull`, sharded over pullees. Produced replies are
    /// metered into per-shard tallies (merged in shard order), written
    /// into ledger-aligned slots, then gathered into the per-puller
    /// inbox.
    fn apply_pulls(&mut self, round: usize, threads: usize) {
        let n = self.agents.len();
        let Network { pool, agents, staged: st, topology, env, ops, metrics, .. } = self;
        st.reply_out.clear();
        st.reply_out.resize_with(st.query_entries.len(), || None);
        let topology: &Topology = topology;
        let env: &SizeEnv = env;
        let ops: &[(AgentId, Op<M>)] = ops;
        let entries = &st.query_entries[..];
        let off = &st.query_off[..];
        let delivered = &st.query_delivered;
        let reply_lost = &st.reply_lost;
        let chunk = n.div_ceil(threads);
        st.shard_meters.clear();
        if threads <= 1 {
            let meter = apply_pull_chunk(
                &mut agents[..],
                0,
                entries,
                off,
                delivered,
                reply_lost,
                &mut st.reply_out[..],
                ops,
                round,
                topology,
                env,
            );
            st.shard_meters.push(meter);
        } else {
            // Shard meters are written in place by the pool jobs (an
            // unused trailing slot stays a zero tally, which merges as
            // a no-op), so shard order is positional, not join order.
            st.shard_meters.resize_with(threads, Default::default);
            let pool = ensure_pool(pool, threads);
            pool.scope(|scope| {
                let mut agents_rest: &mut [A] = agents;
                let mut reply_rest: &mut [Option<M>] = &mut st.reply_out;
                let mut meters_rest: &mut [(Tally, u64)] = &mut st.shard_meters;
                let mut consumed = off[0] as usize; // == 0
                let mut lo = 0usize;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let (agents_chunk, ar) = agents_rest.split_at_mut(hi - lo);
                    agents_rest = ar;
                    let e_hi = off[hi] as usize;
                    let (reply_chunk, rr) = reply_rest.split_at_mut(e_hi - consumed);
                    reply_rest = rr;
                    consumed = e_hi;
                    let (meter_slot, mr) = meters_rest.split_first_mut().expect("meter slot per shard");
                    meters_rest = mr;
                    let base = lo;
                    scope.spawn(move || {
                        *meter_slot = apply_pull_chunk(
                            agents_chunk,
                            base,
                            entries,
                            off,
                            delivered,
                            reply_lost,
                            reply_chunk,
                            ops,
                            round,
                            topology,
                            env,
                        );
                    });
                    lo = hi;
                }
            });
        }
        // Merge per-shard reply meters in shard order — exact, so the
        // totals equal single-threaded metering bit for bit.
        for (tally, undelivered) in st.shard_meters.drain(..) {
            metrics.record_bulk(&tally, undelivered);
        }
        // Gather replies into the per-puller inbox (pull/op order).
        st.reply_inbox.clear();
        for pull in &st.pulls {
            st.reply_inbox.push(st.reply_out[pull.qpos as usize].take());
        }
    }

    /// `PerAgent` op-log pass: pull outcomes in op order, then pushes in
    /// op order — the same per-round shape the monolithic engine writes
    /// (its stage 2 then stage 3). Runs after the pull barrier, when
    /// outcomes are known.
    ///
    /// With several workers the round's events scatter in parallel into
    /// a pre-sized tail of the log ([`OpLog::scatter_tail`]): every op
    /// is a pull or a push, so the tail holds exactly `n_ops` events —
    /// `[pulls in op order][pushes in op order]` — and the per-shard
    /// pull counts from the ledger build's stage A prefix-sum into each
    /// shard's disjoint pull and push cursor ranges. The scattered log
    /// is byte-identical to the sequential append it replaces.
    fn log_round_ops(&mut self, round: usize, threads: usize) {
        if !self.config.record_ops {
            return;
        }
        if threads <= 1 {
            // `shard_pulls` is only populated by the parallel ledger
            // build; the single-worker round appends directly.
            let st = &self.staged;
            for (pull, reply) in st.pulls.iter().zip(&st.reply_inbox) {
                let kind = if reply.is_some() { OpKind::Pull } else { OpKind::PullUnanswered };
                self.oplog.record(round as u32, kind, pull.puller, pull.pullee);
            }
            for (from, op) in &self.ops {
                if let Op::Push { to, .. } = op {
                    self.oplog.record(round as u32, OpKind::Push, *from, *to);
                }
            }
            return;
        }
        let n_ops = self.ops.len();
        let chunk = n_ops.div_ceil(threads).max(1); // = the ledger build's op chunking
        let Network { pool, staged: st, ops, oplog, .. } = self;
        let ops: &[(AgentId, Op<M>)] = ops;
        let inbox: &[Option<M>] = &st.reply_inbox;
        let pulls_total: usize = st.shard_pulls.iter().map(|&c| c as usize).sum();
        let w = SharedWriter::new(oplog.scatter_tail(n_ops));
        let pool = ensure_pool(pool, threads);
        pool.scope(|scope| {
            let mut pulls_before = 0usize;
            for (s, &np) in st.shard_pulls[..threads].iter().enumerate() {
                let lo = s * chunk;
                let hi = (lo + chunk).min(n_ops);
                let q_base = pulls_before;
                pulls_before += np as usize;
                if lo >= hi {
                    continue;
                }
                let ops_range = &ops[lo..hi];
                scope.spawn(move || {
                    // This shard's cursor ranges: pulls `q_base..q_base
                    // + np`, pushes `pulls_total + (lo - q_base) ..` —
                    // contiguous across shards, pairwise disjoint, and
                    // together exactly `0..n_ops`.
                    let mut q = q_base;
                    let mut p = pulls_total + lo - q_base;
                    for (from, op) in ops_range {
                        match op {
                            Op::Pull { from: target, .. } => {
                                // `q` is this pull's global op-order
                                // index, which is how `reply_inbox` is
                                // aligned.
                                let kind = if inbox[q].is_some() {
                                    OpKind::Pull
                                } else {
                                    OpKind::PullUnanswered
                                };
                                let ev =
                                    OpEvent { round: round as u32, kind, from: *from, to: *target };
                                // SAFETY: disjoint cursor ranges, in
                                // bounds by the prefix sum.
                                unsafe { w.write(q, ev) };
                                q += 1;
                            }
                            Op::Push { to, .. } => {
                                let ev = OpEvent {
                                    round: round as u32,
                                    kind: OpKind::Push,
                                    from: *from,
                                    to: *to,
                                };
                                // SAFETY: as above.
                                unsafe { w.write(p, ev) };
                                p += 1;
                            }
                        }
                    }
                });
            }
        });
    }

    /// Apply, final leg (both disciplines): deliver gated pushes to
    /// `on_push` and gathered replies to `on_reply`, sharded over
    /// receivers. Pushes of one receiver arrive in ledger (sender-id)
    /// order; each puller's single reply follows its pushes — handlers
    /// mutate only their own agent, so this matches the monolithic
    /// all-pushes-then-all-replies order observationally.
    fn apply_deliveries(&mut self, round: usize, threads: usize) {
        let n = self.agents.len();
        let Network { pool, agents, staged: st, topology, ops, .. } = self;
        let topology: &Topology = topology;
        let ops: &[(AgentId, Op<M>)] = ops;
        let entries = &st.push_entries[..];
        let off = &st.push_off[..];
        let delivered = &st.push_delivered;
        let chunk = n.div_ceil(threads);
        if threads <= 1 {
            apply_delivery_chunk(
                &mut agents[..],
                0,
                entries,
                off,
                delivered,
                &st.pulls[..],
                &mut st.reply_inbox[..],
                ops,
                round,
                topology,
            );
        } else {
            let pool = ensure_pool(pool, threads);
            pool.scope(|scope| {
                let mut agents_rest: &mut [A] = agents;
                let mut pulls_rest: &[PullRec] = &st.pulls;
                let mut inbox_rest: &mut [Option<M>] = &mut st.reply_inbox;
                let mut lo = 0usize;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let (agents_chunk, ar) = agents_rest.split_at_mut(hi - lo);
                    agents_rest = ar;
                    // A multi-op puller has several adjacent pulls; the
                    // partition point stays correct because `pulls` is
                    // puller-ordered (op order).
                    let k = pulls_rest.partition_point(|p| (p.puller as usize) < hi);
                    let (pulls_chunk, pr) = pulls_rest.split_at(k);
                    pulls_rest = pr;
                    let (inbox_chunk, ir) = inbox_rest.split_at_mut(k);
                    inbox_rest = ir;
                    let base = lo;
                    scope.spawn(move || {
                        apply_delivery_chunk(
                            agents_chunk,
                            base,
                            entries,
                            off,
                            delivered,
                            pulls_chunk,
                            inbox_chunk,
                            ops,
                            round,
                            topology,
                        );
                    });
                    lo = hi;
                }
            });
        }
    }
}

/// Get the network's persistent worker pool, (re)building it lazily if
/// it does not exist yet or the configured thread count changed. The
/// pool outlives rounds *and* trials — replacing a per-round
/// `std::thread::scope` spawn/join with a channel send + condvar wait
/// (`rfc-bench`'s `staged_spawn_overhead` row isolates the difference).
fn ensure_pool(slot: &mut Option<crate::pool::ScopedPool>, threads: usize) -> &mut crate::pool::ScopedPool {
    let rebuild = !matches!(slot, Some(p) if p.workers() == threads);
    if rebuild {
        *slot = Some(crate::pool::ScopedPool::new(threads));
    }
    slot.as_mut().expect("pool just ensured")
}

/// Fold one contiguous op range into a send-time meter tally: every
/// push, and (when `meter_queries`) every pull query, metered at its
/// wire size. The shard decomposition is invisible to the result —
/// tallies merged in shard order equal one op-order pass exactly.
fn tally_ops<M: MsgSize>(
    ops: &[(AgentId, Op<M>)],
    meter_queries: bool,
    env: &SizeEnv,
    tally: &mut Tally,
) {
    for (_, op) in ops {
        match op {
            Op::Pull { query, .. } => {
                if meter_queries {
                    tally.record(query.size_bits(env));
                }
            }
            Op::Push { msg, .. } => tally.record(msg.size_bits(env)),
        }
    }
}

/// Resolve masks and loss coins for the receivers `lo..hi` of both
/// ledgers, setting op-indexed verdict bits and returning the range's
/// undelivered count. One loss stream per receiver per family per
/// round, one draw per inbound entry (ledger order), drawn whether or
/// not a mask already suppresses the delivery — the draws of one
/// agent's inbox never depend on another agent's traffic, which is what
/// makes this callable from any shard decomposition (or none) with
/// bit-identical results.
#[allow(clippy::too_many_arguments)]
fn resolve_masks_range(
    lo: usize,
    hi: usize,
    q_entries: &[QueryEntry],
    q_off: &[u32],
    p_entries: &[PushEntry],
    p_off: &[u32],
    query_delivered: &[std::sync::atomic::AtomicU64],
    push_delivered: &[std::sync::atomic::AtomicU64],
    p: f64,
    loss_seed: u64,
    round: usize,
    meter_queries: bool,
    fault_state: &FaultState,
    topology: &Topology,
    partition: Option<&PartitionCut>,
) -> u64 {
    let mut undelivered = 0u64;
    for v in lo..hi {
        let va = v as AgentId;
        let (qlo, qhi) = (q_off[v] as usize, q_off[v + 1] as usize);
        if qlo != qhi {
            let down = fault_state.is_down(va);
            let mut rng = (p > 0.0)
                .then(|| loss_streams::per_agent(loss_seed, loss_streams::QUERY, round, va));
            for e in &q_entries[qlo..qhi] {
                let lost = rng.as_mut().map(|r| r.chance(p)).unwrap_or(false);
                let reachable = topology.connected(e.puller, va)
                    && !matches!(partition, Some(cut) if cut.blocks(e.puller, va));
                if reachable && !down && !lost {
                    atomic_set(query_delivered, e.op as usize);
                } else if meter_queries {
                    undelivered += 1;
                }
            }
        }
        let (plo, phi) = (p_off[v] as usize, p_off[v + 1] as usize);
        if plo != phi {
            let down = fault_state.is_down(va);
            let mut rng = (p > 0.0)
                .then(|| loss_streams::per_agent(loss_seed, loss_streams::PUSH, round, va));
            for e in &p_entries[plo..phi] {
                let lost = rng.as_mut().map(|r| r.chance(p)).unwrap_or(false);
                let reachable = topology.connected(e.from, va)
                    && !matches!(partition, Some(cut) if cut.blocks(e.from, va));
                if reachable && !down && !lost {
                    atomic_set(push_delivered, e.op as usize);
                } else {
                    undelivered += 1;
                }
            }
        }
    }
    undelivered
}

/// Deliver queries to one contiguous pullee shard (`agents` holds ids
/// `base..base + agents.len()`); returns the shard's reply meter
/// `(tally of produced replies, undelivered count)`.
#[allow(clippy::too_many_arguments)]
fn apply_pull_chunk<M: MsgSize, A: Agent<M>>(
    agents: &mut [A],
    base: usize,
    entries: &[QueryEntry],
    off: &[u32],
    delivered: &BitSet,
    reply_lost: &BitSet,
    reply_out: &mut [Option<M>],
    ops: &[(AgentId, Op<M>)],
    round: usize,
    topology: &Topology,
    env: &SizeEnv,
) -> (Tally, u64) {
    let ctx = RoundCtx { round, topology };
    let mut tally = Tally::default();
    let mut undelivered = 0u64;
    let e_base = off[base] as usize;
    for (local, agent) in agents.iter_mut().enumerate() {
        let v = base + local;
        let lo = off[v] as usize;
        let hi = off[v + 1] as usize;
        for pos in lo..hi {
            let e = &entries[pos];
            if !delivered.get(e.op as usize) {
                continue;
            }
            let query = match &ops[e.op as usize].1 {
                Op::Pull { query, .. } => query,
                Op::Push { .. } => unreachable!("query ledger entry points at a push"),
            };
            let reply = agent.on_pull(e.puller, query, &ctx);
            if let Some(msg) = reply {
                // Metering contract: the reply went on the wire at
                // production, whether or not it survives transit.
                tally.record(msg.size_bits(env));
                if reply_lost.get(e.op as usize) {
                    undelivered += 1;
                } else {
                    reply_out[pos - e_base] = Some(msg);
                }
            }
        }
    }
    (tally, undelivered)
}

/// Deliver pushes and replies to one contiguous receiver shard.
#[allow(clippy::too_many_arguments)]
fn apply_delivery_chunk<M: MsgSize, A: Agent<M>>(
    agents: &mut [A],
    base: usize,
    entries: &[PushEntry],
    off: &[u32],
    delivered: &BitSet,
    pulls: &[PullRec],
    inbox: &mut [Option<M>],
    ops: &[(AgentId, Op<M>)],
    round: usize,
    topology: &Topology,
) {
    let ctx = RoundCtx { round, topology };
    for (local, agent) in agents.iter_mut().enumerate() {
        let v = base + local;
        for e in &entries[off[v] as usize..off[v + 1] as usize] {
            if !delivered.get(e.op as usize) {
                continue;
            }
            let msg = match &ops[e.op as usize].1 {
                Op::Push { msg, .. } => msg,
                Op::Pull { .. } => unreachable!("push ledger entry points at a pull"),
            };
            agent.on_push(e.from, msg, &ctx);
        }
    }
    for (pull, slot) in pulls.iter().zip(inbox.iter_mut()) {
        let local = pull.puller as usize - base;
        agents[local].on_reply(pull.pullee, slot.take(), &ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Placement;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl MsgSize for Num {
        fn size_bits(&self, _env: &SizeEnv) -> u64 {
            8
        }
    }

    /// Mixed workload: even agents push to `(id + 1) % n`, odd agents
    /// pull `(id + 3) % n`; everyone answers pulls with its own id and
    /// remembers everything it hears (pushes, produced pulls, replies).
    struct Mixer {
        id: AgentId,
        n: usize,
        heard: Vec<(AgentId, u64)>,
        answered: u64,
        replies: Vec<Option<u64>>,
    }
    impl Mixer {
        fn new(id: AgentId, n: usize) -> Self {
            Mixer { id, n, heard: vec![], answered: 0, replies: vec![] }
        }
    }
    impl Agent<Num> for Mixer {
        fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Num>> {
            if self.id % 2 == 0 {
                Some(Op::push((self.id + 1) % self.n as AgentId, Num(self.id as u64)))
            } else {
                Some(Op::pull((self.id + 3) % self.n as AgentId, Num(0)))
            }
        }
        fn on_pull(&mut self, _from: AgentId, _q: &Num, _ctx: &RoundCtx) -> Option<Num> {
            self.answered += 1;
            Some(Num(self.id as u64))
        }
        fn on_push(&mut self, from: AgentId, msg: &Num, _ctx: &RoundCtx) {
            self.heard.push((from, msg.0));
        }
        fn on_reply(&mut self, _from: AgentId, reply: Option<Num>, _ctx: &RoundCtx) {
            self.replies.push(reply.map(|m| m.0));
        }
    }

    fn mk_net(n: usize, cfg: NetworkConfig) -> Network<Num, Mixer> {
        let agents = (0..n).map(|id| Mixer::new(id as AgentId, n)).collect();
        Network::with_config(
            Topology::complete(n),
            SizeEnv::for_n(n),
            agents,
            FaultPlan::place(n, n / 5, Placement::HighIds),
            cfg,
        )
    }

    /// Every observable a test can compare: metrics, op log, and each
    /// agent's full observation history.
    fn observe(net: &Network<Num, Mixer>) -> (Metrics, Vec<crate::oplog::OpEvent>, Vec<String>) {
        let agents = net
            .agents()
            .iter()
            .map(|a| format!("{:?}|{}|{:?}", a.heard, a.answered, a.replies))
            .collect();
        (net.metrics().clone(), net.oplog().events().to_vec(), agents)
    }

    #[test]
    fn staged_sequential_replays_legacy_engine_bit_for_bit() {
        let cfg = NetworkConfig {
            record_ops: true,
            loss_probability: 0.3,
            loss_seed: 11,
            ..NetworkConfig::default()
        };
        let mut legacy = mk_net(20, cfg.clone());
        legacy.run(12);
        let want = observe(&legacy);
        for threads in [1usize, 2, 4, 7] {
            let mut net = mk_net(20, NetworkConfig { threads, ..cfg.clone() });
            net.run_staged(12);
            assert_eq!(observe(&net), want, "threads={threads} diverged from legacy step()");
        }
    }

    #[test]
    fn per_agent_discipline_is_thread_invariant() {
        let cfg = NetworkConfig {
            record_ops: true,
            loss_probability: 0.25,
            loss_seed: 7,
            rng_discipline: RngDiscipline::PerAgent,
            ..NetworkConfig::default()
        };
        let mut one = mk_net(24, NetworkConfig { threads: 1, ..cfg.clone() });
        one.run_staged(10);
        let want = observe(&one);
        for threads in [2usize, 3, 8, 24] {
            let mut net = mk_net(24, NetworkConfig { threads, ..cfg.clone() });
            net.run_staged(10);
            assert_eq!(observe(&net), want, "threads={threads} changed per-agent output");
        }
    }

    #[test]
    fn autotuned_run_matches_fixed_run_bit_for_bit() {
        // The tuner only moves `threads`, so whatever it probes and
        // picks, every observable must match a fixed single-shard run.
        let cfg = NetworkConfig {
            record_ops: true,
            loss_probability: 0.2,
            loss_seed: 5,
            rng_discipline: RngDiscipline::PerAgent,
            ..NetworkConfig::default()
        };
        let mut fixed = mk_net(24, NetworkConfig { threads: 1, ..cfg.clone() });
        fixed.run_staged(12);
        let want = observe(&fixed);
        let mut tuned = mk_net(24, NetworkConfig { threads: 2, ..cfg.clone() });
        let chosen = tuned.run_staged_autotuned(12, &[1, 2, 4]);
        assert!([1, 2, 4].contains(&chosen));
        assert_eq!(observe(&tuned), want, "autotuning changed observables");
    }

    #[test]
    fn per_agent_loss_free_matches_sequential_loss_free() {
        // With p = 0 the disciplines draw nothing: the only difference
        // is handler interleaving, which must be unobservable.
        let mut seq = mk_net(16, NetworkConfig::default());
        seq.run(8);
        let mut per = mk_net(
            16,
            NetworkConfig {
                rng_discipline: RngDiscipline::PerAgent,
                threads: 3,
                ..NetworkConfig::default()
            },
        );
        per.run_staged(8);
        let (m_seq, _, a_seq) = observe(&seq);
        let (m_per, _, a_per) = observe(&per);
        assert_eq!(m_seq, m_per);
        assert_eq!(a_seq, a_per);
    }

    #[test]
    fn per_agent_metering_identity_holds_under_loss() {
        // messages_sent - undelivered == handler invocations, exactly.
        let cfg = NetworkConfig {
            loss_probability: 0.4,
            loss_seed: 3,
            rng_discipline: RngDiscipline::PerAgent,
            threads: 4,
            ..NetworkConfig::default()
        };
        let mut net = mk_net(30, cfg);
        net.run_staged(20);
        let m = net.metrics().clone();
        let delivered_pushes: u64 = net.agents().iter().map(|a| a.heard.len() as u64).sum();
        let delivered_queries: u64 = net.agents().iter().map(|a| a.answered).sum();
        let delivered_replies: u64 = net
            .agents()
            .iter()
            .flat_map(|a| &a.replies)
            .filter(|r| r.is_some())
            .count() as u64;
        assert_eq!(
            m.messages_sent - m.undelivered,
            delivered_pushes + delivered_queries + delivered_replies,
            "metering contract: sent - undelivered must equal deliveries"
        );
        assert!(m.undelivered > 0, "40% loss must suppress something");
    }

    #[test]
    fn staged_respects_scenario_scripts() {
        // Crash half the network mid-run under the sharded discipline:
        // crashed agents stop acting and stop hearing, deterministically
        // across thread counts.
        let script = ScenarioScript::new().crash(3, (0..8).collect());
        let cfg = NetworkConfig {
            scenario: script,
            rng_discipline: RngDiscipline::PerAgent,
            ..NetworkConfig::default()
        };
        let mut one = mk_net(16, NetworkConfig { threads: 1, ..cfg.clone() });
        one.run_staged(8);
        let want = observe(&one);
        let mut eight = mk_net(16, NetworkConfig { threads: 8, ..cfg.clone() });
        eight.run_staged(8);
        assert_eq!(observe(&eight), want);
        assert!(one.fault_state().is_down(0), "scripted crash must hold");
    }
}
