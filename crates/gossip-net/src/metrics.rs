//! Communication metrics: messages, bits, and per-phase aggregation.
//!
//! Everything the paper's complexity claims mention is counted here:
//!
//! * **messages_sent** — every push, every pull *query*, and every pull
//!   *reply* counts as one message (a pull is one active operation but two
//!   wire messages; the paper's `O(n)` active-links-per-round bound and the
//!   `O(n log³ n)` total-bits bound are insensitive to the factor of two,
//!   and counting both directions is the honest accounting).
//! * **bits_sent** — sum of [`crate::MsgSize::size_bits`] over all messages.
//! * **max_message_bits** — the largest single message (the `O(log² n)`
//!   claim of Theorem 4).
//! * **active_links** — number of distinct active operations per round,
//!   which the GOSSIP model bounds by `n`.
//!
//! Phases are caller-labelled: the protocol runner calls
//! [`Metrics::enter_phase`] at phase boundaries and per-phase tallies
//! accumulate under that label, giving E2 its by-phase breakdown.

/// Index of a protocol phase, assigned by the caller via `enter_phase`.
pub type PhaseId = usize;

/// A tally of messages/bits for one scope (global or one phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Number of wire messages.
    pub messages: u64,
    /// Total bits across those messages.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
}

impl Tally {
    /// Count one message of `bits` bits into this tally.
    #[inline]
    pub fn record(&mut self, bits: u64) {
        self.messages += 1;
        self.bits += bits;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
    }

    /// Merge another tally into this one (used when aggregating trials).
    pub fn merge(&mut self, other: &Tally) {
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

/// Run-wide communication metrics collected by the [`crate::Network`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Global message count (pushes + pull queries + pull replies).
    pub messages_sent: u64,
    /// Metered messages that never reached a handler: sent off-edge,
    /// across a partition cut, to a faulty/crashed receiver, or lost in
    /// transit. `messages_sent - undelivered` is the exact number of
    /// deliveries (`on_push`/`on_pull`/`Some`-reply invocations) the
    /// wire produced. (Unmetered queries — `meter_queries` off — are
    /// excluded from both counters.)
    pub undelivered: u64,
    /// Global bit count.
    pub bits_sent: u64,
    /// Largest single message observed.
    pub max_message_bits: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Async ticks executed (sequential-GOSSIP extension; 0 in sync runs).
    pub ticks: u64,
    /// Maximum number of active operations in any single round.
    pub max_active_links: u64,
    /// Named phase tallies, indexed by the caller's `PhaseId`.
    pub phases: Vec<(String, Tally)>,
    current_phase: Option<PhaseId>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero every counter **in place**, keeping the phase table's backing
    /// allocation (arena reuse: a reset Metrics is `==` to a fresh one,
    /// but re-entering the same phases won't reallocate).
    pub fn reset(&mut self) {
        self.messages_sent = 0;
        self.undelivered = 0;
        self.bits_sent = 0;
        self.max_message_bits = 0;
        self.rounds = 0;
        self.ticks = 0;
        self.max_active_links = 0;
        self.phases.clear();
        self.current_phase = None;
    }

    /// Open (or switch to) a named phase; subsequent messages accrue to it.
    /// Returns the phase's id for later lookup.
    pub fn enter_phase(&mut self, name: &str) -> PhaseId {
        if let Some(idx) = self.phases.iter().position(|(n, _)| n == name) {
            self.current_phase = Some(idx);
            idx
        } else {
            self.phases.push((name.to_owned(), Tally::default()));
            let idx = self.phases.len() - 1;
            self.current_phase = Some(idx);
            idx
        }
    }

    /// Name of the phase currently accruing, if any (checkpoint support:
    /// re-entering this name after restore reproduces the exact state).
    pub fn current_phase_name(&self) -> Option<&str> {
        self.current_phase.map(|i| self.phases[i].0.as_str())
    }

    /// Record one wire message of `bits` bits.
    #[inline]
    pub fn record_message(&mut self, bits: u64) {
        self.messages_sent += 1;
        self.bits_sent += bits;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
        if let Some(p) = self.current_phase {
            self.phases[p].1.record(bits);
        }
    }

    /// Record one metered message that was suppressed before delivery
    /// (off-edge, cross-partition, faulty/crashed receiver, or loss).
    #[inline]
    pub fn record_undelivered(&mut self) {
        self.undelivered += 1;
    }

    /// Fold a pre-aggregated message [`Tally`] (plus an undelivered
    /// count) into the globals and the current phase — the staged
    /// engine's per-shard reply meters land here, merged in shard order.
    /// Exactly equivalent to calling [`Metrics::record_message`] once per
    /// message (sums and maxes commute), so sharded and sequential
    /// metering agree bit for bit.
    pub fn record_bulk(&mut self, tally: &Tally, undelivered: u64) {
        self.messages_sent += tally.messages;
        self.bits_sent += tally.bits;
        self.max_message_bits = self.max_message_bits.max(tally.max_message_bits);
        self.undelivered += undelivered;
        if let Some(p) = self.current_phase {
            self.phases[p].1.merge(tally);
        }
    }

    /// Record the number of active operations of a completed round.
    #[inline]
    pub fn record_round(&mut self, active_ops: u64) {
        self.rounds += 1;
        if active_ops > self.max_active_links {
            self.max_active_links = active_ops;
        }
    }

    /// Record one asynchronous activation tick.
    #[inline]
    pub fn record_tick(&mut self) {
        self.ticks += 1;
    }

    /// Tally for a named phase, if it was entered.
    pub fn phase(&self, name: &str) -> Option<&Tally> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Mean message size in bits (0 when no messages were sent).
    pub fn mean_message_bits(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bits_sent as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::new();
        m.record_message(10);
        m.record_message(30);
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.bits_sent, 40);
        assert_eq!(m.max_message_bits, 30);
        assert!((m.mean_message_bits() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(Metrics::new().mean_message_bits(), 0.0);
    }

    #[test]
    fn phases_capture_their_messages() {
        let mut m = Metrics::new();
        m.enter_phase("commitment");
        m.record_message(100);
        m.record_message(50);
        m.enter_phase("voting");
        m.record_message(7);
        let c = m.phase("commitment").unwrap();
        assert_eq!(c.messages, 2);
        assert_eq!(c.bits, 150);
        assert_eq!(c.max_message_bits, 100);
        let v = m.phase("voting").unwrap();
        assert_eq!(v.messages, 1);
        assert_eq!(v.bits, 7);
        assert!(m.phase("nope").is_none());
    }

    #[test]
    fn reentering_a_phase_continues_its_tally() {
        let mut m = Metrics::new();
        m.enter_phase("a");
        m.record_message(1);
        m.enter_phase("b");
        m.record_message(2);
        m.enter_phase("a");
        m.record_message(3);
        assert_eq!(m.phase("a").unwrap().messages, 2);
        assert_eq!(m.phase("a").unwrap().bits, 4);
        assert_eq!(m.phases.len(), 2, "no duplicate phase entries");
    }

    #[test]
    fn rounds_track_max_active_links() {
        let mut m = Metrics::new();
        m.record_round(5);
        m.record_round(9);
        m.record_round(2);
        assert_eq!(m.rounds, 3);
        assert_eq!(m.max_active_links, 9);
    }

    #[test]
    fn tally_merge_combines() {
        let mut a = Tally {
            messages: 2,
            bits: 10,
            max_message_bits: 8,
        };
        let b = Tally {
            messages: 3,
            bits: 5,
            max_message_bits: 4,
        };
        a.merge(&b);
        assert_eq!(a.messages, 5);
        assert_eq!(a.bits, 15);
        assert_eq!(a.max_message_bits, 8);
    }

    #[test]
    fn messages_without_phase_only_hit_globals() {
        let mut m = Metrics::new();
        m.record_message(12);
        assert!(m.phases.is_empty());
        assert_eq!(m.messages_sent, 1);
    }
}
