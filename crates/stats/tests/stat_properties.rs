//! Property-based tests for the statistics toolkit: distributional
//! identities, bounds, and recovery of planted models.

use proptest::prelude::*;
use rfc_stats::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// χ² survival function is a probability, monotone in x, and
    /// increasing in df (for fixed x).
    #[test]
    fn chi_square_sf_bounds_and_monotonicity(
        x in 0.0f64..500.0,
        df in 1usize..60,
    ) {
        let p = chi_square_sf(x, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_further = chi_square_sf(x + 1.0, df);
        prop_assert!(p_further <= p + 1e-12);
        let p_more_df = chi_square_sf(x, df + 5);
        prop_assert!(p_more_df >= p - 1e-12, "more df ⇒ heavier tail");
    }

    /// Goodness-of-fit of a sample against itself is perfect.
    #[test]
    fn gof_self_is_perfect(counts in proptest::collection::vec(1u64..10_000, 2..12)) {
        let expected: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let r = chi_square_gof(&counts, &expected);
        prop_assert!(r.statistic < 1e-9);
        prop_assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    /// Wilson intervals contain the point estimate and are proper
    /// sub-intervals of [0, 1].
    #[test]
    fn wilson_contains_point_estimate(s in 0u64..=500, n in 1u64..=500) {
        prop_assume!(s <= n);
        let iv = wilson95(s, n);
        let p = s as f64 / n as f64;
        prop_assert!(iv.lo <= p + 1e-12 && p <= iv.hi + 1e-12);
        prop_assert!(iv.lo >= -1e-12 && iv.hi <= 1.0 + 1e-12);
        prop_assert!(iv.width() > 0.0);
    }

    /// TV distance is a metric-like quantity: symmetric, in [0, 1], zero
    /// iff the (normalized) distributions coincide.
    #[test]
    fn tv_distance_properties(
        p in proptest::collection::vec(0.01f64..10.0, 2..8),
        q_scale in 0.5f64..2.0,
    ) {
        let q: Vec<f64> = p.iter().map(|x| x * q_scale).collect();
        // Same shape, different scale ⇒ distance 0 (normalization).
        prop_assert!(tv_distance(&p, &q) < 1e-12);
        // Perturb one coordinate ⇒ positive symmetric distance ≤ 1.
        let mut r = p.clone();
        r[0] += 1.0;
        let d1 = tv_distance(&p, &r);
        let d2 = tv_distance(&r, &p);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!(d1 > 0.0 && d1 <= 1.0 + 1e-12);
    }

    /// Linear fit recovers planted slopes/intercepts through exact data.
    #[test]
    fn linear_fit_recovers_planted_line(
        slope in -50.0f64..50.0,
        intercept in -50.0f64..50.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let x = i as f64;
                (x, slope * x + intercept)
            })
            .collect();
        let f = linear_fit(&pts);
        prop_assert!((f.slope - slope).abs() < 1e-8);
        prop_assert!((f.intercept - intercept).abs() < 1e-7);
        prop_assert!(f.r2 > 1.0 - 1e-9);
    }

    /// Power fit recovers planted exponents.
    #[test]
    fn power_fit_recovers_planted_exponent(
        exponent in 0.2f64..3.0,
        constant in 0.1f64..100.0,
    ) {
        let pts: Vec<(f64, f64)> = (1..12)
            .map(|i| {
                let x = i as f64;
                (x, constant * x.powf(exponent))
            })
            .collect();
        let f = power_fit(&pts);
        prop_assert!((f.exponent - exponent).abs() < 1e-6);
        prop_assert!((f.constant - constant).abs() / constant < 1e-4);
    }

    /// Summary::merge is associative-in-effect: merging any split of a
    /// sample equals summarizing the whole sample.
    #[test]
    fn summary_merge_invariance(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..60),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = 1 + cut.index(xs.len() - 1);
        let whole = Summary::from_iter(xs.iter().copied());
        let mut left = Summary::from_iter(xs[..k].iter().copied());
        let right = Summary::from_iter(xs[k..].iter().copied());
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-6 * (1.0 + whole.variance().abs())
        );
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Chernoff bounds are valid probabilities that tighten with μ.
    #[test]
    fn chernoff_bounds_are_probabilities(mu in 0.1f64..1000.0, delta in 0.01f64..10.0) {
        let p = chernoff_upper(mu, delta);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_bigger_mu = chernoff_upper(mu * 2.0, delta);
        prop_assert!(p_bigger_mu <= p + 1e-12);
    }

    /// γ(α) sizing is monotone in both arguments.
    #[test]
    fn gamma_sizing_monotone(alpha in 0.0f64..0.95, target in 0.5f64..4.0) {
        let g = gamma_for_fault_tolerance(alpha, target);
        prop_assert!(g > 0.0);
        if alpha < 0.90 {
            prop_assert!(gamma_for_fault_tolerance(alpha + 0.04, target) > g);
        }
        prop_assert!(gamma_for_fault_tolerance(alpha, target + 0.5) > g);
    }

    /// Histogram conservation: every sample lands in exactly one bin.
    #[test]
    fn histogram_conserves_mass(
        samples in proptest::collection::vec(-100.0f64..200.0, 0..200),
        bins in 1usize..20,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &samples {
            h.add(x);
        }
        prop_assert_eq!(h.count() as usize, samples.len());
        prop_assert_eq!(h.bins().iter().sum::<u64>() as usize, samples.len());
    }

    /// Quantiles are monotone in p and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone(
        samples in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut q = Quantiles::new();
        for &x in &samples {
            q.add(x);
        }
        let q10 = q.quantile(0.1).unwrap();
        let q50 = q.quantile(0.5).unwrap();
        let q90 = q.quantile(0.9).unwrap();
        prop_assert!(q10 <= q50 && q50 <= q90);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= q10 && q90 <= hi);
    }
}

/// Statistical integration check: the χ² test has roughly correct size
/// (type-I error near α) on simulated multinomial data.
#[test]
fn chi_square_test_has_roughly_correct_size() {
    use gossip_net::rng::DetRng;
    let mut rng = DetRng::seeded(0xC5, 0);
    let k = 5;
    let n_samples = 500;
    let reps = 400;
    let mut rejections = 0;
    for _ in 0..reps {
        let mut counts = vec![0u64; k];
        for _ in 0..n_samples {
            counts[rng.index(k)] += 1;
        }
        let expected = vec![n_samples as f64 / k as f64; k];
        if !chi_square_gof(&counts, &expected).consistent_at(0.05) {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / reps as f64;
    assert!(
        (0.01..0.12).contains(&rate),
        "type-I error {rate} far from nominal 0.05"
    );
}
