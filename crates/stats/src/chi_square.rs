//! Pearson χ² goodness-of-fit test.
//!
//! Used by the fairness experiments (E4, E9): over `N` runs, the observed
//! winning-color counts are compared against the expected counts
//! `N · fraction(c)`. Under the fairness hypothesis the statistic is
//! asymptotically χ²-distributed with `k − 1` degrees of freedom; we
//! compute the p-value through the regularized upper incomplete gamma
//! function `Q(df/2, x/2)` (series + continued-fraction evaluation, as in
//! Numerical Recipes §6.2 — implemented here from scratch since no math
//! crate is available offline).

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The Pearson statistic `Σ (obs − exp)² / exp`.
    pub statistic: f64,
    /// Degrees of freedom (`k − 1` for a simple goodness-of-fit).
    pub df: usize,
    /// `P(χ²_df ≥ statistic)` under the null hypothesis.
    pub p_value: f64,
}

impl ChiSquare {
    /// Is the null hypothesis *not* rejected at significance `alpha`?
    pub fn consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Pearson goodness-of-fit: observed counts vs expected counts.
///
/// Categories with expected count 0 must have observed count 0 (else the
/// statistic is +∞, which we map to p = 0). Panics if lengths differ or
/// the expectation sums to 0.
pub fn chi_square_gof(observed: &[u64], expected: &[f64]) -> ChiSquare {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    assert!(
        expected.iter().sum::<f64>() > 0.0,
        "expected counts must be positive"
    );
    let mut stat = 0.0f64;
    let mut df = observed.len().saturating_sub(1);
    for (&obs, &exp) in observed.iter().zip(expected) {
        if exp <= 0.0 {
            if obs > 0 {
                return ChiSquare {
                    statistic: f64::INFINITY,
                    df,
                    p_value: 0.0,
                };
            }
            // Empty category contributes nothing and loses a df.
            df = df.saturating_sub(1);
            continue;
        }
        let d = obs as f64 - exp;
        stat += d * d / exp;
    }
    ChiSquare {
        statistic: stat,
        df,
        p_value: chi_square_sf(stat, df),
    }
}

/// Survival function of the χ² distribution: `P(X ≥ x)` with `df` degrees
/// of freedom — the regularized upper incomplete gamma `Q(df/2, x/2)`.
pub fn chi_square_sf(x: f64, df: usize) -> f64 {
    if x <= 0.0 || df == 0 {
        return 1.0;
    }
    reg_gamma_q(df as f64 / 2.0, x / 2.0)
}

/// Regularized upper incomplete gamma function `Q(a, x)`.
///
/// Uses the series for `P(a, x)` when `x < a + 1` and the continued
/// fraction for `Q(a, x)` otherwise (Numerical Recipes `gammp`/`gammq`).
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid gamma arguments");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of the regularized lower incomplete gamma `P(a, x)`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Lentz continued fraction for the regularized upper incomplete gamma.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - gln).exp()
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((i + 1) as f64);
            assert!(
                (lg - f.ln()).abs() < 1e-10,
                "ln_gamma({}) = {lg}",
                i + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Reference values (R: pchisq(x, df, lower.tail=FALSE)).
        let cases = [
            (3.841, 1, 0.05),
            (5.991, 2, 0.05),
            (9.488, 4, 0.05),
            (6.635, 1, 0.01),
            (0.0, 3, 1.0),
        ];
        for (x, df, p) in cases {
            let got = chi_square_sf(x, df);
            assert!(
                (got - p).abs() < 2e-4,
                "sf({x}, {df}) = {got}, want ≈ {p}"
            );
        }
    }

    #[test]
    fn sf_is_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..100 {
            let x = i as f64 * 0.5;
            let p = chi_square_sf(x, 5);
            assert!(p <= prev + 1e-12, "sf must be non-increasing");
            prev = p;
        }
    }

    #[test]
    fn gof_uniform_observed_is_consistent() {
        // Perfectly uniform observations over 4 categories.
        let obs = [250u64, 250, 250, 250];
        let exp = [250.0, 250.0, 250.0, 250.0];
        let r = chi_square_gof(&obs, &exp);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.df, 3);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(r.consistent_at(0.05));
    }

    #[test]
    fn gof_detects_gross_bias() {
        let obs = [900u64, 100];
        let exp = [500.0, 500.0];
        let r = chi_square_gof(&obs, &exp);
        assert!(r.statistic > 100.0);
        assert!(r.p_value < 1e-6);
        assert!(!r.consistent_at(0.05));
    }

    #[test]
    fn gof_small_fluctuations_pass() {
        let obs = [520u64, 480];
        let exp = [500.0, 500.0];
        let r = chi_square_gof(&obs, &exp);
        assert!(r.consistent_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn gof_empty_expected_category() {
        let obs = [10u64, 0];
        let exp = [10.0, 0.0];
        let r = chi_square_gof(&obs, &exp);
        assert_eq!(r.statistic, 0.0);
        // Observing something impossible ⇒ p = 0.
        let obs = [9u64, 1];
        let r = chi_square_gof(&obs, &exp);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gof_length_mismatch_panics() {
        let _ = chi_square_gof(&[1, 2], &[1.0]);
    }
}
