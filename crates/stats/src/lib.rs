#![warn(missing_docs)]
//! # rfc-stats — statistics toolkit for the experiment harness
//!
//! Self-contained implementations (no external math dependencies exist in
//! the offline crate set) of exactly the statistics the reproduction
//! needs:
//!
//! * [`chi_square`] — Pearson goodness-of-fit with p-values via the
//!   regularized incomplete gamma function (fairness tests E4/E9);
//! * [`tv`] — total-variation distance (fairness effect size);
//! * [`ci`] — Wilson score intervals for proportions (equilibrium and
//!   fault-tolerance win rates, E6/E7/E8);
//! * [`chernoff`] — the paper's Lemma 8 bounds plus the `γ(α)` sizing rule
//!   they imply (E5);
//! * [`fit`] — least-squares fits of `log n`, `log² n`, and power-law
//!   scalings (E1/E2/E3);
//! * [`summary`] / [`histogram`] — streaming aggregation of Monte-Carlo
//!   trials and compact distribution reports. [`Summary`] (Welford),
//!   [`Tally`] (exact u64 count/sum/min/max), and [`Histogram`] are all
//!   *mergeable*, so `run_trials_fold` workers can aggregate privately
//!   and combine partials without retaining raw samples.
//!
//! Everything is deterministic, allocation-light, and tested against
//! reference values (R / Numerical Recipes) where external references
//! exist.

pub mod chernoff;
pub mod chi_square;
pub mod ci;
pub mod fit;
pub mod histogram;
pub mod summary;
pub mod tv;

pub use chernoff::{chernoff_lower, chernoff_upper, gamma_for_fault_tolerance, hoeffding_upper};
pub use chi_square::{chi_square_gof, chi_square_sf, ChiSquare};
pub use ci::{mean_ci, wilson, wilson95, wilson99, Interval};
pub use fit::{linear_fit, log2_squared_fit, log_fit, power_fit, LinearFit, PowerFit};
pub use histogram::Histogram;
pub use summary::{Quantiles, Summary, Tally};
pub use tv::{tv_distance, tv_from_counts};
