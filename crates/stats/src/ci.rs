//! Confidence intervals for proportions and means.
//!
//! The equilibrium experiments (E7/E8) compare win-rates of coalitions to
//! the fair baseline `t/|A|`; the fault-tolerance experiment (E6) reports
//! success probabilities. Both need binomial confidence intervals that
//! behave at the extremes (success counts of 0 or N are common —
//! deviations either always fail or never succeed), so we use the
//! **Wilson score interval** rather than the normal approximation.

/// A two-sided confidence interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at confidence z-score `z` (1.96 ≈ 95%, 2.576 ≈ 99%).
pub fn wilson(successes: u64, trials: u64, z: f64) -> Interval {
    assert!(trials > 0, "wilson needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Interval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Wilson interval at 95% confidence.
pub fn wilson95(successes: u64, trials: u64) -> Interval {
    wilson(successes, trials, 1.959_963_984_540_054)
}

/// Wilson interval at 99% confidence.
pub fn wilson99(successes: u64, trials: u64) -> Interval {
    wilson(successes, trials, 2.575_829_303_548_901)
}

/// Normal-approximation interval for a sample mean: `mean ± z·stderr`.
pub fn mean_ci(mean: f64, std_err: f64, z: f64) -> Interval {
    Interval {
        lo: mean - z * std_err,
        hi: mean + z * std_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_is_sane_at_half() {
        let iv = wilson95(500, 1000);
        assert!(iv.contains(0.5));
        assert!(iv.width() < 0.07);
        assert!(iv.lo > 0.45 && iv.hi < 0.55);
    }

    #[test]
    fn wilson_handles_extremes() {
        let zero = wilson95(0, 100);
        assert!(zero.lo.abs() < 1e-12, "lo = {}", zero.lo);
        assert!(zero.hi > 0.0 && zero.hi < 0.05, "hi = {}", zero.hi);
        let all = wilson95(100, 100);
        assert!((all.hi - 1.0).abs() < 1e-12, "hi = {}", all.hi);
        assert!(all.lo < 1.0 && all.lo > 0.95);
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let small = wilson95(5, 10);
        let large = wilson95(500, 1000);
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson99_is_wider_than_wilson95() {
        let a = wilson95(30, 100);
        let b = wilson99(30, 100);
        assert!(b.width() > a.width());
        assert!(b.lo <= a.lo && b.hi >= a.hi);
    }

    #[test]
    fn wilson_matches_reference_value() {
        // R: binom.confint(42, 100, method="wilson") → [0.3287, 0.5163].
        let iv = wilson95(42, 100);
        assert!((iv.lo - 0.3287).abs() < 5e-3, "lo = {}", iv.lo);
        assert!((iv.hi - 0.5163).abs() < 5e-3, "hi = {}", iv.hi);
    }

    #[test]
    fn mean_ci_symmetric() {
        let iv = mean_ci(10.0, 0.5, 2.0);
        assert_eq!(iv.lo, 9.0);
        assert_eq!(iv.hi, 11.0);
        assert!(iv.contains(10.0));
        assert!(!iv.contains(11.5));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson95(0, 0);
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn wilson_rejects_overflowing_successes() {
        let _ = wilson95(5, 4);
    }
}
