//! Fixed-bin histograms for distribution reporting.
//!
//! Used to report vote-count distributions (E5), per-agent win counts
//! (E9), and round-to-convergence distributions (E10) as compact text.

/// A histogram over `[lo, hi)` with uniform bins; out-of-range samples are
/// clamped into the first/last bin and counted separately.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty histogram range");
        assert!(bins >= 1, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            self.bins[0] += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            let last = self.bins.len() - 1;
            self.bins[last] += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Merge another histogram with the same binning (parallel trial
    /// aggregation: each worker fills a private histogram, partials merge
    /// exactly — counts are integers, so merge order never matters).
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram merge requires identical binning"
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples (including clamped ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn clamped(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Render as a compact ASCII bar chart (for experiment logs).
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "{:>10.2} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.5); // bin 0
        h.add(3.0); // bin 1
        h.add(9.99); // bin 4
        assert_eq!(h.bins(), &[1, 1, 0, 0, 1]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(15.0);
        assert_eq!(h.bins(), &[1, 1]);
        assert_eq!(h.clamped(), (1, 1));
    }

    #[test]
    fn boundary_goes_to_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(10.0); // hi is exclusive
        assert_eq!(h.clamped(), (0, 1));
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn render_produces_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for i in 0..10 {
            h.add((i % 4) as f64 + 0.5);
        }
        let s = h.render(20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn merge_equals_sequential_fill() {
        let mut all = Histogram::new(0.0, 10.0, 5);
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        for i in 0..40 {
            let x = (i as f64) * 0.31 - 1.0; // exercises underflow too
            all.add(x);
            if i < 17 { a.add(x) } else { b.add(x) }
        }
        a.merge(&b);
        assert_eq!(a.bins(), all.bins());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.clamped(), all.clamped());
    }

    #[test]
    #[should_panic(expected = "identical binning")]
    fn merge_rejects_mismatched_binning() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 4);
        a.merge(&b);
    }
}
