//! Total-variation distance between discrete distributions.
//!
//! The fairness claim says the winning-color distribution *equals* the
//! initial-fraction distribution; experiment E4 reports the TV distance
//! `½ Σ_c |P̂(c) − f(c)|` between the empirical winner distribution and
//! the target, which should shrink as `O(1/√N)` in the number of trials.

/// Total-variation distance `½ Σ |p_i − q_i|` between two distributions
/// given as (not necessarily normalized) weight vectors of equal length.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must have mass");
    0.5 * p
        .iter()
        .zip(q)
        .map(|(&a, &b)| (a / sp - b / sq).abs())
        .sum::<f64>()
}

/// TV distance from empirical counts to a target distribution.
pub fn tv_from_counts(counts: &[u64], target: &[f64]) -> f64 {
    let p: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    tv_distance(&p, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert_eq!(tv_distance(&[2.0, 2.0], &[7.0, 7.0]), 0.0); // normalization
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        // p = (0.8, 0.2), q = (0.5, 0.5): TV = ½(0.3 + 0.3) = 0.3.
        assert!((tv_distance(&[0.8, 0.2], &[0.5, 0.5]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let p = [0.1, 0.4, 0.5];
        let q = [0.3, 0.3, 0.4];
        assert!((tv_distance(&p, &q) - tv_distance(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let p = [0.1, 0.9];
        let q = [0.5, 0.5];
        let r = [0.9, 0.1];
        assert!(tv_distance(&p, &r) <= tv_distance(&p, &q) + tv_distance(&q, &r) + 1e-12);
    }

    #[test]
    fn counts_are_normalized() {
        // 80/20 counts vs uniform target.
        let d = tv_from_counts(&[80, 20], &[0.5, 0.5]);
        assert!((d - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let d = tv_distance(&[1.0, 0.0, 0.0], &[0.0, 0.5, 0.5]);
        assert!(d <= 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = tv_distance(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "must have mass")]
    fn zero_mass_panics() {
        let _ = tv_distance(&[0.0, 0.0], &[1.0, 1.0]);
    }
}
