//! Chernoff bounds (paper Lemma 8) and empirical concentration checks.
//!
//! The paper's Lemma 8 states, for `X = Σ Xᵢ` a sum of independent
//! Bernoulli variables with `μ = E[X]`:
//!
//! 1. `Pr(X > (1+δ)μ) < exp(−δ²μ/4)` for `0 < δ ≤ 4`,
//! 2. `Pr(X > (1+δ)μ) < exp(−δμ)` for `δ > 4`,
//! 3. `Pr(X > μ + λ) ≤ exp(−2λ²/n)` for `λ > 0` (Hoeffding form).
//!
//! These drive every "suitable choice of γ" in the analysis. The functions
//! here evaluate the bounds so experiments (E5) can compare measured tail
//! frequencies of vote counts against the analytic guarantees, and so the
//! documentation's γ(α) guidance is computed rather than hand-waved.

/// Upper-tail bound `Pr(X > (1+δ)μ)` from Lemma 8 (cases 1 and 2).
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && delta > 0.0, "invalid Chernoff arguments");
    if delta <= 4.0 {
        (-delta * delta * mu / 4.0).exp()
    } else {
        (-delta * mu).exp()
    }
}

/// Additive Hoeffding bound `Pr(X > μ + λ) ≤ exp(−2λ²/n)` over `n`
/// Bernoulli summands (Lemma 8, case 3).
pub fn hoeffding_upper(n: u64, lambda: f64) -> f64 {
    assert!(n > 0 && lambda > 0.0);
    (-2.0 * lambda * lambda / n as f64).exp()
}

/// Standard multiplicative *lower*-tail bound
/// `Pr(X < (1−δ)μ) < exp(−δ²μ/2)` for `0 < δ < 1` — used to size `q` so
/// every agent receives at least one vote w.h.p.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && (0.0..1.0).contains(&delta));
    (-delta * delta * mu / 2.0).exp()
}

/// The smallest `γ` such that, with `q = γ·log₂ n` voting rounds and an
/// active fraction `1 − α`, a union bound over all `n` agents keeps the
/// probability that *any* agent receives zero votes below `n^{−target}`.
///
/// Derivation: a fixed agent receives no votes with probability
/// `(1 − 1/n)^{(1−α)·n·q} ≈ exp(−(1−α)·q)`. Requiring
/// `n · exp(−(1−α)·q) ≤ n^{−target}` gives
/// `q ≥ (target + 1)·ln n / (1 − α)`, i.e.
/// `γ ≥ (target + 1)·ln 2 / (1 − α)`.
pub fn gamma_for_fault_tolerance(alpha: f64, target: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "α must be in [0, 1)");
    assert!(target > 0.0);
    (target + 1.0) * std::f64::consts::LN_2 / (1.0 - alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_upper_decays_in_mu() {
        let a = chernoff_upper(10.0, 1.0);
        let b = chernoff_upper(100.0, 1.0);
        assert!(b < a);
        assert!((a - (-2.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn chernoff_upper_switches_regime_at_delta_4() {
        // At δ=4 both formulas coincide at exp(-4μ); beyond, the linear
        // exponent is used.
        let mu = 3.0;
        let at4 = chernoff_upper(mu, 4.0);
        assert!((at4 - (-16.0 * mu / 4.0f64).exp()).abs() < 1e-12);
        let beyond = chernoff_upper(mu, 5.0);
        assert!((beyond - (-5.0 * mu).exp()).abs() < 1e-15);
        assert!(beyond < at4);
    }

    #[test]
    fn bounds_are_probabilities() {
        for &(mu, d) in &[(1.0, 0.5), (10.0, 2.0), (100.0, 6.0)] {
            let p = chernoff_upper(mu, d);
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(hoeffding_upper(100, 5.0) <= 1.0);
        assert!(chernoff_lower(50.0, 0.5) <= 1.0);
    }

    #[test]
    fn hoeffding_matches_formula() {
        let p = hoeffding_upper(1000, 50.0);
        assert!((p - (-2.0 * 2500.0 / 1000.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn gamma_grows_with_alpha() {
        let g0 = gamma_for_fault_tolerance(0.0, 1.0);
        let g5 = gamma_for_fault_tolerance(0.5, 1.0);
        let g9 = gamma_for_fault_tolerance(0.9, 1.0);
        assert!(g0 < g5 && g5 < g9);
        // α=0, target=1 ⇒ γ = 2 ln2 ≈ 1.386.
        assert!((g0 - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
        // α=0.5 doubles it.
        assert!((g5 - 2.0 * g0).abs() < 1e-12);
    }

    #[test]
    fn gamma_bound_is_consistent_with_lower_tail() {
        // With q = γ(α,1)·log₂ n the expected votes per agent is
        // (1-α)·q ≥ 2 ln n; the zero-vote probability per agent is then
        // ≤ exp(-2 ln n) = n^{-2}, union bound n^{-1}.
        let n: f64 = 1024.0;
        let alpha = 0.3;
        let gamma = gamma_for_fault_tolerance(alpha, 1.0);
        let q = gamma * n.log2();
        let mu = (1.0 - alpha) * q;
        let p_zero = (-mu).exp(); // (1-1/n)^{(1-α)nq} ≈ e^{-μ}
        assert!(n * p_zero <= 1.0 / n + 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        let _ = gamma_for_fault_tolerance(1.0, 1.0);
    }
}
