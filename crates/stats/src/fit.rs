//! Least-squares fits for scaling laws.
//!
//! The complexity experiments check *shapes*, not constants:
//!
//! * E1 fits `rounds = a·log₂ n + b` (Theorem 4's `O(log n)`);
//! * E2 fits `max_message_bits = a·log₂² n + b`;
//! * E3 compares growth exponents: a log-log fit of `total_bits` vs `n`
//!   should give slope ≈ 1 for the protocol (`n·polylog`) and ≈ 2 for the
//!   all-to-all LOCAL baseline (`Ω(n²)`).
//!
//! [`linear_fit`] is ordinary least squares with `R²`; [`power_fit`] runs
//! it in log-log space to estimate exponents.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 = perfect fit).
    pub r2: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs. Needs ≥ 2 points with
/// distinct `x`.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "x values must not be constant");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0 // constant y perfectly fit by slope 0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Power-law fit `y ≈ c·x^exponent` via OLS in log-log space.
/// All coordinates must be strictly positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Fitted exponent.
    pub exponent: f64,
    /// Fitted multiplicative constant.
    pub constant: f64,
    /// `R²` of the log-log regression.
    pub r2: f64,
}

/// Fit `y = c·x^e` by regressing `ln y` on `ln x`.
pub fn power_fit(points: &[(f64, f64)]) -> PowerFit {
    assert!(
        points.iter().all(|p| p.0 > 0.0 && p.1 > 0.0),
        "power fit needs positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|p| (p.0.ln(), p.1.ln())).collect();
    let lf = linear_fit(&logs);
    PowerFit {
        exponent: lf.slope,
        constant: lf.intercept.exp(),
        r2: lf.r2,
    }
}

/// Convenience: fit `y = a·log₂(n) + b` over `(n, y)` pairs.
pub fn log_fit(points: &[(f64, f64)]) -> LinearFit {
    let transformed: Vec<(f64, f64)> = points.iter().map(|p| (p.0.log2(), p.1)).collect();
    linear_fit(&transformed)
}

/// Convenience: fit `y = a·log₂²(n) + b` over `(n, y)` pairs.
pub fn log2_squared_fit(points: &[(f64, f64)]) -> LinearFit {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|p| {
            let l = p.0.log2();
            (l * l, p.1)
        })
        .collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 62.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_good_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                // deterministic "noise"
                let noise = ((i * 37 % 11) as f64 - 5.0) * 0.1;
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 2.0).abs() < 0.05);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let pts = [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)];
        let f = linear_fit(&pts);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn power_law_exponent_recovered() {
        // y = 3 n²
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64, 3.0 * (i as f64) * (i as f64)))
            .collect();
        let f = power_fit(&pts);
        assert!((f.exponent - 2.0).abs() < 1e-10);
        assert!((f.constant - 3.0).abs() < 1e-8);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn log_fit_recovers_log_scaling() {
        // y = 7 log2(n) + 1
        let pts: Vec<(f64, f64)> = (3..14)
            .map(|e| {
                let n = (1usize << e) as f64;
                (n, 7.0 * n.log2() + 1.0)
            })
            .collect();
        let f = log_fit(&pts);
        assert!((f.slope - 7.0).abs() < 1e-10);
        assert!((f.intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log2_squared_fit_recovers_quadratic_log() {
        let pts: Vec<(f64, f64)> = (3..14)
            .map(|e| {
                let n = (1usize << e) as f64;
                let l = n.log2();
                (n, 2.5 * l * l + 4.0)
            })
            .collect();
        let f = log2_squared_fit(&pts);
        assert!((f.slope - 2.5).abs() < 1e-10);
        assert!((f.intercept - 4.0).abs() < 1e-8);
    }

    #[test]
    fn linear_data_looks_linear_not_quadratic_in_log() {
        // Sanity on discrimination: n·log n data fit as a power law has
        // exponent slightly above 1, far from 2.
        let pts: Vec<(f64, f64)> = (6..16)
            .map(|e| {
                let n = (1usize << e) as f64;
                (n, n * n.log2())
            })
            .collect();
        let f = power_fit(&pts);
        assert!(f.exponent > 1.0 && f.exponent < 1.4, "e = {}", f.exponent);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_rejects_single_point() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must not be constant")]
    fn fit_rejects_constant_x() {
        let _ = linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn power_fit_rejects_nonpositive() {
        let _ = power_fit(&[(0.0, 1.0), (1.0, 2.0)]);
    }
}
