//! Streaming summaries: Welford mean/variance, extrema, and quantiles.
//!
//! The experiment harness aggregates thousands of Monte-Carlo trials; the
//! [`Summary`] accumulator is single-pass and numerically stable (Welford
//! 1962), so per-trial metrics can be folded in as they arrive without
//! storing every sample. [`Tally`] is its exact integer sibling
//! (count/sum/min/max over `u64`, merge order irrelevant) for counters
//! like bit totals that overflow f64 precision past 2⁵³. [`Quantiles`]
//! stores samples for exact empirical quantiles where the sample counts
//! are modest.
//!
//! `Summary`, `Tally`, and [`crate::Histogram`] are all *mergeable*:
//! `experiments::parallel::run_trials_fold` workers fill private
//! accumulators and the harness merges the partials, so aggregation
//! memory never scales with the trial count.

/// Single-pass mean/variance/extrema accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Build from an iterator of observations.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(xs: I) -> Self {
        let mut s = Summary::new();
        for x in xs {
            s.add(x);
        }
        s
    }

    /// Merge another summary (parallel aggregation); Chan et al. update.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exact streaming tally of an integer metric: count, sum, min, max over
/// `u64`. Unlike [`Summary`] it never rounds (bit totals exceed 2⁵³ at
/// production scale) and its merge is exactly associative and
/// commutative, so any merge order gives the identical result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Tally {
    fn default() -> Self {
        Tally::new()
    }
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Fold in one observation.
    pub fn add(&mut self, x: u64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another tally (parallel aggregation; exact in any order).
    pub fn merge(&mut self, other: &Tally) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Exact empirical quantiles over stored samples.
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Empty collector.
    pub fn new() -> Self {
        Quantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by the nearest-rank method; `None`
    /// when empty.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&p), "quantile p out of range");
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            self.sorted = true;
        }
        let idx = ((p * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Median shorthand.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_reference() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 7: Σ(x-5)² = 32 ⇒ 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let all = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..37].iter().copied());
        let b = Summary::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_iter([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = Summary::new();
        e.merge(&before);
        assert!((e.mean() - before.mean()).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: huge offset, small spread.
        let offset = 1e9;
        let s = Summary::from_iter([offset + 1.0, offset + 2.0, offset + 3.0]);
        assert!((s.variance() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tally_counts_exactly() {
        let mut t = Tally::new();
        for x in [5u64, 1, 9, 9, 3] {
            t.add(x);
        }
        assert_eq!(t.count(), 5);
        assert_eq!(t.sum(), 27);
        assert_eq!(t.min(), 1);
        assert_eq!(t.max(), 9);
        assert!((t.mean() - 5.4).abs() < 1e-12);
    }

    #[test]
    fn tally_merge_is_order_independent_and_exact() {
        // Sums past 2^53 are exact in u64 where f64 would round.
        let big = (1u64 << 53) + 1;
        let mut a = Tally::new();
        a.add(big);
        let mut b = Tally::new();
        b.add(1);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.sum(), big + 1);
        let mut e = Tally::new();
        e.merge(&ab);
        assert_eq!(e, ab, "merging into empty is identity");
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut q = Quantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            q.add(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.9), Some(5.0));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn quantiles_empty() {
        let mut q = Quantiles::new();
        assert_eq!(q.median(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn quantiles_tolerate_unsorted_insertion() {
        let mut q = Quantiles::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            q.add(x);
        }
        assert_eq!(q.median(), Some(3.0));
        q.add(0.0);
        assert_eq!(q.quantile(0.0), Some(0.0));
    }
}
