//! Adversarial-run benchmarks (experiments E7/E8): one deviating trial
//! per strategy in the suite, plus the paired honest control. Deviating
//! runs cost essentially the same as honest ones — the attacks add no
//! asymptotic overhead — which is itself worth demonstrating: the
//! equilibrium experiments' cost is dominated by trial count, not by
//! adversarial machinery.

use adversary::coalition::{select_members, CoalitionSelection};
use adversary::harness::{coalition_colors, run_attack_trial};
use adversary::strategies::standard_attacks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfc_core::runner::{run_protocol, ColorSpec, RunConfig};
use std::hint::black_box;

fn attack_config(n: usize, t: usize) -> (RunConfig, Vec<u32>) {
    let members = select_members(n, t, CoalitionSelection::Random, 7);
    let mut cfg = RunConfig::builder(n).gamma(3.0).build();
    cfg.colors = ColorSpec::Explicit(coalition_colors(n, &members));
    (cfg, members)
}

fn bench_honest_control(c: &mut Criterion) {
    let (cfg, _) = attack_config(128, 8);
    c.bench_function("e07_honest_control_n128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_protocol(&cfg, seed))
        });
    });
}

fn bench_each_strategy(c: &mut Criterion) {
    let (cfg, members) = attack_config(128, 8);
    let mut group = c.benchmark_group("e07_attack_trial_n128_t8");
    for strategy in standard_attacks() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(run_attack_trial(&cfg, strategy.as_ref(), &members, seed))
                });
            },
        );
    }
    group.finish();
}

fn bench_coalition_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_spy_tune_coalition_size");
    let strategy = adversary::strategies::spy_tune::SpyAndTune;
    for t in [1usize, 8, 32] {
        let (cfg, members) = attack_config(128, t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_attack_trial(&cfg, &strategy, &members, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_honest_control,
    bench_each_strategy,
    bench_coalition_scaling
);
criterion_main!(benches);
