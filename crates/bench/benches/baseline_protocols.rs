//! Baseline-protocol benchmarks (experiments E3/E4b/E8/E10): the LOCAL
//! all-to-all fair election, the naive min-badge election, push/pull
//! rumor spreading, and 3-majority plurality dynamics.

use baselines::local_fair::run_local_fair;
use baselines::naive_min_id::run_naive_election;
use baselines::plurality::run_plurality;
use baselines::rumor::{spread_rumor, Mechanism};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::fault::FaultPlan;
use gossip_net::topology::Topology;
use std::hint::black_box;

fn bench_local_fair(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_local_allpairs");
    for n in [64usize, 256, 1024] {
        let colors: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_local_fair(n, &colors, seed))
            });
        });
    }
    group.finish();
}

fn bench_naive_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_naive_election");
    for n in [64usize, 256] {
        let colors: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_naive_election(n, &colors, &[], 3.0, seed))
            });
        });
    }
    group.finish();
}

fn bench_rumor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_rumor_spreading");
    let n = 1024;
    for (name, mech) in [
        ("push", Mechanism::Push),
        ("pull", Mechanism::Pull),
        ("push-pull", Mechanism::PushPull),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mech, |b, &mech| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(spread_rumor(
                    Topology::complete(n),
                    FaultPlan::none(n),
                    mech,
                    seed,
                    512,
                ))
            });
        });
    }
    group.finish();
}

fn bench_plurality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_plurality_dynamics");
    let n = 256;
    let colors: Vec<u32> = (0..n).map(|i| if i % 3 == 0 { 1 } else { 0 }).collect();
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_plurality(n, &colors, seed, 4000))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_local_fair,
    bench_naive_election,
    bench_rumor,
    bench_plurality
);
criterion_main!(benches);
