//! End-to-end protocol benchmarks (experiment E1's time-domain view).
//!
//! One full run of protocol `P` — all four communicating phases plus
//! Verification — at several network sizes, under the synchronous and the
//! asynchronous (sequential) scheduler, and with a faulty minority. The
//! ids mirror the experiment index in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_net::fault::Placement;
use rfc_core::asynchronous::run_protocol_async;
use rfc_core::runner::{run_protocol, RunConfig};
use std::hint::black_box;

fn bench_sync_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_full_run_sync");
    for n in [64usize, 256, 1024] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_protocol(cfg, seed))
            });
        });
    }
    group.finish();
}

fn bench_faulty_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_full_run_faults");
    let n = 256;
    for alpha in [0.0f64, 0.3, 0.6] {
        let cfg = RunConfig::builder(n)
            .gamma(4.0)
            .colors(vec![n - n / 2, n / 2])
            .faults(alpha, Placement::Random { seed: 1 })
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha_{alpha}")),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(run_protocol(cfg, seed))
                });
            },
        );
    }
    group.finish();
}

fn bench_async_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_full_run_async");
    group.sample_size(10); // async runs are Θ(n·q) ticks per phase
    for n in [32usize, 64] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_protocol_async(cfg, seed, 2))
            });
        });
    }
    group.finish();
}

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_leader_election");
    let n = 256;
    let cfg = rfc_core::election::election_config(n, 3.0);
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(rfc_core::election::elect_leader(&cfg, seed))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sync_runs,
    bench_faulty_runs,
    bench_async_runs,
    bench_leader_election
);
criterion_main!(benches);
