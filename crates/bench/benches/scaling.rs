//! Scaling benchmarks (experiments E2/E3 in the time domain, plus the
//! parallel-harness speedup): how simulation cost grows with `n`, and how
//! Monte-Carlo throughput scales with worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::parallel::run_trials;
use rfc_core::runner::{run_protocol, RunConfig};
use std::hint::black_box;

fn bench_n_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_e03_run_cost_vs_n");
    group.sample_size(10);
    for n in [128usize, 512, 2048] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
        // Per-run message count ≈ n·q per phase; throughput in agents.
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_protocol(cfg, seed))
            });
        });
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_parallel_speedup");
    group.sample_size(10);
    let trials = 32usize;
    let cfg = RunConfig::builder(128).gamma(3.0).colors(vec![64, 64]).build();
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(run_trials(trials, threads, 9, |seed| {
                        run_protocol(&cfg, seed).outcome.is_consensus()
                    }))
                })
            },
        );
    }
    group.finish();
}

fn bench_gamma_cost(c: &mut Criterion) {
    // The γ(α) sizing rule (E6) trades rounds for fault tolerance; this
    // shows the linear-in-γ simulation cost of that trade.
    let mut group = c.benchmark_group("e06_cost_vs_gamma");
    let n = 256;
    for gamma in [2.0f64, 4.0, 8.0] {
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![128, 128])
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gamma_{gamma}")),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(run_protocol(cfg, seed))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_n_scaling, bench_parallel_speedup, bench_gamma_cost);
criterion_main!(benches);
