//! Dispatch head-to-head: the Monte-Carlo hot path through its three
//! agent representations —
//!
//! * **boxed_dyn_rebuild** — the legacy pipeline: a fresh
//!   `Vec<Box<dyn ConsensusAgent>>` built per trial, every agent call an
//!   indirect call through a vtable;
//! * **enum_fresh** — the monomorphic `AgentSlot` plane, network still
//!   rebuilt per trial (isolates dispatch + inline-storage gains);
//! * **enum_arena** — `AgentSlot` plane plus a reusable `TrialArena`
//!   (adds cross-trial allocation reuse: the full fast path E7/E14 run).
//!
//! All three arms produce bit-identical `RunReport`s for the same
//! `(cfg, seed)` — pinned by rfc-core's `dispatch_equivalence` tests and
//! asserted again here on the first seed — so any time difference is
//! pure representation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rfc_core::runner::{run_protocol, run_protocol_boxed, RunConfig, TrialArena};
use std::hint::black_box;

fn cfg_for(n: usize) -> RunConfig {
    RunConfig::builder(n)
        .gamma(3.0)
        .colors(vec![n - n / 2, n / 2])
        .build()
}

fn bench_dispatch(c: &mut Criterion) {
    for n in [256usize, 1024] {
        let cfg = cfg_for(n);
        let agent_rounds = (n * cfg.params().total_rounds()) as u64;

        // Cross-arm sanity: identical simulations, element for element.
        let a = run_protocol_boxed(&cfg, 1);
        let b = run_protocol(&cfg, 1);
        let mut arena = TrialArena::new();
        arena.run_protocol(&cfg, 0); // warm the arena, then compare a reused trial
        let c_rep = arena.run_protocol(&cfg, 1);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
        assert_eq!(b.metrics.bits_sent, c_rep.metrics.bits_sent);
        assert_eq!(b.decisions, c_rep.decisions);

        let mut group = c.benchmark_group(format!("dispatch_full_trial_n{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(agent_rounds));
        group.bench_with_input(BenchmarkId::new("boxed_dyn_rebuild", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_protocol_boxed(&cfg, seed).rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("enum_fresh", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_protocol(&cfg, seed).rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("enum_arena", n), &n, |b, _| {
            let mut arena = TrialArena::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(arena.run_protocol(&cfg, seed).rounds)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
