//! Throughput benchmarks for the two layers the streaming pipeline
//! rides on: the round engine (`Network::step` cost vs `n`) and the
//! Monte-Carlo harness (buffered `run_trials` vs streaming
//! `run_trials_fold`), so the fold path's speed and O(threads) memory
//! behavior are *measured*, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::parallel::{run_trials, run_trials_fold, run_trials_fold_with_stats};
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::AgentId;
use gossip_net::network::Network;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;
use rfc_core::runner::{run_protocol, RunConfig};
use std::hint::black_box;

/// Minimal wire message: a 64-bit ping.
#[derive(Clone)]
struct Ping;
impl MsgSize for Ping {
    fn size_bits(&self, _env: &SizeEnv) -> u64 {
        64
    }
}

/// Pushes to the next agent on the ring of ids — every agent acts every
/// round, so one `step()` is `n` sends + `n` deliveries.
struct RingPusher {
    id: AgentId,
    n: usize,
}
impl Agent<Ping> for RingPusher {
    fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<Ping>> {
        let to = (self.id as usize + 1) % self.n;
        Some(Op::push(to as AgentId, Ping))
    }
}

fn bench_round_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_engine_step_vs_n");
    group.sample_size(10);
    for n in [1024usize, 8192, 65536] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let agents: Vec<RingPusher> =
                (0..n).map(|id| RingPusher { id: id as AgentId, n }).collect();
            let mut net = Network::new(
                Topology::complete(n),
                SizeEnv::for_n(n),
                agents,
                FaultPlan::none(n),
            );
            b.iter(|| {
                net.step();
                black_box(net.round())
            });
        });
    }
    group.finish();
}

fn bench_trial_fold(c: &mut Criterion) {
    // Harness overhead head-to-head: the buffered Vec<Mutex<Option<T>>>
    // path against the streaming block-fold path, light per-trial work so
    // the harness cost dominates.
    let mut group = c.benchmark_group("trial_fold_harness_overhead");
    group.sample_size(10);
    let trials = 8192usize;
    for threads in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(
            BenchmarkId::new("buffered_run_trials", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let v = run_trials(trials, threads, 7, |seed| seed.wrapping_mul(0x9E37));
                    black_box(v.iter().copied().fold(0u64, u64::wrapping_add))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_fold", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(run_trials_fold(
                        trials,
                        threads,
                        7,
                        || 0u64,
                        |acc, _i, seed| *acc = acc.wrapping_add(seed.wrapping_mul(0x9E37)),
                        |a, b| *a = a.wrapping_add(b),
                    ))
                })
            },
        );
    }
    group.finish();

    // Same comparison under real per-trial work (full protocol runs), and
    // a printed witness that the fold window stayed O(threads).
    let mut group = c.benchmark_group("trial_fold_protocol_runs");
    group.sample_size(10);
    let cfg = RunConfig::builder(64).gamma(3.0).colors(vec![32, 32]).build();
    let trials = 64usize;
    let threads = 8usize;
    group.throughput(Throughput::Elements(trials as u64));
    group.bench_function("buffered_run_trials", |b| {
        b.iter(|| {
            let v = run_trials(trials, threads, 5, |seed| {
                run_protocol(&cfg, seed).outcome.is_consensus() as u64
            });
            black_box(v.iter().sum::<u64>())
        })
    });
    group.bench_function("streaming_fold", |b| {
        b.iter(|| {
            black_box(run_trials_fold(
                trials,
                threads,
                5,
                || 0u64,
                |acc, _i, seed| *acc += run_protocol(&cfg, seed).outcome.is_consensus() as u64,
                |a, b| *a += b,
            ))
        })
    });
    group.finish();
    let (_, stats) = run_trials_fold_with_stats(
        4096,
        threads,
        5,
        || 0u64,
        |acc, _i, seed| *acc = acc.wrapping_add(seed),
        |a, b| *a = a.wrapping_add(b),
    );
    println!(
        "fold window witness: {} blocks, peak {} pending partials (bound 3·threads = {})",
        stats.blocks,
        stats.peak_pending,
        3 * threads
    );
}

fn bench_intra_trial(c: &mut Criterion) {
    // The staged engine's intra-trial axis: one protocol trial, sharded
    // plan/apply. Shard counts beyond the core count still measure the
    // staging overhead (and the 1-shard row measures the staged engine
    // against the monolithic baseline below it).
    let mut group = c.benchmark_group("intra_trial_sharding");
    group.sample_size(10);
    let n = 8192usize;
    let cfg_seq = RunConfig::builder(n).gamma(3.0).colors(vec![n / 2, n / 2]).build();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("monolithic_step", |b| {
        b.iter(|| black_box(run_protocol(&cfg_seq, 11).rounds))
    });
    for shards in [1usize, 2, 4] {
        let cfg = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![n / 2, n / 2])
            .sharded(shards)
            .build();
        group.bench_with_input(
            BenchmarkId::new("staged_per_agent", shards),
            &shards,
            |b, _| b.iter(|| black_box(run_protocol(&cfg, 11).rounds)),
        );
    }
    group.finish();

    // Composition: shards within a trial × arenas across trials — the
    // two parallelism layers the workspace now has, working together.
    let mut group = c.benchmark_group("intra_trial_x_arena_composition");
    group.sample_size(10);
    let n = 2048usize;
    let trials = 8usize;
    let cfg = RunConfig::builder(n)
        .gamma(3.0)
        .colors(vec![n / 2, n / 2])
        .sharded(2)
        .build();
    group.throughput(Throughput::Elements((n * trials) as u64));
    group.bench_function("sharded_trials_through_one_arena", |b| {
        use rfc_core::runner::TrialArena;
        b.iter(|| {
            let mut arena = TrialArena::new();
            let mut consensus = 0u64;
            for t in 0..trials {
                consensus += arena
                    .run_protocol(&cfg, 100 + t as u64)
                    .outcome
                    .is_consensus() as u64;
            }
            black_box(consensus)
        })
    });
    group.finish();
}

fn bench_soa_agent_plane(c: &mut Criterion) {
    // The SoA agent plane head-to-head: the monomorphic slot
    // representation (bitset flags, flat vote lanes, arena-reusable
    // scratch) against the boxed-dyn escape hatch, which carries the
    // same protocol state behind a vtable and per-trial allocations.
    // Both arms produce bit-identical reports
    // (crates/core/tests/dispatch_equivalence.rs); the ratio is pure
    // layout + dispatch + allocation cost.
    use rfc_core::runner::run_protocol_boxed;

    let mut group = c.benchmark_group("soa_agent_plane_vs_boxed");
    group.sample_size(10);
    for n in [1024usize, 4096] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n / 2, n / 2]).build();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("soa_slots", n), &n, |b, _| {
            b.iter(|| black_box(run_protocol(&cfg, 11).rounds))
        });
        group.bench_with_input(BenchmarkId::new("boxed_dyn", n), &n, |b, _| {
            b.iter(|| black_box(run_protocol_boxed(&cfg, 11).rounds))
        });
    }
    group.finish();
}

fn bench_ledger_build(c: &mut Criterion) {
    // CSR delivery-ledger construction, sequential vs parallel: the
    // staged engine's exchange stage builds per-round push/query CSR
    // ledgers either in one pass (1 shard) or as per-shard segments
    // merged by offset-prefix-sum (>1 shard). Whole-run wall time is
    // the benchmark; the stage clock isolates the exchange share as a
    // printed witness (plan/apply are identical code in both arms).
    let mut group = c.benchmark_group("ledger_build_seq_vs_par");
    group.sample_size(10);
    let n = 8192usize;
    let mut exchange_us = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![n / 2, n / 2])
            .sharded(threads)
            .time_stages(true)
            .build();
        cfg.shard_floor = Some(0);
        group.throughput(Throughput::Elements(n as u64));
        let label = if threads == 1 { "sequential" } else { "parallel" };
        group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, _| {
            b.iter(|| black_box(run_protocol(&cfg, 11).rounds))
        });
        let st = run_protocol(&cfg, 11)
            .stage_times
            .expect("staged run with time_stages records stage clocks");
        exchange_us.push((threads, st.exchange_us, st.total_us()));
    }
    group.finish();
    for (threads, ex, total) in exchange_us {
        println!(
            "ledger-build witness: {threads} shard(s) — exchange {ex} µs of {total} µs total ({:.1}%)",
            100.0 * ex as f64 / total.max(1) as f64
        );
    }
}

fn bench_serial_sections(c: &mut Criterion) {
    // The three per-round sections the staged engine drained, isolated
    // head-to-head at 1/2/4/8 shards: op-order metering vs per-shard
    // Tally merge, sequential op-log append vs pre-sized scatter, and
    // serial plan-buffer concat vs offset scatter. `rfc-bench serial`
    // runs the same comparison as a gate-compatible table; this group is
    // the criterion-grade version with per-arm statistics.
    use gossip_net::metrics::{Metrics, Tally};
    use gossip_net::oplog::{OpEvent, OpKind, OpLog};
    use gossip_net::rng::DetRng;
    use gossip_net::ScopedPool;

    let n = 1usize << 16;
    let mut rng = DetRng::seeded(0x5E41A1, 1);
    let bits: Vec<u64> = (0..n).map(|_| rng.below(100_000)).collect();
    let events: Vec<OpEvent> = (0..n)
        .map(|i| OpEvent {
            round: (i / 4096) as u32,
            kind: if rng.index(2) == 0 { OpKind::Push } else { OpKind::Pull },
            from: rng.index(4096) as u32,
            to: rng.index(4096) as u32,
        })
        .collect();

    let mut group = c.benchmark_group("serial_sections");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("metering_serial", |b| {
        b.iter(|| {
            let mut m = Metrics::default();
            m.enter_phase("bench");
            for &x in &bits {
                m.record_message(x);
            }
            black_box(m.bits_sent)
        })
    });
    group.bench_function("oplog_append_serial", |b| {
        b.iter(|| {
            let mut log = OpLog::new();
            for e in &events {
                log.record(e.round, e.kind, e.from, e.to);
            }
            black_box(log.len())
        })
    });
    group.bench_function("concat_serial", |b| {
        let mut ops: Vec<OpEvent> = Vec::with_capacity(n);
        b.iter(|| {
            ops.clear();
            for part in events.chunks(n.div_ceil(4)) {
                ops.extend_from_slice(part);
            }
            black_box(ops.len())
        })
    });
    for shards in [1usize, 2, 4, 8] {
        let chunk = n.div_ceil(shards).max(1);
        group.bench_with_input(
            BenchmarkId::new("metering_sharded", shards),
            &shards,
            |b, &shards| {
                let mut pool = ScopedPool::new(shards);
                b.iter(|| {
                    let mut m = Metrics::default();
                    m.enter_phase("bench");
                    let mut tallies = vec![Tally::default(); shards];
                    pool.scope(|s| {
                        for (t, part) in tallies.iter_mut().zip(bits.chunks(chunk)) {
                            s.spawn(move || {
                                for &x in part {
                                    t.record(x);
                                }
                            });
                        }
                    });
                    for t in &tallies {
                        m.record_bulk(t, 0);
                    }
                    black_box(m.bits_sent)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("oplog_scatter", shards),
            &shards,
            |b, _| {
                let mut pool = ScopedPool::new(shards);
                b.iter(|| {
                    let mut log = OpLog::new();
                    let tail = log.scatter_tail(n);
                    pool.scope(|s| {
                        for (dst, src) in tail.chunks_mut(chunk).zip(events.chunks(chunk)) {
                            s.spawn(move || {
                                for (slot, e) in dst.iter_mut().zip(src) {
                                    *slot = *e;
                                }
                            });
                        }
                    });
                    black_box(log.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("concat_scatter", shards),
            &shards,
            |b, _| {
                let mut pool = ScopedPool::new(shards);
                let mut ops: Vec<OpEvent> = Vec::with_capacity(n);
                b.iter(|| {
                    ops.clear();
                    let spare = &mut ops.spare_capacity_mut()[..n];
                    pool.scope(|s| {
                        for (dst, src) in spare.chunks_mut(chunk).zip(events.chunks(chunk)) {
                            s.spawn(move || {
                                for (slot, e) in dst.iter_mut().zip(src) {
                                    slot.write(*e);
                                }
                            });
                        }
                    });
                    // SAFETY: the chunks partition 0..n; every slot written.
                    unsafe { ops.set_len(n) };
                    black_box(ops.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_pool_spawn(c: &mut Criterion) {
    // Isolates the per-round worker-spawn overhead the staged engine
    // used to pay: each "round" dispatches `workers` trivial jobs,
    // either through a freshly spawned `std::thread::scope` (the old
    // per-round cost) or through one reusable `ScopedPool` whose
    // threads persist across rounds (what `run_staged` does now). The
    // job body is a single atomic increment, so the gap between the two
    // arms *is* the spawn/join overhead.
    use gossip_net::ScopedPool;
    use std::sync::atomic::{AtomicU64, Ordering};

    let mut group = c.benchmark_group("scoped_pool_spawn_overhead");
    group.sample_size(10);
    let rounds = 256usize;
    for workers in [2usize, 4, 8] {
        group.throughput(Throughput::Elements(rounds as u64));
        group.bench_with_input(
            BenchmarkId::new("respawned_thread_scope", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let acc = AtomicU64::new(0);
                    for _ in 0..rounds {
                        std::thread::scope(|s| {
                            for _ in 0..workers {
                                s.spawn(|| {
                                    acc.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                    black_box(acc.load(Ordering::Relaxed))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reusable_scoped_pool", workers),
            &workers,
            |b, &workers| {
                let mut pool = ScopedPool::new(workers);
                b.iter(|| {
                    let acc = AtomicU64::new(0);
                    for _ in 0..rounds {
                        pool.scope(|s| {
                            for _ in 0..workers {
                                s.spawn(|| {
                                    acc.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                    black_box(acc.load(Ordering::Relaxed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_engine,
    bench_trial_fold,
    bench_intra_trial,
    bench_soa_agent_plane,
    bench_ledger_build,
    bench_serial_sections,
    bench_pool_spawn
);
criterion_main!(benches);
