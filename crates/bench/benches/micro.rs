//! Hot-path microbenchmarks: the per-operation costs that determine how
//! large a network the simulator can sweep. Certificate construction and
//! the two Verification checks dominate per-agent work; peer sampling and
//! seed derivation dominate per-op simulator overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::rng::{derive_seed, DetRng};
use gossip_net::topology::Topology;
use rfc_core::certificate::{sum_votes_mod, CertData, VoteRec};
use rfc_core::ledger::Ledger;
use rfc_core::msg::IntentEntry;
use std::hint::black_box;

fn mk_votes(k: usize) -> Vec<VoteRec> {
    (0..k)
        .map(|i| VoteRec {
            voter: (i * 37 % 256) as u32,
            round: (i % 24) as u16,
            value: (i as u64).wrapping_mul(0x9E37_79B9) % (1u64 << 40),
        })
        .collect()
}

fn bench_certificate_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_cert_build");
    for k in [8usize, 24, 64] {
        let votes = mk_votes(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &votes, |b, votes| {
            b.iter(|| black_box(CertData::build(3, 1, votes.clone(), 1 << 40)));
        });
    }
    group.finish();
}

fn bench_sum_votes(c: &mut Criterion) {
    let votes = mk_votes(64);
    c.bench_function("micro_sum_votes_64", |b| {
        b.iter(|| black_box(sum_votes_mod(&votes, 1 << 40)))
    });
}

fn bench_ledger_check(c: &mut Criterion) {
    // A ledger with q = 24 declarations of q entries each, checked
    // against a certificate with 24 votes — the realistic verification
    // load at n = 256.
    let q = 24usize;
    let mut ledger = Ledger::new();
    for v in 0..q as u32 {
        let intents: rfc_core::msg::IntentList = (0..q)
            .map(|i| IntentEntry {
                value: (v as u64 * 1000 + i as u64) % (1 << 40),
                target: ((v as usize + i) % 256) as u32,
            })
            .collect::<Vec<_>>()
            .into();
        ledger.declare(v, 0, intents);
    }
    let cert = CertData::build(300, 0, mk_votes(q), 1 << 40);
    c.bench_function("micro_ledger_check_q24", |b| {
        b.iter(|| black_box(ledger.check_certificate(&cert)))
    });
}

fn bench_peer_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_sample_peer");
    let complete = Topology::complete(4096);
    let sparse = Topology::random_regular(4096, 24, 3);
    let mut rng = DetRng::seeded(1, 1);
    group.bench_function("complete_4096", |b| {
        b.iter(|| black_box(complete.sample_peer(77, &mut rng)))
    });
    group.bench_function("regular24_4096", |b| {
        b.iter(|| black_box(sparse.sample_peer(77, &mut rng)))
    });
    group.finish();
}

fn bench_seed_derivation(c: &mut Criterion) {
    c.bench_function("micro_derive_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(derive_seed(0xABCD, i))
        })
    });
}

fn bench_network_round(c: &mut Criterion) {
    // One synchronous round of the full protocol at n = 1024 (commitment
    // phase: n pulls + n replies).
    use gossip_net::fault::FaultPlan;
    use gossip_net::size::SizeEnv;
    use rfc_core::engine::{ConsensusAgent, HonestAgent, ProtocolCore};
    use rfc_core::Params;

    c.bench_function("micro_commitment_round_n1024", |b| {
        b.iter_with_setup(
            || {
                let n = 1024;
                let params = Params::new(n, 3.0);
                let agents: Vec<Box<dyn ConsensusAgent>> = (0..n as u32)
                    .map(|id| {
                        let core = ProtocolCore::new(
                            id,
                            params,
                            params.sync_schedule(),
                            id % 2,
                            DetRng::seeded(5, id as u64),
                        );
                        Box::new(HonestAgent::new(core)) as Box<dyn ConsensusAgent>
                    })
                    .collect();
                gossip_net::network::Network::new(
                    Topology::complete(n),
                    SizeEnv::for_n(n),
                    agents,
                    FaultPlan::none(n),
                )
            },
            |mut net| {
                net.step();
                black_box(net.metrics().messages_sent)
            },
        )
    });
}

criterion_group!(
    benches,
    bench_certificate_build,
    bench_sum_votes,
    bench_ledger_check,
    bench_peer_sampling,
    bench_seed_derivation,
    bench_network_round
);
criterion_main!(benches);
