//! The perf-regression gate: compare a committed `BENCH_scale.json`
//! against freshly measured tables and fail on throughput drops.
//!
//! `BENCH_scale.json` is a concatenation of single-line JSON objects,
//! one per experiment table, each in the exact shape
//! `experiments::Table::to_json` emits: `{"title", "columns", "rows",
//! "notes"}` with every value a string. This module carries its own
//! dependency-free parser for that subset (strict on structure, full
//! string-escape support), a comparator keyed on *(experiment id, row
//! identity)*, and the policy knob CI applies:
//!
//! * **experiment id** — the title up to the first `" — "` separator
//!   (`"E16 — single-trial scaling …"` → `E16`), so cosmetic title edits
//!   don't orphan a baseline;
//! * **row identity** — the cells of every column *before* the first
//!   throughput column, which by table convention are the configuration
//!   columns (`n`, `q`, `shards`, `outcome`, …);
//! * **throughput columns** — headers containing `"rounds/s"` or
//!   `"instances/s"` (the instance-plane sweep, E17); each is compared
//!   as `fresh ≥ committed · (1 − tolerance)`.
//!
//! Tolerance is a fraction (CI reads `RFC_GATE_TOLERANCE`, default
//! `0.20`). Missing tables, missing rows, and unparseable throughput
//! cells fail the gate — silent shrinkage of coverage must not read as
//! a pass. Rows or tables present only in the *fresh* set are reported
//! as notes (new coverage is fine; the baseline just hasn't caught up).
//! One exception: a committed table whose title marks it as a
//! **landmark** (see [`is_landmark_table`]) is a manually captured
//! milestone — e.g. the 10⁷-agent E16 row, ~107 min of compute — that
//! no CI capture reproduces; when absent from the fresh set it is
//! skipped with a note instead of failing. When a landmark table *is*
//! present in the fresh set (the selftest's regressed copy, or a
//! deliberate re-capture), its cells are gated like any other.

/// One parsed experiment table (the `Table::to_json` schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableData {
    /// Table caption, e.g. `"E16 — single-trial scaling …"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// String cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl TableData {
    /// The experiment id: the title up to the first `" — "`.
    pub fn id(&self) -> &str {
        self.title.split(" — ").next().unwrap_or(&self.title).trim()
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader (strings / arrays / objects; atoms kept as text)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> PResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> PResult<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => Err(self.err("expected a string, array, or object")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> PResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the raw continuation bytes.
                _ => {
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> PResult<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            self.pos += 1;
            v = v * 16
                + (b as char)
                    .to_digit(16)
                    .ok_or_else(|| self.err("non-hex in \\u escape"))?;
        }
        Ok(v)
    }

    fn array(&mut self) -> PResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> PResult<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn str_array(v: &Json, what: &str) -> PResult<Vec<String>> {
    match v {
        Json::Arr(items) => items
            .iter()
            .map(|i| match i {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("{what}: expected an array of strings")),
            })
            .collect(),
        _ => Err(format!("{what}: expected an array")),
    }
}

fn table_from_json(v: Json) -> PResult<TableData> {
    let Json::Obj(fields) = v else {
        return Err("table: expected a JSON object".into());
    };
    let mut t = TableData {
        title: String::new(),
        columns: Vec::new(),
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let mut seen_title = false;
    for (key, val) in fields {
        match key.as_str() {
            "title" => match val {
                Json::Str(s) => {
                    t.title = s;
                    seen_title = true;
                }
                _ => return Err("title: expected a string".into()),
            },
            "columns" => t.columns = str_array(&val, "columns")?,
            "rows" => match val {
                Json::Arr(rows) => {
                    t.rows = rows
                        .iter()
                        .map(|r| str_array(r, "row"))
                        .collect::<PResult<_>>()?;
                }
                _ => return Err("rows: expected an array".into()),
            },
            "notes" => t.notes = str_array(&val, "notes")?,
            other => return Err(format!("unknown table field {other:?}")),
        }
    }
    if !seen_title {
        return Err("table: missing title".into());
    }
    for (i, row) in t.rows.iter().enumerate() {
        if row.len() != t.columns.len() {
            return Err(format!(
                "table {:?}: row {} has {} cells for {} columns",
                t.title,
                i,
                row.len(),
                t.columns.len()
            ));
        }
    }
    Ok(t)
}

/// Parse one `Table::to_json` object.
pub fn parse_table(input: &str) -> PResult<TableData> {
    let mut r = Reader::new(input);
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing content after table"));
    }
    table_from_json(v)
}

/// Parse a concatenated stream of table objects (the `BENCH_scale.json`
/// layout: one object per line, but any whitespace separation works).
pub fn parse_tables(input: &str) -> PResult<Vec<TableData>> {
    let mut r = Reader::new(input);
    let mut out = Vec::new();
    loop {
        r.skip_ws();
        if r.pos == r.bytes.len() {
            break;
        }
        out.push(table_from_json(r.value()?)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------

/// Result of gating fresh tables against a committed baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Number of (row, throughput-column) comparisons performed.
    pub checks: usize,
    /// Violations: regressions beyond tolerance, vanished tables/rows,
    /// unparseable throughput cells. Non-empty ⇒ the gate fails.
    pub failures: Vec<String>,
    /// Informational lines: improvements beyond tolerance (a nudge to
    /// refresh the baseline), coverage present only in the fresh set.
    pub notes: Vec<String>,
}

impl GateReport {
    /// Does the gate pass?
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Is this column a gated throughput column (floor: fresh must not
/// drop below the committed value beyond tolerance)? `ops/s` also
/// matches the serial-section micro-bench's `Mops/s` columns.
pub fn is_gated_column(header: &str) -> bool {
    header.contains("rounds/s")
        || header.contains("instances/s")
        || header.contains("msgs/s")
        || header.contains("ops/s")
}

/// Is this column a gated memory column (ceiling: fresh must not *rise*
/// above the committed value beyond tolerance)? Matches the `ΔRSS MiB`
/// columns the experiment tables emit.
pub fn is_memory_column(header: &str) -> bool {
    header.contains("ΔRSS")
}

/// True when a committed table is a manually captured **landmark** —
/// a milestone run too expensive for CI to reproduce (the convention
/// is "landmark" in the title, e.g.
/// `"E16L — 10⁷-agent landmark (manual capture)"`). Landmark tables
/// absent from the fresh set are skipped with a note instead of
/// failing the coverage check; present ones are gated normally.
pub fn is_landmark_table(title: &str) -> bool {
    title.contains("landmark")
}

/// Absolute slack (MiB) added on top of the relative memory tolerance:
/// small rows measure fractions of a MiB where a relative band is
/// meaningless noise-gating; the slack absorbs allocator jitter without
/// hiding a real regression (which shows up in whole-MiB multiples).
pub const MEM_SLACK_MIB: f64 = 8.0;

/// The row-identity cells: everything before the first gated
/// (throughput or memory) column — by table convention, the
/// configuration columns.
fn row_key(columns: &[String], row: &[String]) -> String {
    let id_cols = columns
        .iter()
        .position(|c| is_gated_column(c) || is_memory_column(c))
        .unwrap_or(columns.len());
    row[..id_cols].join("/")
}

/// Compare fresh tables against the committed baseline: every throughput
/// cell of every committed row must satisfy
/// `fresh ≥ committed · (1 − tolerance)`, and every memory (`ΔRSS`)
/// cell must satisfy
/// `fresh ≤ committed · (1 + tolerance) + MEM_SLACK_MIB`.
///
/// The fresh set may contain *several captures* of the same table (same
/// id): each cell is gated against the **best** sample — the max for
/// throughput, the min for memory. Both measurements are one-sided: a
/// busy machine reads throughput low and memory high, never the
/// opposite, so best-of-N damps flaky failures without ever hiding a
/// real regression that shows in every sample.
pub fn compare(committed: &[TableData], fresh: &[TableData], tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    for base in committed {
        let curs: Vec<&TableData> = fresh.iter().filter(|t| t.id() == base.id()).collect();
        if curs.is_empty() {
            if is_landmark_table(&base.title) {
                report.notes.push(format!(
                    "{}: landmark baseline (manual capture), not in fresh results — skipped",
                    base.id()
                ));
            } else {
                report
                    .failures
                    .push(format!("{}: table missing from fresh results", base.id()));
            }
            continue;
        }
        // (column index, is_memory): floor-gated throughput columns and
        // ceiling-gated memory columns.
        let gated: Vec<(usize, bool)> = base
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| is_gated_column(c) || is_memory_column(c))
            .map(|(i, c)| (i, is_memory_column(c)))
            .collect();
        if gated.is_empty() {
            report
                .notes
                .push(format!("{}: no throughput columns, skipped", base.id()));
            continue;
        }
        for brow in &base.rows {
            let key = row_key(&base.columns, brow);
            // Every sample of this row across all fresh captures.
            let matches: Vec<(&TableData, &Vec<String>)> = curs
                .iter()
                .flat_map(|t| {
                    t.rows
                        .iter()
                        .filter(|r| row_key(&t.columns, r) == key)
                        .map(move |r| (*t, r))
                })
                .collect();
            if matches.is_empty() {
                report
                    .failures
                    .push(format!("{} [{key}]: row missing from fresh results", base.id()));
                continue;
            }
            for &(col, memory) in &gated {
                let header = &base.columns[col];
                let mut best: Option<f64> = None;
                let mut col_present = false;
                let mut unparseable = false;
                for (t, row) in &matches {
                    let Some(ccol) = t.columns.iter().position(|c| c == header) else {
                        continue;
                    };
                    col_present = true;
                    match row[ccol].parse::<f64>() {
                        // Best sample: max throughput, min memory.
                        Ok(v) => {
                            best = Some(best.map_or(v, |acc| {
                                if memory { acc.min(v) } else { acc.max(v) }
                            }))
                        }
                        Err(_) if memory => {
                            // Memory is platform-dependent ("n/a" off
                            // Linux): skip with a note, don't fail.
                            report.notes.push(format!(
                                "{} [{key}] {header}: unmeasurable fresh cell {:?}, skipped",
                                base.id(),
                                row[ccol]
                            ));
                        }
                        Err(_) => {
                            report.failures.push(format!(
                                "{} [{key}] {header}: unparseable fresh cell {:?}",
                                base.id(),
                                row[ccol]
                            ));
                            unparseable = true;
                        }
                    }
                }
                if !col_present {
                    report.failures.push(format!(
                        "{} [{key}]: column {header:?} missing from fresh results",
                        base.id()
                    ));
                    continue;
                }
                if unparseable {
                    continue;
                }
                let b = match brow[col].parse::<f64>() {
                    Ok(b) => b,
                    Err(_) if memory => {
                        report.notes.push(format!(
                            "{} [{key}] {header}: unmeasurable committed cell {:?}, skipped",
                            base.id(),
                            brow[col]
                        ));
                        continue;
                    }
                    Err(_) => {
                        report.failures.push(format!(
                            "{} [{key}] {header}: unparseable committed cell {:?}",
                            base.id(),
                            brow[col]
                        ));
                        continue;
                    }
                };
                let Some(f) = best else {
                    continue; // memory column with only n/a samples
                };
                report.checks += 1;
                let samples = if matches.len() > 1 {
                    format!(" (best of {})", matches.len())
                } else {
                    String::new()
                };
                if memory {
                    let ceiling = b * (1.0 + tolerance) + MEM_SLACK_MIB;
                    if f > ceiling {
                        report.failures.push(format!(
                            "{} [{key}] {header}: {f} MiB{samples} vs committed {b} MiB (ceiling {ceiling:.2} = +{:.0}% +{MEM_SLACK_MIB} MiB slack)",
                            base.id(),
                            tolerance * 100.0,
                        ));
                    } else if f + MEM_SLACK_MIB < b * (1.0 - tolerance) {
                        report.notes.push(format!(
                            "{} [{key}] {header}: {f} MiB{samples} vs committed {b} MiB (shrunk — consider refreshing the baseline)",
                            base.id(),
                        ));
                    }
                    continue;
                }
                if b <= 0.0 {
                    continue; // nothing to gate against
                }
                let ratio = f / b;
                if ratio < 1.0 - tolerance {
                    report.failures.push(format!(
                        "{} [{key}] {header}: {f}{samples} vs committed {b} ({:.0}% drop > {:.0}% tolerance)",
                        base.id(),
                        (1.0 - ratio) * 100.0,
                        tolerance * 100.0,
                    ));
                } else if ratio > 1.0 + tolerance {
                    report.notes.push(format!(
                        "{} [{key}] {header}: {f}{samples} vs committed {b} (+{:.0}% — consider refreshing the baseline)",
                        base.id(),
                        (ratio - 1.0) * 100.0,
                    ));
                }
            }
        }
        let mut noted = std::collections::BTreeSet::new();
        for cur in &curs {
            for crow in &cur.rows {
                let key = row_key(&cur.columns, crow);
                if !base.rows.iter().any(|r| row_key(&base.columns, r) == key)
                    && noted.insert(key.clone())
                {
                    report
                        .notes
                        .push(format!("{} [{key}]: new row, not in baseline", base.id()));
                }
            }
        }
    }
    let mut noted = std::collections::BTreeSet::new();
    for cur in fresh {
        if !committed.iter().any(|t| t.id() == cur.id()) && noted.insert(cur.id().to_string()) {
            report
                .notes
                .push(format!("{}: new table, not in baseline", cur.id()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(id: &str, cols: &[&str], rows: &[&[&str]]) -> TableData {
        TableData {
            title: format!("{id} — synthetic"),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
            notes: vec![],
        }
    }

    #[test]
    fn parses_the_committed_bench_layout() {
        let src = concat!(
            "{\"title\":\"E16 — scaling (γ = 3)\",\"columns\":[\"n\",\"rounds/s\"],",
            "\"rows\":[[\"512\",\"22274.2\"]],\"notes\":[\"a \\\"note\\\"\"]}\n",
            "{\"title\":\"E14b — dispatch\",\"columns\":[\"n\",\"speedup\"],",
            "\"rows\":[],\"notes\":[]}\n",
        );
        let tables = parse_tables(src).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].id(), "E16");
        assert_eq!(tables[0].title, "E16 — scaling (γ = 3)");
        assert_eq!(tables[0].rows, vec![vec!["512", "22274.2"]]);
        assert_eq!(tables[0].notes, vec!["a \"note\""]);
        assert_eq!(tables[1].id(), "E14b");
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(parse_tables("{\"title\":1}").is_err());
        assert!(parse_tables("{\"columns\":[]}").is_err(), "missing title");
        assert!(parse_tables("[1,2]").is_err());
        assert!(parse_tables("{\"title\":\"x\",\"bogus\":[]}").is_err());
        // Row width must match the columns.
        let ragged = "{\"title\":\"x\",\"columns\":[\"a\"],\"rows\":[[\"1\",\"2\"]],\"notes\":[]}";
        assert!(parse_tables(ragged).is_err());
        // Truncated input.
        assert!(parse_tables("{\"title\":\"x").is_err());
    }

    #[test]
    fn identical_tables_pass() {
        let t = vec![table(
            "E16",
            &["n", "rounds/s", "digest"],
            &[&["512", "1000", "abc"], &["4096", "500", "def"]],
        )];
        let r = compare(&t, &t, 0.20);
        assert!(r.pass(), "{:?}", r.failures);
        assert_eq!(r.checks, 2);
        assert!(r.notes.is_empty());
    }

    #[test]
    fn instances_per_s_columns_are_gated() {
        assert!(is_gated_column("instances/s"));
        assert!(is_gated_column("rounds/s"));
        assert!(is_gated_column("serial Mops/s"));
        assert!(is_gated_column("sharded Mops/s"));
        assert!(!is_gated_column("rtd mean"));
        let base = vec![table("E17", &["instances", "instances/s"], &[&["1000", "500"]])];
        let slow = vec![table("E17", &["instances", "instances/s"], &[&["1000", "200"]])];
        assert!(!compare(&base, &slow, 0.20).pass());
        assert!(compare(&base, &base, 0.20).pass());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        let slow = vec![table("E16", &["n", "rounds/s"], &[&["512", "700"]])];
        let r = compare(&base, &slow, 0.20);
        assert!(!r.pass());
        assert!(r.failures[0].contains("30% drop"), "{}", r.failures[0]);
        // The same drop passes under a looser tolerance.
        assert!(compare(&base, &slow, 0.35).pass());
        // A drop inside tolerance passes.
        let ok = vec![table("E16", &["n", "rounds/s"], &[&["512", "850"]])];
        assert!(compare(&base, &ok, 0.20).pass());
    }

    #[test]
    fn improvement_is_a_note_not_a_failure() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        let fast = vec![table("E16", &["n", "rounds/s"], &[&["512", "1500"]])];
        let r = compare(&base, &fast, 0.20);
        assert!(r.pass());
        assert_eq!(r.notes.len(), 1);
        assert!(r.notes[0].contains("refreshing"), "{}", r.notes[0]);
    }

    #[test]
    fn missing_table_row_or_column_fails() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        let r = compare(&base, &[], 0.20);
        assert!(r.failures[0].contains("table missing"));
        let no_row = vec![table("E16", &["n", "rounds/s"], &[&["4096", "1000"]])];
        let r = compare(&base, &no_row, 0.20);
        assert!(r.failures.iter().any(|f| f.contains("row missing")));
        let no_col = vec![table("E16", &["n"], &[&["512"]])];
        let r = compare(&base, &no_col, 0.20);
        assert!(r.failures.iter().any(|f| f.contains("column")));
    }

    #[test]
    fn unparseable_throughput_cell_fails() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        let junk = vec![table("E16", &["n", "rounds/s"], &[&["512", "fast"]])];
        let r = compare(&base, &junk, 0.20);
        assert!(r.failures.iter().any(|f| f.contains("unparseable")));
    }

    #[test]
    fn fresh_only_coverage_is_a_note() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        let more = vec![
            table("E16", &["n", "rounds/s"], &[&["512", "1000"], &["4096", "2"]]),
            table("E99", &["n", "rounds/s"], &[&["1", "1"]]),
        ];
        let r = compare(&base, &more, 0.20);
        assert!(r.pass());
        assert!(r.notes.iter().any(|n| n.contains("new row")));
        assert!(r.notes.iter().any(|n| n.contains("new table")));
    }

    #[test]
    fn repeated_captures_gate_against_the_best_sample() {
        let base = vec![table("E16", &["n", "rounds/s"], &[&["512", "1000"]])];
        // One noisy low sample + one healthy sample: best-of-2 passes.
        let noisy = vec![
            table("E16", &["n", "rounds/s"], &[&["512", "600"]]),
            table("E16", &["n", "rounds/s"], &[&["512", "980"]]),
        ];
        let r = compare(&base, &noisy, 0.20);
        assert!(r.pass(), "{:?}", r.failures);
        assert_eq!(r.checks, 1, "one check per cell, not per sample");
        // A regression present in *every* sample still fails, and the
        // message says how many samples were consulted.
        let slow = vec![
            table("E16", &["n", "rounds/s"], &[&["512", "600"]]),
            table("E16", &["n", "rounds/s"], &[&["512", "650"]]),
        ];
        let r = compare(&base, &slow, 0.20);
        assert!(!r.pass());
        assert!(r.failures[0].contains("best of 2"), "{}", r.failures[0]);
    }

    #[test]
    fn memory_ceiling_gates_rss_columns() {
        assert!(is_memory_column("ΔRSS MiB"));
        assert!(!is_memory_column("rounds/s"));
        assert!(!is_gated_column("ΔRSS MiB"));
        let base =
            vec![table("E16", &["n", "rounds/s", "ΔRSS MiB"], &[&["512", "1000", "100"]])];
        // Growth within tolerance + slack passes.
        let ok =
            vec![table("E16", &["n", "rounds/s", "ΔRSS MiB"], &[&["512", "1000", "115"]])];
        let r = compare(&base, &ok, 0.20);
        assert!(r.pass(), "{:?}", r.failures);
        assert_eq!(r.checks, 2, "throughput + memory both checked");
        // Growth beyond ceiling fails — memory regressions are gated.
        let fat =
            vec![table("E16", &["n", "rounds/s", "ΔRSS MiB"], &[&["512", "1000", "200"]])];
        let r = compare(&base, &fat, 0.20);
        assert!(!r.pass());
        assert!(r.failures[0].contains("ceiling"), "{}", r.failures[0]);
        // A *drop* in memory is fine (and noted when large).
        let slim =
            vec![table("E16", &["n", "rounds/s", "ΔRSS MiB"], &[&["512", "1000", "10"]])];
        let r = compare(&base, &slim, 0.20);
        assert!(r.pass());
        assert!(r.notes.iter().any(|n| n.contains("shrunk")), "{:?}", r.notes);
    }

    #[test]
    fn memory_small_rows_ride_the_absolute_slack() {
        // Sub-MiB committed cells would fail any relative band on pure
        // jitter; the absolute slack absorbs that.
        let base = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "0.05"]])];
        let jitter = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "4.50"]])];
        assert!(compare(&base, &jitter, 0.20).pass());
        let blowup = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "32.00"]])];
        assert!(!compare(&base, &blowup, 0.20).pass());
    }

    #[test]
    fn landmark_tables_skip_when_absent_and_gate_when_present() {
        let mut landmark =
            table("E16L", &["n", "rounds/s", "ΔRSS MiB"], &[&["10000000", "0.045", "49151.85"]]);
        landmark.title = "E16L — 10⁷-agent landmark (manual capture)".into();
        let quick = table("E16", &["n", "rounds/s"], &[&["512", "1000"]]);
        let committed = vec![quick.clone(), landmark.clone()];
        // Fresh CI captures never rerun the landmark: note, not failure.
        let r = compare(&committed, &[quick.clone()], 0.20);
        assert!(r.pass(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("landmark")), "{:?}", r.notes);
        // A non-landmark table absent from fresh still fails (coverage
        // shrink must not read as a pass).
        assert!(!compare(&committed, &[landmark.clone()], 0.20).pass());
        // When the landmark IS present (selftest / deliberate
        // re-capture), its cells are gated like any other table's.
        let mut slow = landmark.clone();
        slow.rows[0][1] = "0.01".into();
        let r = compare(&committed, &[quick, slow], 0.20);
        assert!(!r.pass());
        assert!(r.failures.iter().any(|f| f.contains("E16L")), "{:?}", r.failures);
    }

    #[test]
    fn memory_na_cells_skip_instead_of_failing() {
        let base = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "100"]])];
        let na = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "n/a"]])];
        let r = compare(&base, &na, 0.20);
        assert!(r.pass(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("unmeasurable")));
        // And symmetrically for an n/a baseline (captured off-Linux).
        let r = compare(&na, &base, 0.20);
        assert!(r.pass(), "{:?}", r.failures);
    }

    #[test]
    fn memory_best_of_n_takes_the_minimum_sample() {
        let base = vec![table("E16", &["n", "ΔRSS MiB"], &[&["512", "100"]])];
        // One inflated sample (warm process) + one clean: min passes.
        let noisy = vec![
            table("E16", &["n", "ΔRSS MiB"], &[&["512", "300"]]),
            table("E16", &["n", "ΔRSS MiB"], &[&["512", "105"]]),
        ];
        assert!(compare(&base, &noisy, 0.20).pass());
        // Inflation in every sample still fails.
        let fat = vec![
            table("E16", &["n", "ΔRSS MiB"], &[&["512", "300"]]),
            table("E16", &["n", "ΔRSS MiB"], &[&["512", "280"]]),
        ];
        assert!(!compare(&base, &fat, 0.20).pass());
    }

    #[test]
    fn title_edits_keep_the_id_match() {
        let mut base = table("E16", &["n", "rounds/s"], &[&["512", "1000"]]);
        base.title = "E16 — scaling (γ = 3, quick)".into();
        let mut fresh = base.clone();
        fresh.title = "E16 — scaling under the staged engine (γ = 3)".into();
        assert!(compare(&[base], &[fresh], 0.20).pass());
    }

    #[test]
    fn to_json_round_trips_through_the_parser() {
        // Regression test for `Table::to_json` escaping: every escape
        // class it can emit must decode back to the original cells.
        let mut t = experiments::Table::new(
            "E0 — \"quoted\" \\ back\nslash\ttab\u{1}ctl — γ≤δ",
            &["col \"a\"", "b\\c"],
        );
        t.row(vec!["line1\nline2".into(), "quote\" and \\ and \r end".into()]);
        t.row(vec!["\u{0}\u{1f}".into(), "π ≈ 3.14159".into()]);
        t.note("note with \"everything\": \\ \n \t");
        let parsed = parse_table(&t.to_json()).unwrap();
        assert_eq!(parsed.title, t.title);
        assert_eq!(parsed.columns, t.columns);
        assert_eq!(parsed.rows, t.rows);
        assert_eq!(parsed.notes, t.notes);
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        let src = "{\"title\":\"\\ud83d\\ude00 ok\",\"columns\":[],\"rows\":[],\"notes\":[]}";
        assert_eq!(parse_table(src).unwrap().title, "😀 ok");
        assert!(parse_table("{\"title\":\"\\ud83d x\",\"columns\":[],\"rows\":[],\"notes\":[]}").is_err());
    }
}
