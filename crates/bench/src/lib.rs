//! # rfc-bench — the Criterion benchmark harness
//!
//! Six bench binaries cover the experiment index of DESIGN.md §4 in the
//! time domain plus the simulator's hot paths:
//!
//! * `e2e` — full protocol runs: sync (E1), faulty (E6), async (E12),
//!   leader election (E9);
//! * `attacks` — one deviating trial per strategy in the suite (E7/E8);
//! * `baseline_protocols` — LOCAL all-to-all (E3), naive election (E8),
//!   rumor spreading (E10), plurality dynamics (E4b);
//! * `micro` — certificate build/verify, ledger checks, peer sampling,
//!   seed derivation, one network round;
//! * `scaling` — run cost vs n (E2/E3), vs γ (E6), and Monte-Carlo
//!   throughput vs worker threads;
//! * `throughput` — round-engine cost vs `n` and the buffered
//!   `run_trials` harness vs the streaming `run_trials_fold` pipeline
//!   (E14's substrate), including a fold-window (O(threads) memory)
//!   witness;
//! * `dispatch` — the agent-plane head-to-head: boxed-dyn rebuild vs
//!   monomorphic `AgentSlot` (fresh network) vs `AgentSlot` + reusable
//!   `TrialArena`, on bit-identical workloads.
//!
//! Run with `cargo bench -p rfc-bench` (or `--bench dispatch` etc.).
//!
//! Besides the benches, the crate ships the CI **perf-regression gate**
//! ([`gate`]): a dependency-free parser for the committed
//! `BENCH_scale.json` baseline plus a throughput comparator, driven by
//! the `rfc-bench` binary (`rfc-bench gate <committed> <fresh>...`).

pub mod gate;

pub use gate::{compare, parse_table, parse_tables, GateReport, TableData};
