//! The `rfc-bench` CLI: the CI perf-regression gate.
//!
//! ```text
//! rfc-bench gate <committed.json> <fresh.json>...
//!     Parse the committed baseline and the freshly measured table
//!     files (concatenated), compare every throughput column, and exit
//!     non-zero on a drop beyond tolerance. Tolerance is the
//!     RFC_GATE_TOLERANCE env var (a fraction, default 0.20).
//!
//! rfc-bench selftest <committed.json>
//!     Prove the gate can fire: re-compare the baseline against a copy
//!     of itself with every throughput cell halved and every ΔRSS cell
//!     inflated (must FAIL) and against an identical copy (must PASS).
//!     Exit non-zero if either expectation breaks.
//! ```

use rfc_bench::gate::{compare, is_gated_column, is_memory_column, parse_tables, TableData};
use std::process::ExitCode;

fn tolerance() -> f64 {
    match std::env::var("RFC_GATE_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("rfc-bench: RFC_GATE_TOLERANCE must be a fraction in [0,1), got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => 0.20,
    }
}

fn load(path: &str) -> Vec<TableData> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("rfc-bench: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_tables(&text).unwrap_or_else(|e| {
        eprintln!("rfc-bench: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn run_gate(committed_path: &str, fresh_paths: &[String]) -> ExitCode {
    let committed = load(committed_path);
    let mut fresh = Vec::new();
    for p in fresh_paths {
        fresh.extend(load(p));
    }
    let tol = tolerance();
    let report = compare(&committed, &fresh, tol);
    for note in &report.notes {
        println!("note: {note}");
    }
    for failure in &report.failures {
        println!("FAIL: {failure}");
    }
    if report.pass() {
        println!(
            "perf gate OK: {} throughput/memory checks within {:.0}% of {}",
            report.checks,
            tol * 100.0,
            committed_path
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate FAILED: {} violation(s) against {} (tolerance {:.0}%)",
            report.failures.len(),
            committed_path,
            tol * 100.0
        );
        ExitCode::FAILURE
    }
}

fn run_selftest(committed_path: &str) -> ExitCode {
    let committed = load(committed_path);
    let gated_cells: usize = committed
        .iter()
        .map(|t| {
            let cols = t.columns.iter().filter(|c| is_gated_column(c)).count();
            cols * t.rows.len()
        })
        .sum();
    if gated_cells == 0 {
        eprintln!("rfc-bench selftest: {committed_path} has no throughput cells to gate");
        return ExitCode::FAILURE;
    }
    // Injected regression: halve every throughput cell and inflate every
    // memory cell past any plausible slack. The gate must fire on both.
    let regressed: Vec<TableData> = committed
        .iter()
        .map(|t| {
            let mut t = t.clone();
            let throughput: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| is_gated_column(c))
                .map(|(i, _)| i)
                .collect();
            let memory: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| is_memory_column(c))
                .map(|(i, _)| i)
                .collect();
            for row in &mut t.rows {
                for &c in &throughput {
                    if let Ok(v) = row[c].parse::<f64>() {
                        row[c] = format!("{}", v * 0.5);
                    }
                }
                for &c in &memory {
                    if let Ok(v) = row[c].parse::<f64>() {
                        row[c] = format!("{}", v * 10.0 + 100.0);
                    }
                }
            }
            t
        })
        .collect();
    let tol = tolerance();
    let fired = compare(&committed, &regressed, tol);
    if fired.pass() {
        println!("selftest FAILED: a 50% slowdown across {gated_cells} cells did not trip the gate");
        return ExitCode::FAILURE;
    }
    let mem_cells: usize = committed
        .iter()
        .map(|t| t.columns.iter().filter(|c| is_memory_column(c)).count() * t.rows.len())
        .sum();
    if mem_cells > 0
        && !fired.failures.iter().any(|f| f.contains("ceiling"))
    {
        println!(
            "selftest FAILED: inflating {mem_cells} ΔRSS cells 10×+100 MiB did not trip the memory ceiling"
        );
        return ExitCode::FAILURE;
    }
    let clean = compare(&committed, &committed, tol);
    if !clean.pass() {
        println!("selftest FAILED: the baseline does not pass against itself:");
        for f in &clean.failures {
            println!("  {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "selftest OK: gate trips on injected 50% slowdown + ΔRSS inflation ({} violations over {} checks) and passes identity",
        fired.failures.len(),
        clean.checks
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "gate" && rest.len() >= 2 => {
            run_gate(&rest[0], &rest[1..])
        }
        Some((cmd, rest)) if cmd == "selftest" && rest.len() == 1 => run_selftest(&rest[0]),
        _ => {
            eprintln!(
                "usage: rfc-bench gate <committed.json> <fresh.json>...\n       rfc-bench selftest <committed.json>"
            );
            ExitCode::FAILURE
        }
    }
}
