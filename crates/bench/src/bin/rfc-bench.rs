//! The `rfc-bench` CLI: the CI perf-regression gate.
//!
//! ```text
//! rfc-bench gate <committed.json> <fresh.json>...
//!     Parse the committed baseline and the freshly measured table
//!     files (concatenated), compare every throughput column, and exit
//!     non-zero on a drop beyond tolerance. Tolerance is the
//!     RFC_GATE_TOLERANCE env var (a fraction, default 0.20).
//!
//! rfc-bench selftest <committed.json>
//!     Prove the gate can fire: re-compare the baseline against a copy
//!     of itself with every throughput cell halved and every ΔRSS cell
//!     inflated (must FAIL) and against an identical copy (must PASS).
//!     Exit non-zero if either expectation breaks.
//!
//! rfc-bench codec <out.json>
//!     Measure wire-codec encode/decode throughput over a deterministic
//!     message corpus and write one gate-compatible table (columns
//!     `enc msgs/s` / `dec msgs/s`) to <out.json>.
//!
//! rfc-bench serial <out.json>
//!     Measure the staged engine's drained serial sections head-to-head:
//!     op-order metering vs per-shard Tally merge, sequential op-log
//!     append vs prefix-summed scatter, and serial plan-buffer concat vs
//!     parallel scatter — at 1/2/4/8 shards over a deterministic event
//!     stream. Writes one gate-compatible table (columns `serial Mops/s`
//!     / `sharded Mops/s`) to <out.json>. Every sharded arm's output is
//!     asserted bit-identical to its serial arm before timing counts.
//! ```

use experiments::Table;
use gossip_net::rng::DetRng;
use rfc_bench::gate::{compare, is_gated_column, is_memory_column, parse_tables, TableData};
use rfc_core::certificate::{CertData, VoteRec};
use rfc_core::codec::{decode_msg, encode_msg};
use rfc_core::msg::{IntentEntry, Msg};
use std::process::ExitCode;
use std::time::Instant;

fn tolerance() -> f64 {
    match std::env::var("RFC_GATE_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("rfc-bench: RFC_GATE_TOLERANCE must be a fraction in [0,1), got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => 0.20,
    }
}

fn load(path: &str) -> Vec<TableData> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("rfc-bench: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_tables(&text).unwrap_or_else(|e| {
        eprintln!("rfc-bench: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn run_gate(committed_path: &str, fresh_paths: &[String]) -> ExitCode {
    let committed = load(committed_path);
    let mut fresh = Vec::new();
    for p in fresh_paths {
        fresh.extend(load(p));
    }
    let tol = tolerance();
    let report = compare(&committed, &fresh, tol);
    for note in &report.notes {
        println!("note: {note}");
    }
    for failure in &report.failures {
        println!("FAIL: {failure}");
    }
    if report.pass() {
        println!(
            "perf gate OK: {} throughput/memory checks within {:.0}% of {}",
            report.checks,
            tol * 100.0,
            committed_path
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate FAILED: {} violation(s) against {} (tolerance {:.0}%)",
            report.failures.len(),
            committed_path,
            tol * 100.0
        );
        ExitCode::FAILURE
    }
}

fn run_selftest(committed_path: &str) -> ExitCode {
    let committed = load(committed_path);
    let gated_cells: usize = committed
        .iter()
        .map(|t| {
            let cols = t.columns.iter().filter(|c| is_gated_column(c)).count();
            cols * t.rows.len()
        })
        .sum();
    if gated_cells == 0 {
        eprintln!("rfc-bench selftest: {committed_path} has no throughput cells to gate");
        return ExitCode::FAILURE;
    }
    // Injected regression: halve every throughput cell and inflate every
    // memory cell past any plausible slack. The gate must fire on both.
    let regressed: Vec<TableData> = committed
        .iter()
        .map(|t| {
            let mut t = t.clone();
            let throughput: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| is_gated_column(c))
                .map(|(i, _)| i)
                .collect();
            let memory: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| is_memory_column(c))
                .map(|(i, _)| i)
                .collect();
            for row in &mut t.rows {
                for &c in &throughput {
                    if let Ok(v) = row[c].parse::<f64>() {
                        row[c] = format!("{}", v * 0.5);
                    }
                }
                for &c in &memory {
                    if let Ok(v) = row[c].parse::<f64>() {
                        row[c] = format!("{}", v * 10.0 + 100.0);
                    }
                }
            }
            t
        })
        .collect();
    let tol = tolerance();
    let fired = compare(&committed, &regressed, tol);
    if fired.pass() {
        println!("selftest FAILED: a 50% slowdown across {gated_cells} cells did not trip the gate");
        return ExitCode::FAILURE;
    }
    let mem_cells: usize = committed
        .iter()
        .map(|t| t.columns.iter().filter(|c| is_memory_column(c)).count() * t.rows.len())
        .sum();
    if mem_cells > 0
        && !fired.failures.iter().any(|f| f.contains("ceiling"))
    {
        println!(
            "selftest FAILED: inflating {mem_cells} ΔRSS cells 10×+100 MiB did not trip the memory ceiling"
        );
        return ExitCode::FAILURE;
    }
    let clean = compare(&committed, &committed, tol);
    if !clean.pass() {
        println!("selftest FAILED: the baseline does not pass against itself:");
        for f in &clean.failures {
            println!("  {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "selftest OK: gate trips on injected 50% slowdown + ΔRSS inflation ({} violations over {} checks) and passes identity",
        fired.failures.len(),
        clean.checks
    );
    ExitCode::SUCCESS
}

/// The parameters of the throughput corpus: the wire shapes a real
/// `n = 4096, γ = 3` run produces (`q = 36` intent entries and cert
/// votes, values in `[m] = [n³]`).
const CODEC_Q: usize = 36;
const CODEC_M: u64 = 4096u64 * 4096 * 4096;

/// One deterministic message of each class, sized like production
/// traffic. `class` selects the variant so per-class rows measure pure
/// encode/decode cost without branch-mix noise.
fn corpus_msg(class: &str, rng: &mut DetRng) -> Msg {
    match class {
        "query" => {
            if rng.index(2) == 0 {
                Msg::QIntent
            } else {
                Msg::QMinCert
            }
        }
        "vote" => Msg::Vote {
            value: rng.below(CODEC_M),
            round: rng.index(CODEC_Q) as u16,
        },
        "intents" => Msg::Intents(
            (0..CODEC_Q)
                .map(|_| IntentEntry {
                    value: rng.below(CODEC_M),
                    target: rng.index(4096) as u32,
                })
                .collect::<Vec<_>>()
                .into(),
        ),
        "cert" => {
            let votes: Vec<VoteRec> = (0..CODEC_Q)
                .map(|_| VoteRec {
                    voter: rng.index(4096) as u32,
                    round: rng.index(CODEC_Q) as u16,
                    value: rng.below(CODEC_M),
                })
                .collect();
            Msg::cert(CertData::build(
                rng.index(4096) as u32,
                rng.index(2) as u32,
                votes,
                CODEC_M,
            ))
        }
        other => unreachable!("unknown corpus class {other}"),
    }
}

fn run_codec(out_path: &str) -> ExitCode {
    let mut table = Table::new(
        "E18 — wire codec throughput (deterministic corpus, single thread)",
        &["class", "msgs", "bytes", "enc msgs/s", "dec msgs/s"],
    );
    for class in ["query", "vote", "intents", "cert"] {
        let mut rng = DetRng::seeded(0xC0DEC, 0);
        let corpus: Vec<Msg> = (0..512).map(|_| corpus_msg(class, &mut rng)).collect();
        // Warm one full pass, then time enough repetitions for a stable
        // single-digit-millisecond sample per direction.
        let mut encoded = Vec::new();
        let mut bounds = vec![0usize];
        for m in &corpus {
            encode_msg(m, &mut encoded);
            bounds.push(encoded.len());
        }
        let reps = 200usize;
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            let mut buf = Vec::with_capacity(encoded.len());
            for m in &corpus {
                encode_msg(m, &mut buf);
            }
            sink = sink.wrapping_add(buf.len());
        }
        let enc_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for _ in 0..reps {
            for w in bounds.windows(2) {
                let (m, used) = decode_msg(&encoded[w[0]..w[1]]).expect("corpus decodes");
                sink = sink.wrapping_add(used + matches!(m, Msg::QIntent) as usize);
            }
        }
        let dec_s = t.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        let n_msgs = corpus.len() * reps;
        table.row(vec![
            class.to_string(),
            corpus.len().to_string(),
            encoded.len().to_string(),
            format!("{:.0}", n_msgs as f64 / enc_s),
            format!("{:.0}", n_msgs as f64 / dec_s),
        ]);
    }
    table.note(format!(
        "corpus: 512 msgs/class, q={CODEC_Q}, m={CODEC_M}, seed 0xC0DEC; x200 reps"
    ));
    print!("{}", table.render());
    if let Err(e) = std::fs::write(out_path, table.to_json()) {
        eprintln!("rfc-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Event-stream size and repetition count for `rfc-bench serial`: large
/// enough that one timed arm is tens of milliseconds (stable against
/// scheduler noise), small enough that all 12 rows finish in seconds.
const SERIAL_N: usize = 1 << 17;
const SERIAL_REPS: usize = 24;

/// Time `reps` runs of `f` and return Mops/s over `SERIAL_N` events each.
fn mops(reps: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    (reps * SERIAL_N) as f64 / 1e6 / t.elapsed().as_secs_f64()
}

fn run_serial(out_path: &str) -> ExitCode {
    use gossip_net::metrics::{Metrics, Tally};
    use gossip_net::oplog::{OpEvent, OpKind, OpLog};
    use gossip_net::ScopedPool;

    // One deterministic event stream shared by all three sections: bit
    // sizes for the metering arms, op events for the log arms, and
    // (id, op)-shaped payloads for the concat arms.
    let mut rng = DetRng::seeded(0x5E41A1, 0);
    let bits: Vec<u64> = (0..SERIAL_N).map(|_| rng.below(100_000)).collect();
    let events: Vec<OpEvent> = (0..SERIAL_N)
        .map(|i| OpEvent {
            round: (i / 4096) as u32,
            kind: match rng.index(3) {
                0 => OpKind::Push,
                1 => OpKind::Pull,
                _ => OpKind::PullUnanswered,
            },
            from: rng.index(4096) as u32,
            to: rng.index(4096) as u32,
        })
        .collect();
    let payload: Vec<(u32, u64)> = (0..SERIAL_N)
        .map(|_| (rng.index(4096) as u32, rng.below(CODEC_M)))
        .collect();

    let mut table = Table::new(
        "E19 — staged-engine serial-section drains (deterministic event stream)",
        &["section", "shards", "events", "serial Mops/s", "sharded Mops/s"],
    );
    for shards in [1usize, 2, 4, 8] {
        let chunk = SERIAL_N.div_ceil(shards).max(1);
        let mut pool = ScopedPool::new(shards);

        // -- metering: op-order record_message walk vs per-shard exact
        //    Tallys merged in shard order (the engine's send-time path).
        let meter_serial = |out: &mut Metrics| {
            out.enter_phase("bench");
            for &b in &bits {
                out.record_message(b);
            }
        };
        let meter_sharded = |out: &mut Metrics, pool: &mut ScopedPool| {
            out.enter_phase("bench");
            let mut tallies = vec![Tally::default(); shards];
            if shards == 1 {
                for &b in &bits {
                    tallies[0].record(b);
                }
            } else {
                pool.scope(|s| {
                    for (t, part) in tallies.iter_mut().zip(bits.chunks(chunk)) {
                        s.spawn(move || {
                            for &b in part {
                                t.record(b);
                            }
                        });
                    }
                });
            }
            for t in &tallies {
                out.record_bulk(t, 0);
            }
        };
        let (mut a, mut b) = (Metrics::default(), Metrics::default());
        meter_serial(&mut a);
        meter_sharded(&mut b, &mut pool);
        assert_eq!(a, b, "sharded metering must be bit-identical");
        let s_serial = mops(SERIAL_REPS, || {
            let mut m = Metrics::default();
            meter_serial(&mut m);
            std::hint::black_box(m.bits_sent);
        });
        let s_sharded = mops(SERIAL_REPS, || {
            let mut m = Metrics::default();
            meter_sharded(&mut m, &mut pool);
            std::hint::black_box(m.bits_sent);
        });
        table.row(vec![
            "metering".into(),
            shards.to_string(),
            SERIAL_N.to_string(),
            format!("{s_serial:.1}"),
            format!("{s_sharded:.1}"),
        ]);

        // -- op log: sequential append vs pre-sized scatter (the engine
        //    prefix-sums per-shard event counts; here the split is the
        //    same contiguous chunking).
        let log_serial = |log: &mut OpLog| {
            for e in &events {
                log.record(e.round, e.kind, e.from, e.to);
            }
        };
        let log_scatter = |log: &mut OpLog, pool: &mut ScopedPool| {
            let tail = log.scatter_tail(events.len());
            if shards == 1 {
                for (slot, e) in tail.iter_mut().zip(&events) {
                    *slot = *e;
                }
            } else {
                pool.scope(|s| {
                    for (dst, src) in tail.chunks_mut(chunk).zip(events.chunks(chunk)) {
                        s.spawn(move || {
                            for (slot, e) in dst.iter_mut().zip(src) {
                                *slot = *e;
                            }
                        });
                    }
                });
            }
        };
        let (mut a, mut b) = (OpLog::new(), OpLog::new());
        log_serial(&mut a);
        log_scatter(&mut b, &mut pool);
        assert_eq!(a.events(), b.events(), "scattered op log must be bit-identical");
        let s_serial = mops(SERIAL_REPS, || {
            let mut log = OpLog::new();
            log_serial(&mut log);
            std::hint::black_box(log.len());
        });
        let s_sharded = mops(SERIAL_REPS, || {
            let mut log = OpLog::new();
            log_scatter(&mut log, &mut pool);
            std::hint::black_box(log.len());
        });
        table.row(vec![
            "oplog".into(),
            shards.to_string(),
            SERIAL_N.to_string(),
            format!("{s_serial:.1}"),
            format!("{s_sharded:.1}"),
        ]);

        // -- plan concat: per-shard buffers appended serially vs scattered
        //    into a pre-sized Vec at prefix-summed offsets.
        let bufs: Vec<&[(u32, u64)]> = payload.chunks(chunk).collect();
        let concat_serial = |ops: &mut Vec<(u32, u64)>| {
            ops.clear();
            for buf in &bufs {
                ops.extend_from_slice(buf);
            }
        };
        let concat_scatter = |ops: &mut Vec<(u32, u64)>, pool: &mut ScopedPool| {
            ops.clear();
            ops.reserve(SERIAL_N);
            let spare = &mut ops.spare_capacity_mut()[..SERIAL_N];
            if shards == 1 {
                for (slot, v) in spare.iter_mut().zip(&payload) {
                    slot.write(*v);
                }
            } else {
                pool.scope(|s| {
                    for (dst, src) in spare.chunks_mut(chunk).zip(&bufs) {
                        s.spawn(move || {
                            for (slot, v) in dst.iter_mut().zip(*src) {
                                slot.write(*v);
                            }
                        });
                    }
                });
            }
            // SAFETY: every one of the SERIAL_N spare slots above was
            // written exactly once (the chunks partition 0..SERIAL_N).
            unsafe { ops.set_len(SERIAL_N) };
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        concat_serial(&mut a);
        concat_scatter(&mut b, &mut pool);
        assert_eq!(a, b, "scattered concat must be bit-identical");
        let mut ops: Vec<(u32, u64)> = Vec::with_capacity(SERIAL_N);
        let s_serial = mops(SERIAL_REPS, || {
            concat_serial(&mut ops);
            std::hint::black_box(ops.len());
        });
        let s_sharded = mops(SERIAL_REPS, || {
            concat_scatter(&mut ops, &mut pool);
            std::hint::black_box(ops.len());
        });
        table.row(vec![
            "concat".into(),
            shards.to_string(),
            SERIAL_N.to_string(),
            format!("{s_serial:.1}"),
            format!("{s_sharded:.1}"),
        ]);
    }
    table.note(format!(
        "stream: {SERIAL_N} events, seed 0x5E41A1; x{SERIAL_REPS} reps; sharded arms use real worker threads (shards=1 runs the engine's inline fallback)"
    ));
    table.note("every sharded arm asserted bit-identical to its serial arm before timing");
    print!("{}", table.render());
    if let Err(e) = std::fs::write(out_path, table.to_json()) {
        eprintln!("rfc-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "gate" && rest.len() >= 2 => {
            run_gate(&rest[0], &rest[1..])
        }
        Some((cmd, rest)) if cmd == "selftest" && rest.len() == 1 => run_selftest(&rest[0]),
        Some((cmd, rest)) if cmd == "codec" && rest.len() == 1 => run_codec(&rest[0]),
        Some((cmd, rest)) if cmd == "serial" && rest.len() == 1 => run_serial(&rest[0]),
        _ => {
            eprintln!(
                "usage: rfc-bench gate <committed.json> <fresh.json>...\n       rfc-bench selftest <committed.json>\n       rfc-bench codec <out.json>\n       rfc-bench serial <out.json>"
            );
            ExitCode::FAILURE
        }
    }
}
