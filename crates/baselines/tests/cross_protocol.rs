//! Cross-baseline integration checks: the baselines must agree with each
//! other (and with theory) on the quantities the experiments compare.

use baselines::local_fair::run_local_fair;
use baselines::naive_min_id::run_naive_election;
use baselines::plurality::run_plurality;
use baselines::rumor::{spread_rumor, Mechanism};
use gossip_net::fault::FaultPlan;
use gossip_net::topology::Topology;

#[test]
fn both_fair_baselines_elect_uniformly() {
    // LOCAL commit/reveal and the naive gossip election are both fair in
    // the honest case; over many seeds their winner distributions must
    // both cover the id space broadly.
    let n = 16;
    let colors: Vec<u32> = (0..n as u32).collect();
    let trials = 400u64;
    let mut local_wins = vec![0u32; n];
    let mut naive_wins = vec![0u32; n];
    for seed in 0..trials {
        local_wins[run_local_fair(n, &colors, seed).winner as usize] += 1;
        naive_wins[run_naive_election(n, &colors, &[], 3.0, seed).winner.owner as usize] += 1;
    }
    for id in 0..n {
        assert!(
            local_wins[id] > 0,
            "LOCAL baseline never elected agent {id}"
        );
        assert!(
            naive_wins[id] > 0,
            "naive baseline never elected agent {id}"
        );
    }
}

#[test]
fn local_baseline_is_quadratic_naive_is_quasilinear() {
    let colors64: Vec<u32> = (0..64).collect();
    let colors256: Vec<u32> = (0..256).collect();
    let local_ratio = run_local_fair(256, &colors256, 1).cost.messages as f64
        / run_local_fair(64, &colors64, 1).cost.messages as f64;
    assert!(
        local_ratio > 14.0,
        "4x agents should ≈16x LOCAL messages, got {local_ratio}"
    );
    // Naive gossip: q = 3·log2(n) pull rounds of n ops each → ~4.5x.
    let naive64 = 64.0 * 3.0 * 6.0;
    let naive256 = 256.0 * 3.0 * 8.0;
    assert!(naive256 / naive64 < 6.0);
}

#[test]
fn plurality_beats_fair_protocols_on_speed_but_not_fairness() {
    // 3-majority converges in far fewer rounds than the fair protocols'
    // fixed 4q budget — that is its appeal, and unfairness is its price.
    let n = 96;
    let colors: Vec<u32> = (0..n).map(|i| if i < 64 { 0 } else { 1 }).collect();
    let run = run_plurality(n, &colors, 5, 4000);
    assert_eq!(run.consensus, Some(0), "plurality crowns the 2/3 majority");
    assert!(
        run.rounds < 4 * 3 * 7, // < the fair protocol's 4q at γ=3
        "plurality should converge quickly: {} rounds",
        run.rounds
    );
}

#[test]
fn rumor_mechanisms_rank_as_theory_predicts() {
    // push-pull ≤ pull ≤ push in rounds-to-full on the complete graph
    // (push-pull's doubling beats one-sided mechanisms).
    let n = 512;
    let mut means = Vec::new();
    for mech in [Mechanism::PushPull, Mechanism::Pull, Mechanism::Push] {
        let total: usize = (0..10u64)
            .map(|seed| {
                spread_rumor(
                    Topology::complete(n),
                    FaultPlan::none(n),
                    mech,
                    seed,
                    2000,
                )
                .rounds_to_full
                .expect("complete graph finishes")
            })
            .sum();
        means.push(total as f64 / 10.0);
    }
    assert!(
        means[0] <= means[1] + 1.0,
        "push-pull {means:?} should be fastest"
    );
    assert!(means[1] <= means[2] + 1.0, "pull beats push: {means:?}");
}

#[test]
fn faulty_majority_does_not_stop_rumor() {
    let n = 200;
    let run = spread_rumor(
        Topology::complete(n),
        FaultPlan::fraction(n, 0.6, gossip_net::fault::Placement::Random { seed: 4 }),
        Mechanism::PushPull,
        9,
        2000,
    );
    assert_eq!(run.informed, run.active, "all active agents informed");
}
