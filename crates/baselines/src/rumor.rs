//! Push/pull rumor spreading on the GOSSIP model.
//!
//! The Find-Min phase of protocol `P` *is* a single-source broadcast via
//! pull operations; the paper cites the classical Θ(log n) convergence
//! bound (ref. \[19\] = Shah, *Gossip Algorithms*; also Karp et al. FOCS'00).
//! This module implements plain rumor spreading as a standalone baseline
//! so experiment E10 can measure the constant in front of `log n` and
//! confirm the Find-Min phase budget `q = γ·log n` is safely above it —
//! and so the ring/sparse-topology extension experiments can show where
//! pull-broadcast stops working.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::AgentId;
use gossip_net::network::Network;
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;

/// Rumor-spreading wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum RumorMsg {
    /// "Do you know the rumor?"
    Query,
    /// "Yes — here it is."
    Rumor(u64),
}

impl MsgSize for RumorMsg {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        SizeEnv::TAG_BITS
            + match self {
                RumorMsg::Query => 0,
                RumorMsg::Rumor(_) => env.value_bits as u64,
            }
    }
}

/// Spreading mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Informed agents push the rumor to random peers.
    Push,
    /// Uninformed agents pull random peers for the rumor (the Find-Min
    /// mechanism).
    Pull,
    /// Both at once (each agent still performs one operation per round:
    /// informed agents push, uninformed agents pull).
    PushPull,
}

/// One rumor-spreading agent.
pub struct RumorAgent {
    id: AgentId,
    rng: DetRng,
    mechanism: Mechanism,
    /// The rumor payload, if known.
    pub rumor: Option<u64>,
    /// Round at which the rumor was first learned.
    pub informed_at: Option<usize>,
}

impl RumorAgent {
    /// Create an agent; `initial` is `Some(payload)` for the source.
    pub fn new(id: AgentId, seed: u64, mechanism: Mechanism, initial: Option<u64>) -> Self {
        RumorAgent {
            id,
            rng: DetRng::seeded(seed, 0xB0B0 + id as u64),
            mechanism,
            rumor: initial,
            informed_at: initial.map(|_| 0),
        }
    }

    fn learn(&mut self, payload: u64, round: usize) {
        if self.rumor.is_none() {
            self.rumor = Some(payload);
            self.informed_at = Some(round);
        }
    }
}

impl Agent<RumorMsg> for RumorAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<RumorMsg>> {
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        match (self.mechanism, self.rumor) {
            (Mechanism::Push, Some(r)) => Some(Op::push(peer, RumorMsg::Rumor(r))),
            (Mechanism::Push, None) => None,
            (Mechanism::Pull, None) => Some(Op::pull(peer, RumorMsg::Query)),
            (Mechanism::Pull, Some(_)) => None,
            (Mechanism::PushPull, Some(r)) => Some(Op::push(peer, RumorMsg::Rumor(r))),
            (Mechanism::PushPull, None) => Some(Op::pull(peer, RumorMsg::Query)),
        }
    }

    fn on_pull(&mut self, _from: AgentId, query: &RumorMsg, _ctx: &RoundCtx) -> Option<RumorMsg> {
        match (query, self.rumor) {
            (RumorMsg::Query, Some(r)) => Some(RumorMsg::Rumor(r)),
            _ => None,
        }
    }

    fn on_push(&mut self, _from: AgentId, msg: &RumorMsg, ctx: &RoundCtx) {
        if let RumorMsg::Rumor(r) = *msg {
            self.learn(r, ctx.round);
        }
    }

    fn on_reply(&mut self, _from: AgentId, reply: Option<RumorMsg>, ctx: &RoundCtx) {
        if let Some(RumorMsg::Rumor(r)) = reply {
            self.learn(r, ctx.round);
        }
    }
}

/// Result of one rumor-spreading run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorRun {
    /// Rounds until every active agent was informed (`None` = not within
    /// the budget).
    pub rounds_to_full: Option<usize>,
    /// Informed active agents at the end.
    pub informed: usize,
    /// Active agents total.
    pub active: usize,
}

/// Spread a rumor from the first active agent until all active agents
/// know it (or the round budget runs out). The network is generic over
/// the agent type, so informed-counts are read directly off the concrete
/// [`RumorAgent`]s after each round.
pub fn spread_rumor(
    topology: Topology,
    faults: FaultPlan,
    mechanism: Mechanism,
    seed: u64,
    max_rounds: usize,
) -> RumorRun {
    let n = topology.n();
    let source = (0..n as AgentId)
        .find(|&u| !faults.is_faulty(u))
        .expect("at least one active agent");
    let agents: Vec<RumorAgent> = (0..n as AgentId)
        .map(|id| {
            let initial = if id == source { Some(0xFEED) } else { None };
            RumorAgent::new(id, seed, mechanism, initial)
        })
        .collect();
    let mut net = Network::new(topology, SizeEnv::for_n(n), agents, faults);
    let mut rounds_to_full = None;
    for round in 1..=max_rounds {
        net.step();
        let informed = (0..n as AgentId)
            .filter(|&id| !net.faults().is_faulty(id) && net.agent(id).rumor.is_some())
            .count();
        if informed == net.faults().n_active() {
            rounds_to_full = Some(round);
            break;
        }
    }
    let informed = (0..n as AgentId)
        .filter(|&id| !net.faults().is_faulty(id) && net.agent(id).rumor.is_some())
        .count();
    RumorRun {
        rounds_to_full,
        informed,
        active: net.faults().n_active(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_spreads_on_complete_graph_in_logarithmic_rounds() {
        let n = 256;
        let run = spread_rumor(
            Topology::complete(n),
            FaultPlan::none(n),
            Mechanism::Pull,
            7,
            200,
        );
        let rounds = run.rounds_to_full.expect("should complete");
        // Θ(log n): log2(256) = 8; allow a generous constant.
        assert!(rounds >= 8, "cannot beat log2 n = 8, got {rounds}");
        assert!(rounds <= 64, "took suspiciously long: {rounds}");
    }

    #[test]
    fn push_pull_is_no_slower_than_pull() {
        let n = 256;
        let pull = spread_rumor(
            Topology::complete(n),
            FaultPlan::none(n),
            Mechanism::Pull,
            3,
            500,
        );
        let pp = spread_rumor(
            Topology::complete(n),
            FaultPlan::none(n),
            Mechanism::PushPull,
            3,
            500,
        );
        assert!(pp.rounds_to_full.unwrap() <= pull.rounds_to_full.unwrap() + 3);
    }

    #[test]
    fn ring_takes_linear_time() {
        let n = 64;
        let run = spread_rumor(
            Topology::ring(n),
            FaultPlan::none(n),
            Mechanism::PushPull,
            5,
            10 * n,
        );
        let rounds = run.rounds_to_full.expect("should complete eventually");
        assert!(
            rounds >= n / 4,
            "ring diameter forces Ω(n) rounds, got {rounds}"
        );
    }

    #[test]
    fn faulty_agents_do_not_block_spreading() {
        let n = 128;
        let faults = FaultPlan::fraction(n, 0.3, gossip_net::fault::Placement::Random { seed: 2 });
        let run = spread_rumor(
            Topology::complete(n),
            faults,
            Mechanism::Pull,
            11,
            300,
        );
        assert!(run.rounds_to_full.is_some());
        assert_eq!(run.informed, run.active);
    }

    #[test]
    fn budget_exhaustion_reports_partial_coverage() {
        let n = 64;
        let run = spread_rumor(
            Topology::ring(n),
            FaultPlan::none(n),
            Mechanism::Push,
            1,
            3, // far too few rounds for a ring
        );
        assert!(run.rounds_to_full.is_none());
        assert!(run.informed < run.active);
        assert!(run.informed >= 1, "source is always informed");
    }

    #[test]
    fn informed_at_is_recorded() {
        let mut a = RumorAgent::new(1, 0, Mechanism::Pull, None);
        assert!(a.informed_at.is_none());
        a.learn(5, 17);
        assert_eq!(a.informed_at, Some(17));
        a.learn(9, 30); // second learn is ignored
        assert_eq!(a.rumor, Some(5));
        assert_eq!(a.informed_at, Some(17));
    }
}
