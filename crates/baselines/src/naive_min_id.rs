//! The naive gossip election — and why protocol `P` needs its machinery.
//!
//! Strip protocol `P` of Commitment, Coherence, and Verification and you
//! get the "obvious" GOSSIP fair election: every agent draws a random
//! badge `r_u ~ U[m]`, the minimum badge spreads by pull-gossip, and its
//! owner's color wins. Fast, cheap… and trivially rigged: a selfish agent
//! simply *claims* badge 0 and wins every time, because nothing binds the
//! claim.
//!
//! Experiment E8 runs this protocol with a single `claim-zero` deviator
//! and shows the coalition win rate jump from `1/n` to ≈ 1, then runs the
//! same deviation shape against `P` where it is caught — the ablation
//! that justifies every extra phase the paper adds.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::network::Network;
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;

/// Wire message: a claim "agent `owner` holds badge `badge` and supports
/// `color`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Badge value (smaller wins).
    pub badge: u64,
    /// Badge owner.
    pub owner: AgentId,
    /// Owner's color.
    pub color: ColorId,
}

/// Messages: a query or a claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NaiveMsg {
    /// "Send me your best claim."
    Query,
    /// A claim.
    Best(Claim),
}

impl MsgSize for NaiveMsg {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        SizeEnv::TAG_BITS
            + match self {
                NaiveMsg::Query => 0,
                NaiveMsg::Best(_) => {
                    env.value_bits as u64 + env.id_bits as u64 + env.color_bits as u64
                }
            }
    }
}

/// Behaviour of one agent in the naive protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveBehavior {
    /// Draw the badge uniformly, gossip honestly.
    Honest,
    /// Claim badge 0 (the attack: nothing verifies the draw).
    ClaimZero,
}

/// One agent of the naive min-badge election.
pub struct NaiveAgent {
    id: AgentId,
    rng: DetRng,
    /// Current best (minimum) claim known.
    pub best: Claim,
}

impl NaiveAgent {
    /// Create an agent with its initial color and behaviour.
    pub fn new(id: AgentId, color: ColorId, m: u64, seed: u64, behavior: NaiveBehavior) -> Self {
        let mut rng = DetRng::seeded(seed, 0x4A1E + id as u64);
        let badge = match behavior {
            NaiveBehavior::Honest => rng.below(m),
            NaiveBehavior::ClaimZero => 0,
        };
        NaiveAgent {
            id,
            rng,
            best: Claim {
                badge,
                owner: id,
                color,
            },
        }
    }

    fn consider(&mut self, c: Claim) {
        if c.badge < self.best.badge || (c.badge == self.best.badge && c.owner < self.best.owner)
        {
            self.best = c;
        }
    }
}

impl Agent<NaiveMsg> for NaiveAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<NaiveMsg>> {
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        Some(Op::pull(peer, NaiveMsg::Query))
    }

    fn on_pull(&mut self, _from: AgentId, query: &NaiveMsg, _ctx: &RoundCtx) -> Option<NaiveMsg> {
        match query {
            NaiveMsg::Query => Some(NaiveMsg::Best(self.best)),
            _ => None,
        }
    }

    fn on_push(&mut self, _from: AgentId, msg: &NaiveMsg, _ctx: &RoundCtx) {
        if let NaiveMsg::Best(c) = *msg {
            self.consider(c);
        }
    }

    fn on_reply(&mut self, _from: AgentId, reply: Option<NaiveMsg>, _ctx: &RoundCtx) {
        if let Some(NaiveMsg::Best(c)) = reply {
            self.consider(c);
        }
    }
}

/// Result of one naive-election run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveRun {
    /// Did all active agents agree on one claim?
    pub agreed: bool,
    /// The winning claim (of agent 0's view; equal to all others iff
    /// `agreed`).
    pub winner: Claim,
    /// Rounds executed.
    pub rounds: usize,
}

/// Run the naive election: `rounds = ceil(γ·log₂ n)` pull rounds.
pub fn run_naive_election(
    n: usize,
    colors: &[ColorId],
    cheaters: &[AgentId],
    gamma: f64,
    seed: u64,
) -> NaiveRun {
    assert_eq!(colors.len(), n);
    let m = (n as u64).saturating_pow(3);
    let q = ((gamma * gossip_net::ids::ceil_log2(n) as f64).ceil() as usize).max(1);
    let agents: Vec<NaiveAgent> = (0..n as AgentId)
        .map(|id| {
            let behavior = if cheaters.contains(&id) {
                NaiveBehavior::ClaimZero
            } else {
                NaiveBehavior::Honest
            };
            NaiveAgent::new(id, colors[id as usize], m, seed, behavior)
        })
        .collect();
    let mut net = Network::new(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
    );
    net.run(q);
    let first = net.agent(0).best;
    let agreed = (1..n as AgentId).all(|id| net.agent(id).best == first);
    NaiveRun {
        agreed,
        winner: first,
        rounds: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(n: usize) -> Vec<ColorId> {
        (0..n as ColorId).collect() // leader election flavor
    }

    #[test]
    fn honest_naive_election_converges() {
        let n = 128;
        let run = run_naive_election(n, &colors(n), &[], 3.0, 9);
        assert!(run.agreed, "pull gossip should converge in 3·log n rounds");
        assert!((run.winner.owner as usize) < n);
    }

    #[test]
    fn honest_winners_vary_across_seeds() {
        let n = 32;
        let mut winners = std::collections::HashSet::new();
        for seed in 0..20 {
            winners.insert(run_naive_election(n, &colors(n), &[], 3.0, seed).winner.owner);
        }
        assert!(winners.len() > 3, "winner should be random: {winners:?}");
    }

    #[test]
    fn claim_zero_always_wins() {
        let n = 64;
        let cheater: AgentId = 17;
        for seed in 0..10 {
            let run = run_naive_election(n, &colors(n), &[cheater], 3.0, seed);
            assert!(run.agreed);
            assert_eq!(
                run.winner.owner, cheater,
                "seed {seed}: the cheater must win the naive election"
            );
        }
    }

    #[test]
    fn two_cheaters_tie_break_by_id() {
        let n = 64;
        let run = run_naive_election(n, &colors(n), &[30, 10], 3.0, 4);
        assert!(run.agreed);
        assert_eq!(run.winner.owner, 10, "equal badges break toward lower id");
    }

    #[test]
    fn deterministic_in_seed() {
        let n = 32;
        let a = run_naive_election(n, &colors(n), &[], 2.0, 5);
        let b = run_naive_election(n, &colors(n), &[], 2.0, 5);
        assert_eq!(a, b);
    }
}
