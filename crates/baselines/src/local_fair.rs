//! LOCAL-model all-to-all fair consensus (the prior-work baseline).
//!
//! All previous rational fair consensus / leader election protocols
//! ([Abraham–Dolev–Halpern DISC'13], [Afek et al. PODC'14],
//! [Halpern–Vilaça PODC'16]) run in the LOCAL model, where each agent
//! exchanges messages with *all* neighbors each round, and rely on
//! broadcast: `Ω(n²)` messages and `Ω(n)` local memory on the complete
//! graph. This module implements the canonical commit-then-reveal scheme
//! at that cost so experiment E3 can plot both communication curves and
//! find the crossover.
//!
//! Scheme (fault-free skeleton, enough for the complexity comparison):
//!
//! 1. **Commit**: every agent draws `r_u ~ U[m]` and broadcasts a binding
//!    commitment (modeled as an opaque `O(log n)`-bit digest — we are
//!    counting communication, not implementing cryptography; see
//!    DESIGN.md §6 on substitutions).
//! 2. **Reveal**: every agent broadcasts `r_u`; everyone verifies against
//!    the commitments.
//! 3. **Elect**: the winner is `argmin_u (Σ_v r_v mod m + u) mod n`-style
//!    shared randomness — we use `(Σ r_v mod m) mod |A|` over active
//!    agents, matching the fair-election construction.
//!
//! Communication: 2 rounds × n broadcasts × (n−1) receivers = `Θ(n²)`
//! messages of `Θ(log n)` bits.

use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::DetRng;

/// Wire/communication accounting for one LOCAL run (computed exactly —
/// simulating n² message objects would only burn memory to confirm
/// arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalCost {
    /// Total messages across all rounds.
    pub messages: u64,
    /// Total bits.
    pub bits: u64,
    /// Synchronous rounds used.
    pub rounds: u64,
    /// Per-agent memory in bits (stores all n commitments).
    pub memory_bits_per_agent: u64,
}

/// Result of one LOCAL fair-consensus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRun {
    /// The elected agent.
    pub winner: AgentId,
    /// The winning color.
    pub winning_color: ColorId,
    /// Exact communication cost.
    pub cost: LocalCost,
}

/// Run the all-to-all commit-reveal fair consensus among the active
/// agents (ids `0..n`, `colors[u]` = initial color of `u`).
///
/// Fault-free by construction: the baseline is used for its *cost model*
/// and its fairness distribution, the two things E3/E4 compare against.
pub fn run_local_fair(n: usize, colors: &[ColorId], seed: u64) -> LocalRun {
    assert!(n >= 2, "need at least two agents");
    assert_eq!(colors.len(), n, "one color per agent");
    let m: u64 = (n as u64).saturating_pow(3);
    let mut rng = DetRng::seeded(seed, 0x10CA1);
    // Every agent's random contribution (drawn per-agent from split
    // streams to mirror the distributed draw).
    let contributions: Vec<u64> = (0..n)
        .map(|u| DetRng::seeded(rng.next_u64() ^ seed, u as u64).below(m))
        .collect();
    let shared: u64 = contributions.iter().fold(0u64, |acc, &r| (acc + r) % m);
    let winner = (shared % n as u64) as AgentId;

    let id_bits = gossip_net::ids::bits_for(n as u64) as u64;
    let value_bits = gossip_net::ids::bits_for(m) as u64;
    // Commit round: n agents broadcast a digest (modeled at value width)
    // to n-1 peers; reveal round: same for the opening.
    let per_round_msgs = (n as u64) * (n as u64 - 1);
    let messages = 2 * per_round_msgs;
    let bits = per_round_msgs * value_bits + per_round_msgs * value_bits;
    LocalRun {
        winner,
        winning_color: colors[winner as usize],
        cost: LocalCost {
            messages,
            bits,
            rounds: 2,
            memory_bits_per_agent: (n as u64) * (value_bits + id_bits),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_stats::chi_square::chi_square_gof;

    #[test]
    fn cost_is_quadratic() {
        let colors: Vec<ColorId> = vec![0; 100];
        let run = run_local_fair(100, &colors, 1);
        assert_eq!(run.cost.messages, 2 * 100 * 99);
        assert_eq!(run.cost.rounds, 2);
        assert!(run.cost.memory_bits_per_agent > 100 * 20);
    }

    #[test]
    fn winner_is_in_range_and_deterministic() {
        let colors: Vec<ColorId> = (0..50).map(|i| i % 3).collect();
        let a = run_local_fair(50, &colors, 42);
        let b = run_local_fair(50, &colors, 42);
        assert_eq!(a, b);
        assert!((a.winner as usize) < 50);
        assert_eq!(a.winning_color, colors[a.winner as usize]);
    }

    #[test]
    fn election_is_roughly_uniform() {
        let n = 16;
        let colors: Vec<ColorId> = (0..n as ColorId).collect();
        let trials = 3200;
        let mut counts = vec![0u64; n];
        for seed in 0..trials {
            let run = run_local_fair(n, &colors, seed);
            counts[run.winner as usize] += 1;
        }
        let expected = vec![trials as f64 / n as f64; n];
        let gof = chi_square_gof(&counts, &expected);
        assert!(
            gof.consistent_at(0.001),
            "baseline election biased: p = {}",
            gof.p_value
        );
    }

    #[test]
    fn bits_scale_quadratically_with_n() {
        let c64: Vec<ColorId> = vec![0; 64];
        let c128: Vec<ColorId> = vec![0; 128];
        let b64 = run_local_fair(64, &c64, 0).cost.bits as f64;
        let b128 = run_local_fair(128, &c128, 0).cost.bits as f64;
        let ratio = b128 / b64;
        assert!(
            ratio > 3.5 && ratio < 5.0,
            "doubling n should ≈4x the bits (got {ratio})"
        );
    }
}
