#![warn(missing_docs)]
//! # baselines — comparison protocols for the reproduction
//!
//! Three baselines situate protocol `P`:
//!
//! * [`local_fair`] — the prior-work cost model: all-to-all commit/reveal
//!   fair election in the LOCAL model, `Θ(n²)` messages and `Θ(n)` memory
//!   per agent (Abraham et al. DISC'13 style). Used by experiment E3 for
//!   the communication-complexity comparison the paper's introduction
//!   makes.
//! * [`naive_min_id`] — protocol `P` minus all its verification
//!   machinery: random badges, min spreads, owner wins. Not an
//!   equilibrium: a `claim-zero` cheater wins every run (experiment E8 —
//!   the ablation that justifies Commitment/Coherence/Verification).
//! * [`rumor`] — plain push/pull rumor spreading, the primitive behind
//!   the Find-Min phase; validates its Θ(log n) budget (experiment E10)
//!   and shows where it breaks on sparse topologies (E12).
//! * [`plurality`] — 3-majority opinion dynamics (Becchetti et al.
//!   SODA'15), the fast-but-unfair comparator motivating the fairness
//!   property (part of E4).
//! * [`voter`] — voter-model dynamics (Hassin–Peleg \[15\]): exactly fair
//!   by martingale, but Θ(n)-slow and defenseless against a single
//!   stubborn agent — separating "fair" from "rationally fair" (E4c).

pub mod local_fair;
pub mod naive_min_id;
pub mod plurality;
pub mod rumor;
pub mod voter;

pub use local_fair::{run_local_fair, LocalCost, LocalRun};
pub use naive_min_id::{run_naive_election, Claim, NaiveBehavior, NaiveRun};
pub use plurality::{run_plurality, PluralityRun};
pub use rumor::{spread_rumor, Mechanism, RumorRun};
pub use voter::{run_voter, VoterRun};
