//! 3-majority plurality dynamics (non-rational comparator).
//!
//! The paper situates itself against lightweight opinion dynamics in the
//! same communication model — notably *Plurality Consensus in the Gossip
//! Model* (Becchetti et al., SODA'15, ref. \[6\]), where each agent repeatedly
//! samples three random opinions and keeps the majority (ties → first
//! sample). Plurality dynamics converge fast and cheaply but are neither
//! *fair* (the initial plurality wins almost surely, not with probability
//! proportional to its support) nor rational-robust. Experiment E4 uses
//! this contrast to motivate the fairness property: same model, same
//! costs-ballpark, completely different winning distribution.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::network::Network;
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;

/// Wire message: an opinion query or an opinion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpinionMsg {
    /// "What is your current opinion?"
    Query,
    /// An opinion (color).
    Opinion(ColorId),
}

impl MsgSize for OpinionMsg {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        SizeEnv::TAG_BITS
            + match self {
                OpinionMsg::Query => 0,
                OpinionMsg::Opinion(_) => env.color_bits as u64,
            }
    }
}

/// One 3-majority agent. Each *iteration* takes three GOSSIP rounds (one
/// pull per round — the GOSSIP constraint allows only one operation per
/// round, so the classical "sample 3" step is pipelined over 3 rounds).
pub struct MajorityAgent {
    id: AgentId,
    rng: DetRng,
    /// Current opinion.
    pub opinion: ColorId,
    /// Samples collected in the current iteration.
    samples: [Option<ColorId>; 3],
    fill: usize,
}

impl MajorityAgent {
    /// Create an agent with its initial opinion.
    pub fn new(id: AgentId, opinion: ColorId, seed: u64) -> Self {
        MajorityAgent {
            id,
            rng: DetRng::seeded(seed, 0x3A30 + id as u64),
            opinion,
            samples: [None; 3],
            fill: 0,
        }
    }

    fn absorb(&mut self, c: ColorId) {
        if self.fill < 3 {
            self.samples[self.fill] = Some(c);
            self.fill += 1;
        }
        if self.fill == 3 {
            let s = [
                self.samples[0].unwrap(),
                self.samples[1].unwrap(),
                self.samples[2].unwrap(),
            ];
            // Majority of three, ties → first sample.
            self.opinion = if s[1] == s[2] { s[1] } else { s[0] };
            self.samples = [None; 3];
            self.fill = 0;
        }
    }
}

impl Agent<OpinionMsg> for MajorityAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<OpinionMsg>> {
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        Some(Op::pull(peer, OpinionMsg::Query))
    }

    fn on_pull(&mut self, _from: AgentId, query: &OpinionMsg, _ctx: &RoundCtx) -> Option<OpinionMsg> {
        match query {
            OpinionMsg::Query => Some(OpinionMsg::Opinion(self.opinion)),
            _ => None,
        }
    }

    fn on_reply(&mut self, _from: AgentId, reply: Option<OpinionMsg>, _ctx: &RoundCtx) {
        if let Some(OpinionMsg::Opinion(c)) = reply {
            self.absorb(c);
        }
    }
}

/// Result of a plurality-dynamics run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluralityRun {
    /// The consensus opinion if monochromatic, else `None`.
    pub consensus: Option<ColorId>,
    /// Rounds executed.
    pub rounds: usize,
    /// Final opinion counts by color.
    pub final_counts: Vec<(ColorId, usize)>,
}

/// Run 3-majority dynamics until monochromatic or the round budget ends.
pub fn run_plurality(
    n: usize,
    colors: &[ColorId],
    seed: u64,
    max_rounds: usize,
) -> PluralityRun {
    assert_eq!(colors.len(), n);
    let agents: Vec<MajorityAgent> = (0..n as AgentId)
        .map(|id| MajorityAgent::new(id, colors[id as usize], seed))
        .collect();
    let mut net = Network::new(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
    );
    let mut rounds = 0;
    for _ in 0..max_rounds {
        net.step();
        rounds += 1;
        let first = net.agent(0).opinion;
        if (1..n as AgentId).all(|id| net.agent(id).opinion == first) {
            break;
        }
    }
    let mut counts: std::collections::BTreeMap<ColorId, usize> = Default::default();
    for id in 0..n as AgentId {
        *counts.entry(net.agent(id).opinion).or_default() += 1;
    }
    let final_counts: Vec<(ColorId, usize)> = counts.into_iter().collect();
    let consensus = if final_counts.len() == 1 {
        Some(final_counts[0].0)
    } else {
        None
    };
    PluralityRun {
        consensus,
        rounds,
        final_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_clear_majority() {
        let n = 120;
        // 2/3 support color 0.
        let colors: Vec<ColorId> = (0..n).map(|i| if i % 3 == 0 { 1 } else { 0 }).collect();
        let run = run_plurality(n, &colors, 3, 2000);
        assert_eq!(run.consensus, Some(0), "plurality color must win");
    }

    #[test]
    fn plurality_is_unfair_by_design() {
        // A 70/30 split: color 0 should win essentially always — unlike
        // fair consensus where color 1 would win 30% of the time. This is
        // the motivating contrast for the paper's fairness property.
        let n = 100;
        let colors: Vec<ColorId> = (0..n).map(|i| if i < 70 { 0 } else { 1 }).collect();
        let mut wins_minority = 0;
        for seed in 0..20 {
            let run = run_plurality(n, &colors, seed, 3000);
            if run.consensus == Some(1) {
                wins_minority += 1;
            }
        }
        assert!(
            wins_minority <= 2,
            "minority won {wins_minority}/20 — should be almost never"
        );
    }

    #[test]
    fn monochromatic_start_stays_put() {
        let n = 30;
        let colors = vec![5 as ColorId; n];
        let run = run_plurality(n, &colors, 1, 100);
        assert_eq!(run.consensus, Some(5));
        assert_eq!(run.final_counts, vec![(5, 30)]);
    }

    #[test]
    fn majority_rule_logic() {
        let mut a = MajorityAgent::new(0, 9, 0);
        a.absorb(1);
        a.absorb(2);
        a.absorb(2);
        assert_eq!(a.opinion, 2, "two matching samples win");
        a.absorb(3);
        a.absorb(4);
        a.absorb(5);
        assert_eq!(a.opinion, 3, "all-distinct ties break to first sample");
    }

    #[test]
    fn budget_exhaustion_reports_mixed_state() {
        let n = 100;
        let colors: Vec<ColorId> = (0..n).map(|i| (i % 2) as ColorId).collect();
        let run = run_plurality(n, &colors, 7, 2); // way too few rounds
        assert!(run.consensus.is_none());
        assert!(run.final_counts.len() >= 2);
    }
}
