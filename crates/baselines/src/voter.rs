//! Voter-model dynamics (Hassin–Peleg proportionate agreement, the
//! paper's ref. \[15\]).
//!
//! Each round, every agent pulls one uniformly random peer and *adopts*
//! its opinion. The classical martingale argument makes this exactly
//! fair: the count of color `c` is a martingale, so
//! `Pr[c wins] = initial fraction of c` — the very fairness property the
//! paper demands. The catch is everything else:
//!
//! * convergence needs `Θ(n)` rounds on the complete graph (coalescing
//!   random walks), vs `P`'s `O(log n)`;
//! * a single *stubborn* agent that never adopts drags the whole network
//!   to its color with probability 1 — no rational robustness whatsoever.
//!
//! E4c uses this to separate the paper's two contributions: fairness
//! alone was known and easy; *rational* fairness at gossip cost is the
//! novelty.

use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::fault::FaultPlan;
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::network::Network;
use gossip_net::rng::DetRng;
use gossip_net::size::{MsgSize, SizeEnv};
use gossip_net::topology::Topology;

/// Voter-model wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoterMsg {
    /// "What is your opinion?"
    Query,
    /// An opinion.
    Opinion(ColorId),
}

impl MsgSize for VoterMsg {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        SizeEnv::TAG_BITS
            + match self {
                VoterMsg::Query => 0,
                VoterMsg::Opinion(_) => env.color_bits as u64,
            }
    }
}

/// One voter-model agent; `stubborn` agents never change their opinion
/// (the minimal rational deviation — and it wins every time).
pub struct VoterAgent {
    id: AgentId,
    rng: DetRng,
    /// Current opinion.
    pub opinion: ColorId,
    /// Never adopts if set.
    pub stubborn: bool,
}

impl VoterAgent {
    /// Create an agent.
    pub fn new(id: AgentId, opinion: ColorId, seed: u64, stubborn: bool) -> Self {
        VoterAgent {
            id,
            rng: DetRng::seeded(seed, 0x707E + id as u64),
            opinion,
            stubborn,
        }
    }
}

impl Agent<VoterMsg> for VoterAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<VoterMsg>> {
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        Some(Op::pull(peer, VoterMsg::Query))
    }

    fn on_pull(&mut self, _from: AgentId, query: &VoterMsg, _ctx: &RoundCtx) -> Option<VoterMsg> {
        match query {
            VoterMsg::Query => Some(VoterMsg::Opinion(self.opinion)),
            _ => None,
        }
    }

    fn on_reply(&mut self, _from: AgentId, reply: Option<VoterMsg>, _ctx: &RoundCtx) {
        if self.stubborn {
            return;
        }
        if let Some(VoterMsg::Opinion(c)) = reply {
            self.opinion = c;
        }
    }
}

/// Result of one voter-model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoterRun {
    /// Consensus opinion if reached within the budget.
    pub consensus: Option<ColorId>,
    /// Rounds executed.
    pub rounds: usize,
}

/// Run voter dynamics until monochromatic or `max_rounds`.
pub fn run_voter(
    n: usize,
    colors: &[ColorId],
    stubborn: &[AgentId],
    seed: u64,
    max_rounds: usize,
) -> VoterRun {
    assert_eq!(colors.len(), n);
    let agents: Vec<VoterAgent> = (0..n as AgentId)
        .map(|id| VoterAgent::new(id, colors[id as usize], seed, stubborn.contains(&id)))
        .collect();
    let mut net = Network::new(
        Topology::complete(n),
        SizeEnv::for_n(n),
        agents,
        FaultPlan::none(n),
    );
    let mut rounds = 0;
    for _ in 0..max_rounds {
        net.step();
        rounds += 1;
        let first = net.agent(0).opinion;
        if (1..n as AgentId).all(|id| net.agent(id).opinion == first) {
            return VoterRun {
                consensus: Some(first),
                rounds,
            };
        }
    }
    VoterRun {
        consensus: None,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_stats::wilson95;

    #[test]
    fn voter_model_reaches_consensus() {
        let n = 48;
        let colors: Vec<ColorId> = (0..n).map(|i| (i % 2) as ColorId).collect();
        let run = run_voter(n, &colors, &[], 3, 50_000);
        assert!(run.consensus.is_some(), "voter model must coalesce");
    }

    #[test]
    fn voter_model_is_fair_by_martingale() {
        // 1/3 minority must win ≈ 1/3 of runs.
        let n = 30;
        let colors: Vec<ColorId> = (0..n).map(|i| if i < 10 { 1 } else { 0 }).collect();
        let trials = 300u64;
        let minority_wins = (0..trials)
            .filter(|&seed| run_voter(n, &colors, &[], seed, 100_000).consensus == Some(1))
            .count() as u64;
        let iv = wilson95(minority_wins, trials);
        assert!(
            iv.contains(1.0 / 3.0),
            "voter fairness violated: {minority_wins}/{trials}"
        );
    }

    #[test]
    fn voter_model_is_slow_compared_to_log_n() {
        // Mean coalescence time on K_n is Θ(n) — far above 4·3·log2(n).
        let n = 64;
        let colors: Vec<ColorId> = (0..n).map(|i| (i % 2) as ColorId).collect();
        let mean_rounds: f64 = (0..20u64)
            .map(|s| run_voter(n, &colors, &[], s, 100_000).rounds as f64)
            .sum::<f64>()
            / 20.0;
        let p_rounds = 4.0 * 3.0 * 6.0; // protocol P at γ=3
        assert!(
            mean_rounds > p_rounds,
            "voter ({mean_rounds}) should be slower than P ({p_rounds})"
        );
    }

    #[test]
    fn one_stubborn_agent_always_wins() {
        // The fatal flaw: a single never-adopting agent wins every run.
        let n = 32;
        let colors: Vec<ColorId> = (0..n).map(|i| if i == 5 { 1 } else { 0 }).collect();
        for seed in 0..10 {
            let run = run_voter(n, &colors, &[5], seed, 200_000);
            assert_eq!(
                run.consensus,
                Some(1),
                "seed {seed}: the stubborn agent must always win"
            );
        }
    }

    #[test]
    fn stubborn_agents_are_undetectable_deviators() {
        // The stubborn agent's wire behaviour is protocol-conformant: it
        // pulls and answers exactly like everyone else. (The deviation is
        // purely internal — which is why the voter model cannot be made
        // rational without the paper's machinery.)
        let mut honest = VoterAgent::new(0, 1, 7, false);
        let mut stubborn = VoterAgent::new(0, 1, 7, true);
        let topo = Topology::complete(4);
        let ctx = RoundCtx {
            round: 0,
            topology: &topo,
        };
        assert_eq!(
            honest.on_pull(1, &VoterMsg::Query, &ctx),
            stubborn.on_pull(1, &VoterMsg::Query, &ctx)
        );
    }
}
