//! The node-to-node packet layer.
//!
//! One lockstep session exchanges **packets**; protocol messages inside
//! packets travel as full `rfc_core::codec` frames (magic, version,
//! kind, length — the same bytes a standalone capture of the socket
//! would have to parse). Packet layout:
//!
//! ```text
//! packet := type (1 byte) | varint body_len | body
//! ```
//!
//! | type | packet | body |
//! |---|---|---|
//! | `0` | `Hello`       | varint fingerprint, side byte |
//! | `1` | `TickNothing` | — (the tick owner acted locally or not at all) |
//! | `2` | `TickPush`    | varint to, codec frame |
//! | `3` | `TickQuery`   | varint to, codec frame |
//! | `4` | `Reply`       | `0` \| `1` + codec frame |
//! | `5` | `Summary`     | varint count, count × (varint id, decision) |
//!
//! A decision is `0` (failed) or `1` followed by a varint color.

use gossip_net::ids::{AgentId, ColorId};
use rfc_core::codec::{self, CodecError};
use rfc_core::msg::Msg;
use std::io::{self, Read, Write};

/// One lockstep packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Handshake: both sides must derive the same session fingerprint
    /// from their CLI parameters, and must sit on opposite sides.
    Hello {
        /// Fingerprint of `(n, γ, seed, slack, wire version)`.
        fingerprint: u64,
        /// `0` = low half (serve), `1` = high half (join).
        side: u8,
    },
    /// The tick owner performed no cross-process communication.
    TickNothing,
    /// The tick owner pushed `msg` to the peer-hosted agent `to`.
    TickPush {
        /// The receiving agent (hosted by the packet's receiver).
        to: AgentId,
        /// The pushed message.
        msg: Msg,
    },
    /// The tick owner pulls the peer-hosted agent `to`; a [`Packet::Reply`]
    /// must come back before the tick completes.
    TickQuery {
        /// The pullee (hosted by the packet's receiver).
        to: AgentId,
        /// The query message.
        query: Msg,
    },
    /// The pull reply (`None` = the pullee stayed silent).
    Reply {
        /// The reply message, if the pullee produced one.
        reply: Option<Msg>,
    },
    /// Terminal exchange: the sender's local agents' decisions.
    Summary {
        /// `(agent id, terminal color or failure)` for every hosted agent.
        decisions: Vec<(AgentId, Option<ColorId>)>,
    },
}

const PKT_HELLO: u8 = 0;
const PKT_TICK_NOTHING: u8 = 1;
const PKT_TICK_PUSH: u8 = 2;
const PKT_TICK_QUERY: u8 = 3;
const PKT_REPLY: u8 = 4;
const PKT_SUMMARY: u8 = 5;

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn codec_err(e: CodecError) -> io::Error {
    bad(format!("wire codec: {e}"))
}

/// Serialize `pkt` into `out` (appended).
pub fn encode_packet(pkt: &Packet, out: &mut Vec<u8>) {
    let mut body = Vec::new();
    let ty = match pkt {
        Packet::Hello { fingerprint, side } => {
            codec::put_varint(&mut body, *fingerprint);
            body.push(*side);
            PKT_HELLO
        }
        Packet::TickNothing => PKT_TICK_NOTHING,
        Packet::TickPush { to, msg } => {
            codec::put_varint(&mut body, *to as u64);
            codec::encode_msg_frame(msg, &mut body);
            PKT_TICK_PUSH
        }
        Packet::TickQuery { to, query } => {
            codec::put_varint(&mut body, *to as u64);
            codec::encode_msg_frame(query, &mut body);
            PKT_TICK_QUERY
        }
        Packet::Reply { reply } => {
            match reply {
                None => body.push(0),
                Some(msg) => {
                    body.push(1);
                    codec::encode_msg_frame(msg, &mut body);
                }
            }
            PKT_REPLY
        }
        Packet::Summary { decisions } => {
            codec::put_varint(&mut body, decisions.len() as u64);
            for (id, d) in decisions {
                codec::put_varint(&mut body, *id as u64);
                match d {
                    None => body.push(0),
                    Some(c) => {
                        body.push(1);
                        codec::put_varint(&mut body, *c as u64);
                    }
                }
            }
            PKT_SUMMARY
        }
    };
    out.push(ty);
    codec::put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

/// Write one packet and flush (lockstep turns require the bytes out now).
pub fn write_packet<W: Write>(w: &mut W, pkt: &Packet) -> io::Result<usize> {
    let mut buf = Vec::new();
    encode_packet(pkt, &mut buf);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len())
}

fn read_exact_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        let b = b[0];
        if shift == 63 && b > 1 {
            return Err(bad("varint overflows u64"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(bad("varint too long"));
        }
    }
}

/// Upper bound on a packet body: a `Summary` for the largest plausible
/// network plus slack. Anything bigger is a corrupt length, not a
/// message — refuse before allocating.
const MAX_BODY: u64 = 64 << 20;

fn take_msg_frame(body: &[u8], pos: &mut usize) -> io::Result<Msg> {
    let (batch, used) = codec::decode_frame(&body[*pos..]).map_err(codec_err)?;
    *pos += used;
    let mut parts = batch.into_parts();
    if parts.len() != 1 || parts[0].instance != 0 {
        return Err(bad("node packets carry single-instance frames"));
    }
    Ok(parts.remove(0).payload)
}

fn take_agent_id(body: &[u8], pos: &mut usize) -> io::Result<AgentId> {
    let v = codec::get_varint(body, pos).map_err(codec_err)?;
    AgentId::try_from(v).map_err(|_| bad("agent id exceeds u32"))
}

/// Read one packet (blocking until it fully arrives).
pub fn read_packet<R: Read>(r: &mut R) -> io::Result<Packet> {
    let mut ty = [0u8; 1];
    r.read_exact(&mut ty)?;
    let len = read_exact_varint(r)?;
    if len > MAX_BODY {
        return Err(bad(format!("packet body of {len} bytes exceeds cap")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut pos = 0usize;
    let pkt = match ty[0] {
        PKT_HELLO => {
            let fingerprint = codec::get_varint(&body, &mut pos).map_err(codec_err)?;
            let side = *body.get(pos).ok_or_else(|| bad("hello truncated"))?;
            pos += 1;
            Packet::Hello { fingerprint, side }
        }
        PKT_TICK_NOTHING => Packet::TickNothing,
        PKT_TICK_PUSH => {
            let to = take_agent_id(&body, &mut pos)?;
            let msg = take_msg_frame(&body, &mut pos)?;
            Packet::TickPush { to, msg }
        }
        PKT_TICK_QUERY => {
            let to = take_agent_id(&body, &mut pos)?;
            let query = take_msg_frame(&body, &mut pos)?;
            Packet::TickQuery { to, query }
        }
        PKT_REPLY => {
            let has = *body.get(pos).ok_or_else(|| bad("reply truncated"))?;
            pos += 1;
            let reply = match has {
                0 => None,
                1 => Some(take_msg_frame(&body, &mut pos)?),
                _ => return Err(bad("reply flag must be 0 or 1")),
            };
            Packet::Reply { reply }
        }
        PKT_SUMMARY => {
            let count = codec::get_varint(&body, &mut pos).map_err(codec_err)?;
            if count > len {
                return Err(bad("summary count exceeds body"));
            }
            let mut decisions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = take_agent_id(&body, &mut pos)?;
                let has = *body.get(pos).ok_or_else(|| bad("summary truncated"))?;
                pos += 1;
                let d = match has {
                    0 => None,
                    1 => {
                        let c = codec::get_varint(&body, &mut pos).map_err(codec_err)?;
                        Some(ColorId::try_from(c).map_err(|_| bad("color exceeds u32"))?)
                    }
                    _ => return Err(bad("decision flag must be 0 or 1")),
                };
                decisions.push((id, d));
            }
            Packet::Summary { decisions }
        }
        other => return Err(bad(format!("unknown packet type {other}"))),
    };
    if pos != body.len() {
        return Err(bad("trailing bytes after packet body"));
    }
    Ok(pkt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pkt: Packet) {
        let mut buf = Vec::new();
        encode_packet(&pkt, &mut buf);
        let back = read_packet(&mut buf.as_slice()).expect("round trip");
        assert_eq!(back, pkt);
    }

    #[test]
    fn packets_round_trip() {
        roundtrip(Packet::Hello { fingerprint: 0xDEAD_BEEF, side: 1 });
        roundtrip(Packet::TickNothing);
        roundtrip(Packet::TickPush { to: 7, msg: Msg::Vote { value: 300, round: 2 } });
        roundtrip(Packet::TickQuery { to: 1, query: Msg::QIntent });
        roundtrip(Packet::Reply { reply: None });
        roundtrip(Packet::Reply { reply: Some(Msg::QMinCert) });
        roundtrip(Packet::Summary {
            decisions: vec![(0, Some(3)), (1, None), (2, Some(0))],
        });
    }

    #[test]
    fn truncated_packets_error_cleanly() {
        let mut buf = Vec::new();
        encode_packet(
            &Packet::TickPush { to: 3, msg: Msg::Vote { value: 9, round: 1 } },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(read_packet(&mut &buf[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        // type byte + varint(huge): must refuse, not try to allocate.
        let mut buf = vec![PKT_SUMMARY];
        codec::put_varint(&mut buf, u64::MAX / 2);
        assert!(read_packet(&mut buf.as_slice()).is_err());
    }
}
