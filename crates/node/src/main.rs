//! The `rfc-node` binary: run one endpoint of a two-process consensus
//! session (or both, in loopback) over TCP or Unix sockets.

use rfc_node::{run_loopback, run_session, NodeParams, SessionReport, Side};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;

const USAGE: &str = "\
rfc-node — two-process rational fair consensus over a real socket

USAGE:
    rfc-node serve --listen  <addr> [params]   host agents [0, n/2)
    rfc-node join  --connect <addr> [params]   host agents [n/2, n)
    rfc-node loopback [params]                 both endpoints in-process

ADDR:
    unix:<path>      Unix domain socket at <path>
    tcp:<host:port>  TCP socket

PARAMS (must match on both endpoints):
    --n <usize>       agents across both endpoints   [default: 16]
    --gamma <f64>     q = ceil(gamma * log2 n)       [default: 3.0]
    --seed <u64>      master seed                    [default: 21]
    --slack <usize>   async tick budget multiplier   [default: 3]
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("rfc-node: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

struct Cli {
    addr: Option<String>,
    np: NodeParams,
}

fn parse_cli(args: &[String], addr_flag: Option<&str>) -> Result<Cli, String> {
    let mut np = NodeParams {
        n: 16,
        gamma: 3.0,
        seed: 21,
        slack: 3,
    };
    let mut addr = None;
    let mut it = args.iter();
    while let Some(flag) = {
        let next = it.next();
        next
    } {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => np.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--gamma" => np.gamma = grab()?.parse().map_err(|e| format!("--gamma: {e}"))?,
            "--seed" => np.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--slack" => np.slack = grab()?.parse().map_err(|e| format!("--slack: {e}"))?,
            f if Some(f) == addr_flag => addr = Some(grab()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if addr_flag.is_some() && addr.is_none() {
        return Err(format!("{} is required", addr_flag.unwrap()));
    }
    Ok(Cli { addr, np })
}

/// The two socket families behind one `Read + Write` session handle.
enum Sock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

fn listen(addr: &str) -> io::Result<Sock> {
    if let Some(path) = addr.strip_prefix("unix:") {
        // A stale socket file from a crashed run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        eprintln!("rfc-node: listening on unix:{path}");
        let (sock, _) = listener.accept()?;
        Ok(Sock::Unix(sock))
    } else if let Some(hostport) = addr.strip_prefix("tcp:") {
        let listener = TcpListener::bind(hostport)?;
        eprintln!("rfc-node: listening on tcp:{}", listener.local_addr()?);
        let (sock, peer) = listener.accept()?;
        eprintln!("rfc-node: peer connected from {peer}");
        sock.set_nodelay(true)?;
        Ok(Sock::Tcp(sock))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address must be unix:<path> or tcp:<host:port>, got {addr}"),
        ))
    }
}

fn connect(addr: &str) -> io::Result<Sock> {
    if let Some(path) = addr.strip_prefix("unix:") {
        // The server may not have bound yet; retry briefly.
        let mut last = None;
        for _ in 0..100 {
            match UnixStream::connect(path) {
                Ok(s) => return Ok(Sock::Unix(s)),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
        Err(last.unwrap())
    } else if let Some(hostport) = addr.strip_prefix("tcp:") {
        let mut last = None;
        for _ in 0..100 {
            match TcpStream::connect(hostport) {
                Ok(s) => {
                    s.set_nodelay(true)?;
                    return Ok(Sock::Tcp(s));
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
        Err(last.unwrap())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address must be unix:<path> or tcp:<host:port>, got {addr}"),
        ))
    }
}

fn print_report(label: &str, r: &SessionReport) {
    println!(
        "{label} outcome={:?} digest={:#018x} ticks={} msgs_sent={} bytes_sent={}",
        r.outcome, r.digest, r.ticks, r.msgs_sent, r.bytes_sent
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        return fail("missing mode");
    };
    match mode {
        "serve" | "join" => {
            let addr_flag = if mode == "serve" { "--listen" } else { "--connect" };
            let cli = match parse_cli(&args[1..], Some(addr_flag)) {
                Ok(c) => c,
                Err(e) => return fail(&e),
            };
            let addr = cli.addr.as_deref().unwrap();
            let sock = match if mode == "serve" { listen(addr) } else { connect(addr) } {
                Ok(s) => s,
                Err(e) => return fail(&format!("{addr}: {e}")),
            };
            let side = if mode == "serve" { Side::Low } else { Side::High };
            match run_session(sock, side, &cli.np) {
                Ok(r) => {
                    print_report(mode, &r);
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("session failed: {e}")),
            }
        }
        "loopback" => {
            let cli = match parse_cli(&args[1..], None) {
                Ok(c) => c,
                Err(e) => return fail(&e),
            };
            match run_loopback(&cli.np) {
                Ok((low, high)) => {
                    print_report("serve", &low);
                    print_report("join", &high);
                    if low.digest != high.digest {
                        return fail("endpoint digests disagree");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("session failed: {e}")),
            }
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown mode {other}")),
    }
}
