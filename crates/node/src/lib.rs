//! `rfc-node`: protocol `P` between two real processes.
//!
//! The simulator (`rfc_core::runner`, `rfc_core::asynchronous`) plays a
//! whole network inside one process; this crate splits the same run
//! across **two** processes connected by a TCP or Unix socket. All
//! cross-process protocol messages travel as real `rfc_core::codec`
//! frames inside a small packet layer ([`wire`]); the lockstep driver
//! ([`session`]) uses the shared deterministic wake schedule so both
//! endpoints agree on every tick without coordination traffic.
//!
//! The binary (`rfc-node`) fronts this with three modes:
//!
//! ```text
//! rfc-node serve --listen unix:/tmp/rfc.sock --n 16 --seed 21
//! rfc-node join  --connect unix:/tmp/rfc.sock --n 16 --seed 21
//! rfc-node loopback --n 16 --seed 21       # both ends, one process
//! ```
//!
//! Both endpoints print `outcome=…` and `digest=0x…` lines; a session is
//! correct iff the digests match (the CI smoke asserts exactly that).

#![warn(missing_docs)]

pub mod session;
pub mod wire;

pub use session::{run_loopback, run_session, NodeParams, SessionReport, Side};
pub use wire::{encode_packet, read_packet, write_packet, Packet};
