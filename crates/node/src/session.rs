//! The lockstep session: two processes, one sequential-GOSSIP run.
//!
//! Both endpoints derive the **same world** from `(n, γ, seed, slack)`:
//! the same [`RunConfig`], the same complete topology, the same color
//! assignment, the same per-agent RNG streams
//! ([`rfc_core::runner::streams`]), and — crucially — the same scheduler
//! stream ([`rfc_core::asynchronous::SCHEDULER_STREAM`]), so they agree
//! tick by tick on **which agent wakes** without exchanging a byte.
//!
//! The serve side hosts agents `[0, n/2)`, the join side `[n/2, n)`.
//! Each tick, the side hosting the woken agent executes its one
//! operation; cross-process traffic (and only cross-process traffic)
//! goes over the socket as [`Packet`]s carrying real
//! `rfc_core::codec` frames. The owner of a tick always sends exactly
//! one tick packet — [`Packet::TickNothing`] when the operation stayed
//! local — so the peer never guesses; a [`Packet::TickQuery`] blocks the
//! owner until the peer's [`Packet::Reply`] lands, completing the pull
//! inside its tick exactly like the simulator's `run_async`.
//!
//! After the last phase both sides exchange [`Packet::Summary`] and
//! independently combine the full decision vector — same outcome, same
//! digest, or the session (and the CI smoke) fails.

use crate::wire::{read_packet, write_packet, Packet};
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::DetRng;
use gossip_net::topology::Topology;
use rfc_core::agent_plane::AgentSlot;
use rfc_core::asynchronous::SCHEDULER_STREAM;
use rfc_core::codec::FRAME_VERSION;
use rfc_core::engine::{ConsensusAgent, ProtocolCore};
use rfc_core::outcome::{combine_decisions, Decision, Outcome};
use rfc_core::params::Phase;
use rfc_core::runner::{streams, RunConfig};
use std::io::{self, Read, Write};

/// Which half of the id space this endpoint hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Agents `[0, n/2)` — the `serve` endpoint.
    Low,
    /// Agents `[n/2, n)` — the `join` endpoint.
    High,
}

impl Side {
    fn byte(self) -> u8 {
        match self {
            Side::Low => 0,
            Side::High => 1,
        }
    }
}

/// Session parameters both endpoints must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Number of agents across both endpoints.
    pub n: usize,
    /// The protocol's `γ` (`q = ceil(γ·log₂ n)`).
    pub gamma: f64,
    /// Master seed: world derivation and the shared wake schedule.
    pub seed: u64,
    /// Async tick-budget multiplier (`slack·n·q` ticks per phase).
    pub slack: usize,
}

impl NodeParams {
    /// Session fingerprint: both ends must derive the same value or the
    /// handshake fails (they would silently disagree on every tick).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.n as u64);
        h.write(self.gamma.to_bits());
        h.write(self.seed);
        h.write(self.slack as u64);
        h.write(FRAME_VERSION as u64);
        h.finish()
    }
}

/// What one endpoint observed over a finished session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The combined outcome over **all** `n` agents.
    pub outcome: Outcome,
    /// FNV-1a digest of the full decision vector — both endpoints must
    /// report the same value.
    pub digest: u64,
    /// Ticks executed (`4·slack·n·q`).
    pub ticks: u64,
    /// Protocol messages this endpoint put on the socket (pushes,
    /// queries, produced replies — the metering contract's send events).
    pub msgs_sent: u64,
    /// Total packet bytes this endpoint wrote.
    pub bytes_sent: u64,
    /// The full per-agent decision vector.
    pub decisions: Vec<Decision>,
}

/// FNV-1a over u64 words (the same fold the test-suite digests use).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn proto_err(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn hosts(side: Side, mid: usize, id: AgentId) -> bool {
    match side {
        Side::Low => (id as usize) < mid,
        Side::High => (id as usize) >= mid,
    }
}

/// Mutable access to a hosted agent, as a free function so the borrow
/// of `slots` stays disjoint from the topology borrow inside `RoundCtx`.
fn slot_mut(
    slots: &mut [Option<AgentSlot>],
    side: Side,
    mid: usize,
    id: AgentId,
) -> io::Result<&mut AgentSlot> {
    if !hosts(side, mid, id) {
        return Err(proto_err(format!("agent {id} is not hosted here")));
    }
    slots
        .get_mut(id as usize)
        .and_then(|s| s.as_mut())
        .ok_or_else(|| proto_err(format!("agent {id} missing")))
}

/// One endpoint's live state: the locally hosted agents (by id), plus
/// the world every endpoint shares.
struct Endpoint {
    side: Side,
    mid: usize,
    n: usize,
    topology: Topology,
    /// `slots[id]` is `Some` iff this endpoint hosts `id`.
    slots: Vec<Option<AgentSlot>>,
    msgs_sent: u64,
    bytes_sent: u64,
}

impl Endpoint {
    fn build(np: &NodeParams, side: Side) -> io::Result<(Self, usize)> {
        if np.n < 4 {
            return Err(proto_err("need n >= 4 (two agents per endpoint)"));
        }
        let mid = np.n / 2;
        let cfg = RunConfig::builder(np.n)
            .gamma(np.gamma)
            .colors(vec![np.n - np.n / 2, np.n / 2])
            .build();
        let params = cfg.params();
        let schedule = params
            .try_async_schedule(np.slack)
            .map_err(|e| proto_err(e.to_string()))?;
        let topology = cfg.topology(np.seed);
        let colors = cfg.assign_colors(np.seed);
        let hosted = match side {
            Side::Low => 0..mid,
            Side::High => mid..np.n,
        };
        let mut slots: Vec<Option<AgentSlot>> = (0..np.n).map(|_| None).collect();
        for id in hosted {
            let rng = DetRng::seeded(np.seed, streams::AGENT_BASE + id as u64);
            let core = ProtocolCore::new_on(
                &topology,
                id as AgentId,
                params,
                schedule,
                colors[id],
                rng,
            );
            slots[id] = Some(AgentSlot::honest(core));
        }
        Ok((
            Endpoint {
                side,
                mid,
                n: np.n,
                topology,
                slots,
                msgs_sent: 0,
                bytes_sent: 0,
            },
            schedule.phase_len,
        ))
    }

    fn hosts(&self, id: AgentId) -> bool {
        hosts(self.side, self.mid, id)
    }

    fn send<S: Write>(&mut self, sock: &mut S, pkt: &Packet) -> io::Result<()> {
        self.msgs_sent += match pkt {
            Packet::TickPush { .. } | Packet::TickQuery { .. } => 1,
            Packet::Reply { reply: Some(_) } => 1,
            _ => 0,
        };
        self.bytes_sent += write_packet(sock, pkt)? as u64;
        Ok(())
    }

    /// Execute one tick this endpoint owns: run the woken agent's op,
    /// resolve locally when possible, otherwise over the wire.
    fn own_tick<S: Read + Write>(
        &mut self,
        sock: &mut S,
        wake: AgentId,
        round: usize,
    ) -> io::Result<()> {
        let op = {
            let ctx = RoundCtx {
                round,
                topology: &self.topology,
            };
            slot_mut(&mut self.slots, self.side, self.mid, wake)?.act(&ctx)
        };
        match op {
            None => self.send(sock, &Packet::TickNothing)?,
            Some(Op::Push { to, msg }) => {
                if self.hosts(to) {
                    let ctx = RoundCtx {
                        round,
                        topology: &self.topology,
                    };
                    slot_mut(&mut self.slots, self.side, self.mid, to)?.on_push(wake, &msg, &ctx);
                    self.msgs_sent += 1; // a local push is still a send
                    self.send(sock, &Packet::TickNothing)?;
                } else {
                    self.send(sock, &Packet::TickPush { to, msg })?;
                }
            }
            Some(Op::Pull { from: target, query }) => {
                let reply = if self.hosts(target) {
                    self.msgs_sent += 1; // the query
                    let ctx = RoundCtx {
                        round,
                        topology: &self.topology,
                    };
                    let reply = slot_mut(&mut self.slots, self.side, self.mid, target)?
                        .on_pull(wake, &query, &ctx);
                    self.msgs_sent += reply.is_some() as u64;
                    self.send(sock, &Packet::TickNothing)?;
                    reply
                } else {
                    self.send(sock, &Packet::TickQuery { to: target, query })?;
                    match read_packet(sock)? {
                        Packet::Reply { reply } => reply,
                        other => {
                            return Err(proto_err(format!(
                                "expected Reply to query, got {other:?}"
                            )))
                        }
                    }
                };
                let ctx = RoundCtx {
                    round,
                    topology: &self.topology,
                };
                slot_mut(&mut self.slots, self.side, self.mid, wake)?.on_reply(target, reply, &ctx);
            }
        }
        Ok(())
    }

    /// Execute one tick the peer owns: block for its tick packet and
    /// resolve whatever lands on our agents.
    fn peer_tick<S: Read + Write>(
        &mut self,
        sock: &mut S,
        wake: AgentId,
        round: usize,
    ) -> io::Result<()> {
        match read_packet(sock)? {
            Packet::TickNothing => {}
            Packet::TickPush { to, msg } => {
                let ctx = RoundCtx {
                    round,
                    topology: &self.topology,
                };
                slot_mut(&mut self.slots, self.side, self.mid, to)?.on_push(wake, &msg, &ctx);
            }
            Packet::TickQuery { to, query } => {
                let reply = {
                    let ctx = RoundCtx {
                        round,
                        topology: &self.topology,
                    };
                    slot_mut(&mut self.slots, self.side, self.mid, to)?.on_pull(wake, &query, &ctx)
                };
                self.send(sock, &Packet::Reply { reply })?;
            }
            other => return Err(proto_err(format!("unexpected tick packet {other:?}"))),
        }
        Ok(())
    }
}

/// Run one full lockstep session over `sock`. Returns this endpoint's
/// report; the peer's must match (`outcome`, `digest`).
pub fn run_session<S: Read + Write>(
    mut sock: S,
    side: Side,
    np: &NodeParams,
) -> io::Result<SessionReport> {
    let (mut ep, phase_len) = Endpoint::build(np, side)?;

    // Handshake: Low speaks first (a fixed order keeps the socket
    // strictly half-duplex, so lockstep reads never deadlock).
    let hello = Packet::Hello {
        fingerprint: np.fingerprint(),
        side: side.byte(),
    };
    let peer = match side {
        Side::Low => {
            ep.send(&mut sock, &hello)?;
            read_packet(&mut sock)?
        }
        Side::High => {
            let p = read_packet(&mut sock)?;
            ep.send(&mut sock, &hello)?;
            p
        }
    };
    match peer {
        Packet::Hello { fingerprint, side: s } => {
            if fingerprint != np.fingerprint() {
                return Err(proto_err(
                    "peer derives a different session fingerprint (n/gamma/seed/slack mismatch?)",
                ));
            }
            if s == side.byte() {
                return Err(proto_err("both endpoints claim the same half"));
            }
        }
        other => return Err(proto_err(format!("expected Hello, got {other:?}"))),
    }

    // The shared wake schedule: same seed, same stream, both ends.
    let mut scheduler = DetRng::seeded(np.seed, SCHEDULER_STREAM);
    let mut round = 0usize;
    for _phase in Phase::COMMUNICATING {
        for _ in 0..phase_len {
            let wake = scheduler.index(ep.n) as AgentId;
            if ep.hosts(wake) {
                ep.own_tick(&mut sock, wake, round)?;
            } else {
                ep.peer_tick(&mut sock, wake, round)?;
            }
            round += 1;
        }
    }

    // Finalize the local half and exchange summaries (Low speaks first).
    let ctx = RoundCtx {
        round,
        topology: &ep.topology,
    };
    let mut local: Vec<(AgentId, Option<ColorId>)> = Vec::new();
    for id in 0..ep.n as AgentId {
        if let Some(slot) = ep.slots[id as usize].as_mut() {
            slot.finalize(&ctx);
            local.push((id, slot.core().decision()));
        }
    }
    let summary = Packet::Summary {
        decisions: local.clone(),
    };
    let peer = match side {
        Side::Low => {
            ep.send(&mut sock, &summary)?;
            read_packet(&mut sock)?
        }
        Side::High => {
            let p = read_packet(&mut sock)?;
            ep.send(&mut sock, &summary)?;
            p
        }
    };
    let remote = match peer {
        Packet::Summary { decisions } => decisions,
        other => return Err(proto_err(format!("expected Summary, got {other:?}"))),
    };

    // Assemble the full decision vector in id order.
    let mut merged: Vec<Option<Option<ColorId>>> = vec![None; ep.n];
    for (id, d) in local.iter().chain(remote.iter()) {
        let slot = merged
            .get_mut(*id as usize)
            .ok_or_else(|| proto_err("summary id out of range"))?;
        if slot.replace(*d).is_some() {
            return Err(proto_err(format!("agent {id} reported twice")));
        }
    }
    let decisions: Vec<Decision> = merged
        .into_iter()
        .enumerate()
        .map(|(id, d)| {
            d.map(|opt| match opt {
                Some(c) => Decision::Decided(c),
                None => Decision::Failed,
            })
            .ok_or_else(|| proto_err(format!("agent {id} missing from summaries")))
        })
        .collect::<io::Result<_>>()?;

    let outcome = combine_decisions(&decisions);
    let mut h = Fnv::new();
    for (id, d) in decisions.iter().enumerate() {
        h.write(id as u64);
        match d {
            Decision::Faulty => h.write(0),
            Decision::Failed => h.write(1),
            Decision::Decided(c) => {
                h.write(2);
                h.write(*c as u64);
            }
        }
    }
    Ok(SessionReport {
        outcome,
        digest: h.finish(),
        ticks: 4 * phase_len as u64,
        msgs_sent: ep.msgs_sent,
        bytes_sent: ep.bytes_sent,
        decisions,
    })
}

/// Run both endpoints of a session inside one process over a Unix
/// socketpair — the CI-friendly smoke that needs no filesystem path or
/// port. Returns `(low report, high report)`.
pub fn run_loopback(np: &NodeParams) -> io::Result<(SessionReport, SessionReport)> {
    let (a, b) = std::os::unix::net::UnixStream::pair()?;
    let np_high = *np;
    let high = std::thread::spawn(move || run_session(b, Side::High, &np_high));
    let low = run_session(a, Side::Low, np)?;
    let high = high
        .join()
        .map_err(|_| proto_err("high endpoint thread panicked"))??;
    Ok((low, high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_session_reaches_matching_consensus() {
        let np = NodeParams {
            n: 16,
            gamma: 3.0,
            seed: 21,
            slack: 3,
        };
        let (low, high) = run_loopback(&np).expect("session");
        assert!(
            low.outcome.is_consensus(),
            "loopback session should converge: {:?}",
            low.outcome
        );
        assert_eq!(low.outcome, high.outcome);
        assert_eq!(low.digest, high.digest, "endpoints must agree bit-for-bit");
        assert_eq!(low.decisions, high.decisions);
        assert_eq!(low.ticks, high.ticks);
        assert!(low.bytes_sent > 0 && high.bytes_sent > 0, "real bytes moved");
    }

    #[test]
    fn loopback_is_deterministic_across_runs() {
        let np = NodeParams {
            n: 12,
            gamma: 3.0,
            seed: 7,
            slack: 3,
        };
        let (a1, b1) = run_loopback(&np).unwrap();
        let (a2, b2) = run_loopback(&np).unwrap();
        assert_eq!(a1.digest, a2.digest);
        assert_eq!(b1.digest, b2.digest);
        assert_eq!(a1.msgs_sent, a2.msgs_sent);
        assert_eq!(a1.bytes_sent, a2.bytes_sent);
    }

    #[test]
    fn mismatched_fingerprints_fail_the_handshake() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let np_low = NodeParams {
            n: 12,
            gamma: 3.0,
            seed: 7,
            slack: 3,
        };
        let np_high = NodeParams {
            seed: 8, // disagrees
            ..np_low
        };
        let t = std::thread::spawn(move || run_session(b, Side::High, &np_high));
        let low = run_session(a, Side::Low, &np_low);
        let high = t.join().unwrap();
        assert!(low.is_err() || high.is_err(), "handshake must reject");
    }
}
