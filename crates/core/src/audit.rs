//! Good-execution auditing (paper Definition 2).
//!
//! A *good* execution of the cooperative protocol satisfies three global
//! events, none of which any single agent can observe locally:
//!
//! 1. every active agent received `Θ(log n)` votes,
//! 2. all accumulated `k_u` values are distinct (so `k_min` is unique),
//! 3. after Find-Min every active agent holds the same minimum
//!    certificate.
//!
//! Lemma 3 proves each holds w.h.p.; experiment E5 *measures* how often
//! they hold at finite `n` as a function of `γ`. The audit inspects the
//! post-run agent states directly (the simulator is allowed the global
//! view that the agents themselves are denied).

use crate::engine::ConsensusAgent;
use crate::msg::Msg;
use gossip_net::ids::AgentId;
use gossip_net::network::Network;

/// Measured good-execution events for one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodExecutionReport {
    /// Minimum votes received by any active agent (G1 raw data).
    pub votes_min: usize,
    /// Maximum votes received by any active agent.
    pub votes_max: usize,
    /// Mean votes received over active agents.
    pub votes_mean: f64,
    /// G1 (as used by the proofs): every active agent received ≥ 1 vote,
    /// so its `k_u` is a uniform draw no coalition controls.
    pub every_agent_voted_on: bool,
    /// G2: the `k_u` values of active agents are pairwise distinct.
    pub k_values_distinct: bool,
    /// G3: all active agents finished Find-Min with the same certificate.
    pub minima_agree: bool,
    /// Number of active agents audited.
    pub n_active: usize,
}

impl GoodExecutionReport {
    /// The conjunction of the three events of Definition 2.
    pub fn is_good(&self) -> bool {
        self.every_agent_voted_on && self.k_values_distinct && self.minima_agree
    }
}

/// Audit a finished network for the Definition-2 events.
///
/// "Active" is the survivor set — agents active **at finalization**
/// ([`Network::fault_state`]) — matching the survivor-set outcome
/// accounting of `collect_report`: an agent still crashed at the end is
/// not audited (it holds no votes by construction), one that recovered
/// is audited for whatever it managed to collect. Identical to the plan
/// view for static runs.
pub fn audit_good_execution<A: ConsensusAgent>(net: &Network<Msg, A>) -> GoodExecutionReport {
    let faults = net.fault_state();
    let mut votes_min = usize::MAX;
    let mut votes_max = 0usize;
    let mut votes_sum = 0usize;
    let mut ks: Vec<u64> = Vec::with_capacity(faults.n_active());
    let mut minimum: Option<&crate::certificate::Certificate> = None;
    let mut minima_agree = true;
    let mut n_active = 0usize;

    for id in 0..net.n() as AgentId {
        if faults.is_down(id) {
            continue;
        }
        n_active += 1;
        let core = net.agent(id).core();
        // `votes_received()` (monotone counter), not `votes.len()`: the
        // receipt buffer moves into `own_cert` at certificate build, so
        // its length is 0 by audit time.
        let nv = core.votes_received();
        votes_min = votes_min.min(nv);
        votes_max = votes_max.max(nv);
        votes_sum += nv;
        if let Some(k) = core.k() {
            ks.push(k);
        }
        match (&minimum, &core.min_cert) {
            (None, Some(ce)) => minimum = Some(ce),
            (Some(prev), Some(ce)) => {
                if *prev != ce {
                    minima_agree = false;
                }
            }
            (_, None) => minima_agree = false,
        }
    }

    ks.sort_unstable();
    let k_values_distinct = ks.windows(2).all(|w| w[0] != w[1]) && ks.len() == n_active;

    GoodExecutionReport {
        votes_min: if n_active == 0 { 0 } else { votes_min },
        votes_max,
        votes_mean: if n_active == 0 {
            0.0
        } else {
            votes_sum as f64 / n_active as f64
        },
        every_agent_voted_on: n_active > 0 && votes_min >= 1,
        k_values_distinct,
        minima_agree,
        n_active,
    }
}

#[cfg(test)]
mod tests {

    use crate::runner::{run_protocol, RunConfig};
    use gossip_net::fault::Placement;

    #[test]
    fn honest_runs_are_good_at_moderate_gamma() {
        let cfg = RunConfig::builder(64)
            .gamma(3.0)
            .colors(vec![32, 32])
            .record_ops(true)
            .build();
        for seed in 0..5 {
            let report = run_protocol(&cfg, seed);
            let audit = report.audit.expect("audit requested");
            assert!(
                audit.is_good(),
                "seed {seed}: expected good execution, got {audit:?}"
            );
            assert!(audit.votes_mean > 0.0);
            assert_eq!(audit.n_active, 64);
        }
    }

    #[test]
    fn good_executions_survive_faults() {
        let cfg = RunConfig::builder(64)
            .gamma(4.0)
            .colors(vec![32, 32])
            .faults(0.3, Placement::Random { seed: 1 })
            .record_ops(true)
            .build();
        let report = run_protocol(&cfg, 11);
        let audit = report.audit.unwrap();
        assert!(audit.is_good(), "{audit:?}");
        assert_eq!(audit.n_active, 64 - 19);
    }

    #[test]
    fn audit_counts_the_survivor_set_under_churn() {
        // Regression: the audit used to consult the immutable FaultPlan,
        // so scripted-crash agents were audited as active — a round-0
        // crash (behaviorally identical to a plan fault) then reported
        // n_active = n and is_good() = false purely from churn
        // accounting. It must audit the survivor set instead.
        let cfg = RunConfig::builder(32)
            .gamma(3.0)
            .colors(vec![16, 16])
            .record_ops(true)
            .scenario(gossip_net::dynamics::ScenarioScript::new().crash(0, (24..32).collect()))
            .build();
        let report = run_protocol(&cfg, 7);
        assert!(report.outcome.is_consensus());
        assert_eq!(report.n_active, 24);
        let audit = report.audit.unwrap();
        assert_eq!(audit.n_active, 24, "audit must cover the survivor set");
        assert!(audit.is_good(), "round-0 churn ≈ plan faults: {audit:?}");
    }

    #[test]
    fn vote_counts_concentrate_around_q_times_active_fraction() {
        // Each active agent sends q votes to uniform targets, so a target
        // expects q·|A|/n votes; with no faults that is q.
        let n = 128;
        let cfg = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![64, 64])
            .record_ops(true)
            .build();
        let q = cfg.params().q as f64;
        let report = run_protocol(&cfg, 5);
        let audit = report.audit.unwrap();
        assert!(
            (audit.votes_mean - q).abs() < 0.5,
            "mean votes {} should be ≈ q = {q}",
            audit.votes_mean
        );
    }

    #[test]
    fn tiny_m_breaks_k_distinctness() {
        // E11 preview: with m = 2 the k values collide massively.
        let cfg = RunConfig::builder(64)
            .gamma(3.0)
            .colors(vec![32, 32])
            .m(2)
            .record_ops(true)
            .build();
        let report = run_protocol(&cfg, 3);
        let audit = report.audit.unwrap();
        assert!(!audit.k_values_distinct, "m=2 must produce k collisions");
    }
}
