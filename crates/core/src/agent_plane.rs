//! The monomorphic agent plane: one enum, one jump table, no vtables.
//!
//! [`AgentSlot`] is the closed sum of every agent the workspace ships —
//! the honest protocol agent plus one variant per deviation strategy in
//! [`crate::strategies`] — with a [`AgentSlot::Custom`] escape hatch for
//! out-of-tree strategies. Networks on the Monte-Carlo hot path are
//! `Network<Msg, AgentSlot>`:
//!
//! * **dispatch** is a match on the discriminant (a jump table the
//!   optimizer can see through and often hoist), not an opaque indirect
//!   call through a per-object vtable pointer;
//! * **storage** is one contiguous `Vec<AgentSlot>` — agents live inline,
//!   id-order iteration in `Network::step` walks memory linearly instead
//!   of chasing `n` heap pointers;
//! * **construction** costs no per-agent `Box` allocation, which matters
//!   because the Monte-Carlo harness builds `n` agents per trial,
//!   millions of times.
//!
//! Use [`AgentSlot::Custom`] only for agents defined outside this crate
//! (see `examples/custom_strategy.rs`): that variant pays the old boxed
//! vtable cost for its agent, while every other agent in the same network
//! still rides the fast path. The dyn-vs-enum equivalence is pinned by
//! `tests/dispatch_equivalence.rs` — same seed, bit-identical report.

use crate::engine::{ConsensusAgent, HonestAgent, ProtocolCore, Role};
use crate::msg::Msg;
use crate::strategies::equivocate::EquivocatorAgent;
use crate::strategies::forge_cert::ForgeAgent;
use crate::strategies::play_dead::DeadAgent;
use crate::strategies::spite_abort::SpiteAgent;
use crate::strategies::spy_tune::SpyAgent;
use crate::strategies::suppress_min::CensorAgent;
use crate::strategies::vote_rig::VoteRigAgent;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;

/// Every agent type that can occupy a network slot, dispatched by enum
/// discriminant (see the module docs for why).
pub enum AgentSlot {
    /// Follows protocol `P` exactly.
    Honest(HonestAgent),
    /// Vote-rigging deviator ([`crate::strategies::vote_rig`]).
    VoteRig(VoteRigAgent),
    /// Certificate-forging deviator ([`crate::strategies::forge_cert`]).
    ForgeCert(ForgeAgent),
    /// Spy-and-tune deviator ([`crate::strategies::spy_tune`]).
    SpyTune(SpyAgent),
    /// Play-dead deviator ([`crate::strategies::play_dead`]).
    PlayDead(DeadAgent),
    /// Equivocating deviator ([`crate::strategies::equivocate`]).
    Equivocate(EquivocatorAgent),
    /// Minimum-suppressing deviator ([`crate::strategies::suppress_min`]).
    SuppressMin(CensorAgent),
    /// Spite-abort deviator ([`crate::strategies::spite_abort`]).
    SpiteAbort(SpiteAgent),
    /// Escape hatch for out-of-tree agents: boxed dynamic dispatch for
    /// this slot only. Everything else in the network stays monomorphic.
    Custom(Box<dyn ConsensusAgent>),
}

impl AgentSlot {
    /// Wrap an honest protocol core.
    pub fn honest(core: ProtocolCore) -> Self {
        AgentSlot::Honest(HonestAgent::new(core))
    }

    /// Box an out-of-tree agent into the escape hatch.
    pub fn custom(agent: impl ConsensusAgent + 'static) -> Self {
        AgentSlot::Custom(Box::new(agent))
    }
}

impl From<HonestAgent> for AgentSlot {
    fn from(a: HonestAgent) -> Self {
        AgentSlot::Honest(a)
    }
}

impl From<Box<dyn ConsensusAgent>> for AgentSlot {
    fn from(a: Box<dyn ConsensusAgent>) -> Self {
        AgentSlot::Custom(a)
    }
}

/// Apply one expression to whichever agent occupies the slot. For the
/// `Custom` variant the binding is the `Box<dyn ConsensusAgent>` itself
/// (both `Agent` and `ConsensusAgent` forward through `Box`).
macro_rules! dispatch {
    ($slot:expr, $a:ident => $body:expr) => {
        match $slot {
            AgentSlot::Honest($a) => $body,
            AgentSlot::VoteRig($a) => $body,
            AgentSlot::ForgeCert($a) => $body,
            AgentSlot::SpyTune($a) => $body,
            AgentSlot::PlayDead($a) => $body,
            AgentSlot::Equivocate($a) => $body,
            AgentSlot::SuppressMin($a) => $body,
            AgentSlot::SpiteAbort($a) => $body,
            AgentSlot::Custom($a) => $body,
        }
    };
}

impl Agent<Msg> for AgentSlot {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        dispatch!(self, a => a.act(ctx))
    }
    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        dispatch!(self, a => a.on_pull(from, query, ctx))
    }
    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        dispatch!(self, a => a.on_push(from, msg, ctx))
    }
    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        dispatch!(self, a => a.on_reply(from, reply, ctx))
    }
    fn finalize(&mut self, ctx: &RoundCtx) {
        dispatch!(self, a => a.finalize(ctx))
    }
}

impl ConsensusAgent for AgentSlot {
    fn core(&self) -> &ProtocolCore {
        dispatch!(self, a => ConsensusAgent::core(a))
    }
    fn role(&self) -> Role {
        dispatch!(self, a => ConsensusAgent::role(a))
    }
}

// The staged round engine shards one trial's `Vec<AgentSlot>` (and the
// in-flight `Op<Msg>` buffer) across scoped worker threads. These
// assertions fail to *compile* if any slot variant or message payload
// regresses to thread-bound state (`Rc`, `Cell`, `RefCell`).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<AgentSlot>();
    assert_send::<Msg>();
    assert_sync::<Msg>(); // deliveries hand shards a shared `&Msg`
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use gossip_net::rng::DetRng;
    use gossip_net::topology::Topology;

    fn mk_core(id: AgentId) -> ProtocolCore {
        let params = Params::new(16, 2.0);
        ProtocolCore::new(id, params, params.sync_schedule(), 1, DetRng::seeded(3, id as u64))
    }

    #[test]
    fn honest_slot_behaves_like_honest_agent() {
        let topo = Topology::complete(16);
        let ctx = RoundCtx { round: 0, topology: &topo };
        let mut slot = AgentSlot::honest(mk_core(1));
        let mut direct = HonestAgent::new(mk_core(1));
        assert_eq!(slot.act(&ctx), direct.act(&ctx));
        assert_eq!(ConsensusAgent::core(&slot).color, 1);
        assert_eq!(ConsensusAgent::role(&slot), Role::Honest);
    }

    #[test]
    fn custom_slot_forwards_role_and_core() {
        let slot = AgentSlot::custom(HonestAgent::new(mk_core(2)));
        assert_eq!(ConsensusAgent::role(&slot), Role::Honest);
        assert_eq!(ConsensusAgent::core(&slot).id, 2);
        assert!(matches!(slot, AgentSlot::Custom(_)));
    }

    #[test]
    fn strategy_builds_land_in_their_variant() {
        use crate::coalition::{new_coalition, Coalition};
        use crate::strategies::{self, Strategy};
        let coalition = new_coalition(vec![1], 1);
        let cases: Vec<(Box<dyn Strategy>, fn(&AgentSlot) -> bool)> = vec![
            (Box::new(strategies::vote_rig::VoteRig), |s| {
                matches!(s, AgentSlot::VoteRig(_))
            }),
            (Box::new(strategies::forge_cert::ForgeCert::zero_k()), |s| {
                matches!(s, AgentSlot::ForgeCert(_))
            }),
            (Box::new(strategies::spy_tune::SpyAndTune), |s| {
                matches!(s, AgentSlot::SpyTune(_))
            }),
            (Box::new(strategies::play_dead::PlayDead::silent()), |s| {
                matches!(s, AgentSlot::PlayDead(_))
            }),
            (Box::new(strategies::equivocate::Equivocate), |s| {
                matches!(s, AgentSlot::Equivocate(_))
            }),
            (Box::new(strategies::suppress_min::SuppressMin), |s| {
                matches!(s, AgentSlot::SuppressMin(_))
            }),
            (Box::new(strategies::spite_abort::SpiteAbort), |s| {
                matches!(s, AgentSlot::SpiteAbort(_))
            }),
        ];
        for (strategy, is_variant) in cases {
            let slot = strategy.build(mk_core(1), Coalition::clone(&coalition));
            assert!(is_variant(&slot), "{} built the wrong variant", strategy.name());
            assert_eq!(
                ConsensusAgent::role(&slot),
                Role::Deviator(strategy.name()),
                "{} role mismatch",
                strategy.name()
            );
        }
    }
}
