//! Protocol parameters and the phase schedule.
//!
//! Protocol `P` is parametrized (paper, Algorithm 1) by:
//!
//! * the network size `n`, known to every agent;
//! * the per-phase round budget `q = γ·log n`, where `γ = γ(α)` grows with
//!   the fault-tolerance parameter `α` (the analysis only requires "a
//!   suitable constant"; experiments E5/E6 measure how large is enough);
//! * the vote space `[m]` with `m = n³`, which makes all accumulated `k_u`
//!   values distinct w.h.p. (paper Lemma 3, point 2 — birthday bound).
//!
//! The run consists of four communicating phases of `q` rounds each —
//! Commitment, Voting, Find-Min, Coherence — preceded by the local
//! Voting-Intention draw and followed by the local Verification step.
//! [`PhaseSchedule`] maps a global round number to a phase; the
//! synchronous schedule uses `phase_len = q`, while the asynchronous
//! (sequential-GOSSIP) extension stretches each phase to `Θ(n·q)` ticks so
//! every agent gets `≥ q` activations per phase w.h.p.

use gossip_net::ids::ceil_log2;
use std::fmt;

/// The protocol's communicating phases, plus the terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Pull vote intentions from random agents (builds the ledger `L_u`).
    Commitment,
    /// Push the declared votes (builds the vote set `W_u`).
    Voting,
    /// Pull-broadcast of the minimum-`k` certificate.
    FindMin,
    /// Push the held minimum certificate; any mismatch fails the protocol.
    Coherence,
    /// All communication done; only Verification (local) remains.
    Finished,
}

impl Phase {
    /// Human-readable phase label (also the metrics phase name).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Commitment => "commitment",
            Phase::Voting => "voting",
            Phase::FindMin => "find-min",
            Phase::Coherence => "coherence",
            Phase::Finished => "finished",
        }
    }

    /// The four communicating phases in execution order.
    pub const COMMUNICATING: [Phase; 4] = [
        Phase::Commitment,
        Phase::Voting,
        Phase::FindMin,
        Phase::Coherence,
    ];
}

/// Maps global round numbers to protocol phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Rounds (sync) or ticks (async) allotted to each phase.
    pub phase_len: usize,
}

impl PhaseSchedule {
    /// The phase active at global round `round`.
    ///
    /// This is called several times per delivered message (every agent
    /// callback keys its behaviour off the phase), so it avoids the
    /// integer division a naive `round / phase_len` would pay on every
    /// call — a few predictable compares against multiples of
    /// `phase_len` cost ~1 cycle each, a division by a runtime divisor
    /// ~20+.
    #[inline]
    pub fn phase_of(&self, round: usize) -> Phase {
        let l = self.phase_len;
        if round < 2 * l {
            if round < l {
                Phase::Commitment
            } else {
                Phase::Voting
            }
        } else if round < 3 * l {
            Phase::FindMin
        } else if round < 4 * l {
            Phase::Coherence
        } else {
            Phase::Finished
        }
    }

    /// Total communicating rounds (after which Verification runs).
    #[inline]
    pub fn total_rounds(&self) -> usize {
        4 * self.phase_len
    }

    /// Round window `[lo, hi)` occupied by `phase` (Finished is empty).
    pub fn window(&self, phase: Phase) -> (usize, usize) {
        let idx = match phase {
            Phase::Commitment => 0,
            Phase::Voting => 1,
            Phase::FindMin => 2,
            Phase::Coherence => 3,
            Phase::Finished => {
                return (self.total_rounds(), self.total_rounds());
            }
        };
        (idx * self.phase_len, (idx + 1) * self.phase_len)
    }
}

/// Schedule arithmetic that cannot be represented on this target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// `slack·n·q` ticks per phase (or `4·slack·n·q` total) overflow
    /// `usize` — the asynchronous run cannot be scheduled at this scale.
    TickBudgetOverflow {
        /// The requested slack multiplier.
        slack: usize,
        /// The network size.
        n: usize,
        /// The per-phase round budget.
        q: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TickBudgetOverflow { slack, n, q } => write!(
                f,
                "async tick budget slack·n·q = {slack}·{n}·{q} overflows usize on this target"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// All protocol parameters, fixed before round 0 and shared by every agent
/// (each agent knows `n` and the fault-tolerance parameter — paper §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Number of agents `n`.
    pub n: usize,
    /// Per-phase round budget `q = max(1, ceil(γ·log₂ n))`.
    pub q: usize,
    /// Vote-space size `m` (paper: `n³`).
    pub m: u64,
    /// The constant `γ` used to derive `q`.
    pub gamma: f64,
    /// Whether verification also checks the agent's *own* declared votes
    /// against `W_min` (a refinement the paper's proof implies; on by
    /// default, toggleable for the E11 ablation).
    pub check_self_votes: bool,
}

impl Params {
    /// Canonical parameters for `n` agents: `q = ceil(γ·log₂ n)`, `m = n³`.
    pub fn new(n: usize, gamma: f64) -> Self {
        assert!(n >= 2, "protocol needs at least two agents");
        assert!(gamma > 0.0, "γ must be positive");
        let q = ((gamma * ceil_log2(n) as f64).ceil() as usize).max(1);
        Params {
            n,
            q,
            m: (n as u64).saturating_pow(3),
            gamma,
            check_self_votes: true,
        }
    }

    /// Override the vote-space size `m` (E11 ablation: `m = n` produces
    /// `k` collisions and breaks the uniqueness of the minimum).
    pub fn with_m(mut self, m: u64) -> Self {
        assert!(m >= 2, "vote space must have at least two values");
        self.m = m;
        self
    }

    /// Override the per-phase round budget directly.
    pub fn with_q(mut self, q: usize) -> Self {
        assert!(q >= 1);
        self.q = q;
        self
    }

    /// Disable the self-vote verification refinement.
    pub fn without_self_vote_check(mut self) -> Self {
        self.check_self_votes = false;
        self
    }

    /// The synchronous schedule: each phase takes exactly `q` rounds.
    pub fn sync_schedule(&self) -> PhaseSchedule {
        PhaseSchedule { phase_len: self.q }
    }

    /// The asynchronous (sequential-GOSSIP) schedule: each phase is
    /// stretched to `slack · n · q` ticks so that every agent is activated
    /// at least `q` times per phase w.h.p. (activations per agent per phase
    /// are Binomial(slack·n·q, 1/n), mean `slack·q`).
    ///
    /// Panics if the tick budget overflows `usize`; fallible callers
    /// (landmark-scale sweeps, 32-bit targets where `slack·n·q` wraps
    /// well inside realistic parameters) should use
    /// [`Params::try_async_schedule`].
    pub fn async_schedule(&self, slack: usize) -> PhaseSchedule {
        match self.try_async_schedule(slack) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked form of [`Params::async_schedule`]: errors instead of
    /// silently wrapping when `slack·n·q` (or the 4-phase total the run
    /// loop iterates) does not fit in `usize`. The unchecked multiply
    /// wrapped on 32-bit targets at landmark scales — a wrapped budget
    /// truncates every phase to a sliver of its ticks and the run fails
    /// *plausibly* instead of loudly.
    pub fn try_async_schedule(&self, slack: usize) -> Result<PhaseSchedule, ScheduleError> {
        assert!(slack >= 1);
        let overflow = || ScheduleError::TickBudgetOverflow {
            slack,
            n: self.n,
            q: self.q,
        };
        let phase_len = slack
            .checked_mul(self.n)
            .and_then(|v| v.checked_mul(self.q))
            .ok_or_else(overflow)?;
        // The driver iterates all four phases back to back; the total
        // must be addressable too or the round counter itself wraps.
        phase_len.checked_mul(4).ok_or_else(overflow)?;
        Ok(PhaseSchedule { phase_len })
    }

    /// Total synchronous rounds of the four communicating phases.
    pub fn total_rounds(&self) -> usize {
        self.sync_schedule().total_rounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_scales_with_log_n() {
        let p = Params::new(1024, 2.0);
        assert_eq!(p.q, 20); // 2 * log2(1024)
        let p = Params::new(1 << 16, 1.0);
        assert_eq!(p.q, 16);
    }

    #[test]
    fn q_is_at_least_one() {
        let p = Params::new(2, 0.1);
        assert!(p.q >= 1);
    }

    #[test]
    fn m_is_n_cubed() {
        let p = Params::new(100, 1.0);
        assert_eq!(p.m, 1_000_000);
    }

    #[test]
    fn m_saturates_instead_of_overflowing() {
        let p = Params::new(u32::MAX as usize, 1.0);
        assert_eq!(p.m, u64::MAX); // saturating_pow
    }

    #[test]
    fn phase_of_partitions_rounds() {
        let p = Params::new(64, 1.0); // q = 6
        let s = p.sync_schedule();
        assert_eq!(s.phase_of(0), Phase::Commitment);
        assert_eq!(s.phase_of(5), Phase::Commitment);
        assert_eq!(s.phase_of(6), Phase::Voting);
        assert_eq!(s.phase_of(12), Phase::FindMin);
        assert_eq!(s.phase_of(18), Phase::Coherence);
        assert_eq!(s.phase_of(23), Phase::Coherence);
        assert_eq!(s.phase_of(24), Phase::Finished);
        assert_eq!(s.phase_of(1000), Phase::Finished);
    }

    #[test]
    fn windows_tile_the_schedule() {
        let s = Params::new(256, 1.5).sync_schedule();
        let mut expected_lo = 0;
        for ph in Phase::COMMUNICATING {
            let (lo, hi) = s.window(ph);
            assert_eq!(lo, expected_lo);
            assert_eq!(hi - lo, s.phase_len);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, s.total_rounds());
        let (lo, hi) = s.window(Phase::Finished);
        assert_eq!(lo, hi);
    }

    #[test]
    fn async_schedule_stretches_phases() {
        let p = Params::new(64, 1.0);
        let s = p.async_schedule(2);
        assert_eq!(s.phase_len, 2 * 64 * p.q);
        assert_eq!(s.phase_of(0), Phase::Commitment);
        assert_eq!(s.phase_of(2 * 64 * p.q), Phase::Voting);
    }

    #[test]
    fn builder_overrides() {
        let p = Params::new(64, 1.0).with_m(64).with_q(3);
        assert_eq!(p.m, 64);
        assert_eq!(p.q, 3);
        assert!(p.check_self_votes);
        assert!(!p.without_self_vote_check().check_self_votes);
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_tiny_n() {
        let _ = Params::new(1, 1.0);
    }

    #[test]
    fn async_schedule_overflow_is_a_typed_error() {
        // Params fields are pub, so a landmark-scale config that cannot
        // exist via `Params::new` on this target is still constructible
        // for the arithmetic check.
        let p = Params {
            n: usize::MAX / 4,
            q: 16,
            m: u64::MAX,
            gamma: 3.0,
            check_self_votes: true,
        };
        let err = p.try_async_schedule(2).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::TickBudgetOverflow { slack: 2, q: 16, .. }
        ));
        assert!(err.to_string().contains("overflows"));
        // The 4-phase total must fit as well, not just one phase.
        let p = Params {
            n: usize::MAX / 3,
            q: 1,
            m: u64::MAX,
            gamma: 3.0,
            check_self_votes: true,
        };
        assert!(p.try_async_schedule(1).is_err());
        // Sane parameters still succeed and agree with the panicking form.
        let p = Params::new(64, 1.0);
        assert_eq!(p.try_async_schedule(2).unwrap(), p.async_schedule(2));
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn unchecked_async_schedule_panics_loudly_on_overflow() {
        let p = Params {
            n: usize::MAX / 2,
            q: 8,
            m: u64::MAX,
            gamma: 3.0,
            check_self_votes: true,
        };
        let _ = p.async_schedule(4);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Commitment.name(), "commitment");
        assert_eq!(Phase::FindMin.name(), "find-min");
    }
}
