//! Run outcomes, per-agent decisions, and the utility model.
//!
//! The protocol's final state is an element of `S = Σ ∪ {⊥}`: either all
//! active agents agree on a winning color, or the protocol *fails*. The
//! paper's normalized payoff scheme (§2) gives agent `u`:
//!
//! * `util_u = 1` if the winning color is `c_u`,
//! * `util_u = 0` if another color wins,
//! * `util_u = −χ` (for a fixed `χ ≥ 0`) if the protocol fails.
//!
//! Failing is *very bad* for everyone — that is what makes sabotage
//! ("spite") deviations unprofitable and lets Verification use failure as
//! a deterrent.

use gossip_net::ids::ColorId;

/// Global outcome of one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every active agent terminated supporting this color.
    Consensus(ColorId),
    /// Some active agent failed, or active agents disagree: `⊥`.
    Fail,
}

impl Outcome {
    /// The winning color, if consensus was reached.
    pub fn winning_color(&self) -> Option<ColorId> {
        match self {
            Outcome::Consensus(c) => Some(*c),
            Outcome::Fail => None,
        }
    }

    /// Did the run reach consensus?
    pub fn is_consensus(&self) -> bool {
        matches!(self, Outcome::Consensus(_))
    }
}

/// Per-agent terminal status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The agent was faulty from round 0 and never participated.
    Faulty,
    /// The agent terminated supporting this color.
    Decided(ColorId),
    /// The agent entered the invalid ("fail") state.
    Failed,
}

/// The paper's normalized utility: 1 for own color, 0 for another color,
/// `−χ` for failure.
pub fn utility(outcome: Outcome, own_color: ColorId, chi: f64) -> f64 {
    debug_assert!(chi >= 0.0, "χ must be non-negative");
    match outcome {
        Outcome::Consensus(c) if c == own_color => 1.0,
        Outcome::Consensus(_) => 0.0,
        Outcome::Fail => -chi,
    }
}

/// Derive the global outcome from active agents' decisions.
///
/// Consensus requires *every* active agent to have decided, and all
/// decisions to agree (the paper's Termination + Agreement conditions);
/// anything else is `⊥`.
pub fn combine_decisions(decisions: &[Decision]) -> Outcome {
    let mut winner: Option<ColorId> = None;
    let mut saw_active = false;
    for d in decisions {
        match d {
            Decision::Faulty => {}
            Decision::Failed => return Outcome::Fail,
            Decision::Decided(c) => {
                saw_active = true;
                match winner {
                    None => winner = Some(*c),
                    Some(w) if w == *c => {}
                    Some(_) => return Outcome::Fail,
                }
            }
        }
    }
    match (saw_active, winner) {
        (true, Some(c)) => Outcome::Consensus(c),
        _ => Outcome::Fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_matches_payoff_scheme() {
        assert_eq!(utility(Outcome::Consensus(3), 3, 2.0), 1.0);
        assert_eq!(utility(Outcome::Consensus(4), 3, 2.0), 0.0);
        assert_eq!(utility(Outcome::Fail, 3, 2.0), -2.0);
        assert_eq!(utility(Outcome::Fail, 3, 0.0), 0.0);
    }

    #[test]
    fn unanimous_decisions_are_consensus() {
        let ds = vec![
            Decision::Decided(5),
            Decision::Faulty,
            Decision::Decided(5),
        ];
        assert_eq!(combine_decisions(&ds), Outcome::Consensus(5));
    }

    #[test]
    fn any_failure_fails_the_run() {
        let ds = vec![Decision::Decided(5), Decision::Failed];
        assert_eq!(combine_decisions(&ds), Outcome::Fail);
    }

    #[test]
    fn disagreement_fails_the_run() {
        let ds = vec![Decision::Decided(5), Decision::Decided(6)];
        assert_eq!(combine_decisions(&ds), Outcome::Fail);
    }

    #[test]
    fn all_faulty_is_fail() {
        let ds = vec![Decision::Faulty, Decision::Faulty];
        assert_eq!(combine_decisions(&ds), Outcome::Fail);
    }

    #[test]
    fn empty_is_fail() {
        assert_eq!(combine_decisions(&[]), Outcome::Fail);
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(Outcome::Consensus(9).winning_color(), Some(9));
        assert_eq!(Outcome::Fail.winning_color(), None);
        assert!(Outcome::Consensus(0).is_consensus());
        assert!(!Outcome::Fail.is_consensus());
    }
}
