//! Votes and certificates.
//!
//! After the Voting phase every agent `u` owns a **certificate**
//! `CE_u = (k_u, W_u, c_u, u)` where `W_u` is the multiset of votes `u`
//! received and `k_u = Σ_{h ∈ W_u} h mod m`. The Find-Min phase spreads
//! the certificate with the minimum `k`; Verification later re-derives
//! `k` from `W` and cross-checks `W` against the Commitment declarations.
//!
//! Each vote is recorded as `(voter, round, value)` — the `round` is the
//! index of the vote inside the voter's declared intention list `H_v`,
//! which is what lets Verification match votes against declarations
//! *exactly* (the paper keeps `W` abstract; tagging votes by their
//! intention index is the deterministic refinement that makes the
//! consistency check well-defined even when the same voter targets the
//! same agent twice).

use gossip_net::ids::{AgentId, ColorId};
use crate::sharing::Shared;

/// One received vote: `voter` sent `value` as the `round`-th entry of its
/// declared intention list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VoteRec {
    /// The authenticated sender of the vote.
    pub voter: AgentId,
    /// Index of this vote in the voter's intention list `H_voter`.
    pub round: u16,
    /// The vote value `h ∈ [m]`.
    pub value: u64,
}

/// A vote multiset in struct-of-arrays layout: three parallel lanes
/// (`voters`, `rounds`, `values`) instead of a `Vec<VoteRec>`.
///
/// The hot scans — the modular sum behind `k`, the structural range
/// checks, the per-voter runs Verification walks — each touch exactly
/// one or two lanes, so the compiler can vectorize them and the cache
/// carries no padding (14 packed bytes per vote vs 16 with the AoS
/// record). The element view is still [`VoteRec`]: `iter`/`get`
/// materialize records on the fly, so call sites keep record semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VoteLanes {
    voters: Vec<AgentId>,
    rounds: Vec<u16>,
    values: Vec<u64>,
}

impl VoteLanes {
    /// Empty lanes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty lanes with room for `cap` votes in each lane.
    pub fn with_capacity(cap: usize) -> Self {
        VoteLanes {
            voters: Vec::with_capacity(cap),
            rounds: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of votes.
    #[inline]
    pub fn len(&self) -> usize {
        self.voters.len()
    }

    /// Whether the multiset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.voters.is_empty()
    }

    /// The voter lane.
    #[inline]
    pub fn voters(&self) -> &[AgentId] {
        &self.voters
    }

    /// The intention-index lane.
    #[inline]
    pub fn rounds(&self) -> &[u16] {
        &self.rounds
    }

    /// The value lane.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Append one vote.
    #[inline]
    pub fn push(&mut self, v: VoteRec) {
        self.voters.push(v.voter);
        self.rounds.push(v.round);
        self.values.push(v.value);
    }

    /// The `i`-th vote, materialized as a record.
    #[inline]
    pub fn get(&self, i: usize) -> VoteRec {
        VoteRec {
            voter: self.voters[i],
            round: self.rounds[i],
            value: self.values[i],
        }
    }

    /// Overwrite the `i`-th vote.
    #[inline]
    pub fn set(&mut self, i: usize, v: VoteRec) {
        self.voters[i] = v.voter;
        self.rounds[i] = v.round;
        self.values[i] = v.value;
    }

    /// Remove and return the `i`-th vote, shifting later votes left
    /// (`Vec::remove` semantics, applied to every lane).
    pub fn remove(&mut self, i: usize) -> VoteRec {
        VoteRec {
            voter: self.voters.remove(i),
            round: self.rounds.remove(i),
            value: self.values.remove(i),
        }
    }

    /// Iterate the votes as materialized records.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = VoteRec> + '_ {
        self.voters
            .iter()
            .zip(&self.rounds)
            .zip(&self.values)
            .map(|((&voter, &round), &value)| VoteRec {
                voter,
                round,
                value,
            })
    }

    /// Whether the lanes are in canonical `(voter, round)` order.
    #[inline]
    pub fn is_canonically_sorted(&self) -> bool {
        self.voters
            .windows(2)
            .zip(self.rounds.windows(2))
            .all(|(v, r)| (v[0], r[0]) <= (v[1], r[1]))
    }

    /// Sort into canonical `(voter, round)` order.
    ///
    /// Implemented by materializing the records and running the exact
    /// record sort the AoS representation used
    /// (`sort_unstable_by_key(|v| (v.voter, v.round))`): unstable-sort
    /// tie behaviour on duplicate `(voter, round)` keys is part of the
    /// observable certificate bytes, so the lane layout must reproduce
    /// it permutation-for-permutation. The re-gathered lanes are exactly
    /// sized, so sorting also sheds any receipt-buffer over-capacity.
    pub fn sort_canonical(&mut self) {
        let mut recs = self.to_vec();
        recs.sort_unstable_by_key(|v| (v.voter, v.round));
        self.voters = recs.iter().map(|v| v.voter).collect();
        self.rounds = recs.iter().map(|v| v.round).collect();
        self.values = recs.iter().map(|v| v.value).collect();
    }

    /// Remove consecutive duplicate votes (`Vec::dedup` semantics over
    /// the full `(voter, round, value)` triple).
    pub fn dedup(&mut self) {
        let mut w = 0usize;
        for r in 0..self.len() {
            if r > 0 && self.get(r) == self.get(w - 1) {
                continue;
            }
            if r != w {
                let v = self.get(r);
                self.set(w, v);
            }
            w += 1;
        }
        self.voters.truncate(w);
        self.rounds.truncate(w);
        self.values.truncate(w);
    }

    /// `Σ value mod m` over the value lane (one vectorizable pass).
    #[inline]
    pub fn sum_mod(&self, m: u64) -> u64 {
        debug_assert!(m >= 1);
        // Accumulate exactly in u128 and reduce once (see `sum_votes_mod`).
        let sum: u128 = self.values.iter().map(|&v| v as u128).sum();
        (sum % m as u128) as u64
    }

    /// Materialize as a record vector (tests / interop).
    pub fn to_vec(&self) -> Vec<VoteRec> {
        self.iter().collect()
    }
}

impl From<Vec<VoteRec>> for VoteLanes {
    fn from(recs: Vec<VoteRec>) -> Self {
        let mut lanes = VoteLanes::with_capacity(recs.len());
        for v in recs {
            lanes.push(v);
        }
        lanes
    }
}

impl FromIterator<VoteRec> for VoteLanes {
    fn from_iter<I: IntoIterator<Item = VoteRec>>(iter: I) -> Self {
        let mut lanes = VoteLanes::new();
        for v in iter {
            lanes.push(v);
        }
        lanes
    }
}

/// Certificate payload `CE = (k, W, c, owner)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertData {
    /// Accumulated vote value `k = Σ value mod m`, as declared by `owner`.
    pub k: u64,
    /// The votes `W` the owner claims to have received, in canonical
    /// `(voter, round)` order, stored as struct-of-arrays lanes.
    pub votes: VoteLanes,
    /// The owner's initial color `c_owner`.
    pub color: ColorId,
    /// The owner's label.
    pub owner: AgentId,
}

/// A shareable certificate. `Shared` because Find-Min and Coherence clone the
/// same payload `Θ(n log n)` times; sharing makes those clones O(1) and
/// equality still compares payloads.
pub type Certificate = Shared<CertData>;

impl CertData {
    /// Build the honest certificate from received votes: sorts the votes
    /// into canonical order and accumulates `k = Σ value mod m`.
    pub fn build(
        owner: AgentId,
        color: ColorId,
        votes: Vec<VoteRec>,
        m: u64,
    ) -> CertData {
        Self::build_lanes(owner, color, votes.into(), m)
    }

    /// [`CertData::build`] over lanes the caller already owns — the hot
    /// path: the agent's receipt buffer moves straight into the
    /// certificate, no intermediate record vector.
    pub fn build_lanes(
        owner: AgentId,
        color: ColorId,
        mut votes: VoteLanes,
        m: u64,
    ) -> CertData {
        votes.sort_canonical();
        let k = votes.sum_mod(m);
        CertData {
            k,
            votes,
            color,
            owner,
        }
    }

    /// Re-derive `k` from the contained votes; Verification's first check
    /// is `self.k == self.derived_k(m)`.
    pub fn derived_k(&self, m: u64) -> u64 {
        self.votes.sum_mod(m)
    }

    /// All votes claimed to come from `voter`, in declaration order.
    pub fn votes_from(&self, voter: AgentId) -> impl Iterator<Item = VoteRec> + '_ {
        self.votes.iter().filter(move |v| v.voter == voter)
    }

    /// Structural sanity for a certificate circulating among `n` agents
    /// with vote space `m` and `q` voting rounds: field ranges only (the
    /// paper's agents accept any *plausible* certificate during Find-Min
    /// and defer semantic checks to Verification).
    ///
    /// Each range check scans one flat lane — a branchless accumulator
    /// fold the compiler can vectorize (honest certificates pass every
    /// entry, so short-circuiting would never fire on the hot path).
    pub fn structurally_valid(&self, n: usize, m: u64, q: usize) -> bool {
        let nn = n as u32;
        self.k < m
            && (self.owner as usize) < n
            && self.votes.voters().iter().fold(true, |ok, &v| ok & (v < nn))
            && self.votes.values().iter().fold(true, |ok, &v| ok & (v < m))
            && self
                .votes
                .rounds()
                .iter()
                .fold(true, |ok, &r| ok & ((r as usize) < q))
    }
}

/// `Σ value mod m` over a vote slice (the order is irrelevant because
/// addition mod m is commutative; we still keep votes canonically sorted
/// so certificate equality is syntactic).
pub fn sum_votes_mod(votes: &[VoteRec], m: u64) -> u64 {
    debug_assert!(m >= 1);
    // Accumulate exactly in u128 and reduce once: identical to reducing
    // after every addition ((Σ v) mod m == (Σ (v mod m)) mod m), but one
    // division instead of 2·|votes|. A u128 sum of u64 values cannot
    // overflow below 2^64 summands.
    let sum: u128 = votes.iter().map(|v| v.value as u128).sum();
    (sum % m as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(voter: AgentId, round: u16, value: u64) -> VoteRec {
        VoteRec {
            voter,
            round,
            value,
        }
    }

    #[test]
    fn build_sorts_and_accumulates() {
        let m = 1000;
        let cert = CertData::build(7, 3, vec![v(2, 1, 500), v(1, 0, 700)], m);
        assert_eq!(cert.votes.get(0).voter, 1);
        assert_eq!(cert.k, 200); // (500 + 700) mod 1000
        assert_eq!(cert.owner, 7);
        assert_eq!(cert.color, 3);
    }

    #[test]
    fn lanes_round_trip_records() {
        let recs = vec![v(3, 1, 10), v(1, 0, 20), v(3, 0, 30)];
        let lanes: VoteLanes = recs.clone().into();
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.to_vec(), recs);
        assert_eq!(lanes.get(1), recs[1]);
        assert_eq!(lanes.voters(), &[3, 1, 3]);
        assert_eq!(lanes.rounds(), &[1, 0, 0]);
        assert_eq!(lanes.values(), &[10, 20, 30]);
    }

    #[test]
    fn lane_sort_matches_record_sort() {
        // The lane co-sort must reproduce the AoS sort exactly,
        // including unstable-tie behaviour on duplicate (voter, round)
        // keys — certificate bytes are digest-pinned.
        let recs: Vec<VoteRec> = (0..100)
            .map(|i: u64| v((i * 7 % 13) as AgentId, (i % 3) as u16, i * 31 % 97))
            .collect();
        let mut sorted = recs.clone();
        sorted.sort_unstable_by_key(|r| (r.voter, r.round));
        let mut lanes: VoteLanes = recs.into();
        lanes.sort_canonical();
        assert_eq!(lanes.to_vec(), sorted);
        assert!(lanes.is_canonically_sorted());
    }

    #[test]
    fn lane_mutators_match_vec_semantics() {
        let mut lanes: VoteLanes = vec![v(1, 0, 5), v(2, 0, 6), v(2, 0, 6), v(3, 1, 7)].into();
        lanes.dedup();
        assert_eq!(lanes.to_vec(), vec![v(1, 0, 5), v(2, 0, 6), v(3, 1, 7)]);
        let removed = lanes.remove(1);
        assert_eq!(removed, v(2, 0, 6));
        assert_eq!(lanes.to_vec(), vec![v(1, 0, 5), v(3, 1, 7)]);
        lanes.set(0, v(9, 2, 11));
        assert_eq!(lanes.get(0), v(9, 2, 11));
        lanes.push(v(4, 0, 1));
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.sum_mod(10), (11 + 7 + 1) % 10);
    }

    #[test]
    fn empty_vote_set_sums_to_zero() {
        let cert = CertData::build(0, 0, vec![], 997);
        assert_eq!(cert.k, 0);
        assert_eq!(cert.derived_k(997), 0);
    }

    #[test]
    fn derived_k_matches_build() {
        let m = 12345;
        let votes: Vec<_> = (0..50).map(|i| v(i, (i % 7) as u16, (i as u64) * 999)).collect();
        let cert = CertData::build(1, 1, votes, m);
        assert_eq!(cert.k, cert.derived_k(m));
    }

    #[test]
    fn sum_is_order_independent() {
        let m = 101;
        let a = vec![v(1, 0, 50), v(2, 0, 60), v(3, 0, 70)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(sum_votes_mod(&a, m), sum_votes_mod(&b, m));
    }

    #[test]
    fn sum_reduces_oversized_values() {
        // Values >= m are reduced before accumulation, so adversarial
        // values cannot overflow or escape the ring.
        let m = 10;
        assert_eq!(sum_votes_mod(&[v(0, 0, u64::MAX)], m), u64::MAX % 10);
    }

    #[test]
    fn votes_from_filters_by_voter() {
        let cert = CertData::build(
            9,
            0,
            vec![v(1, 0, 5), v(2, 0, 6), v(1, 3, 7)],
            100,
        );
        let from1: Vec<_> = cert.votes_from(1).collect();
        assert_eq!(from1.len(), 2);
        assert!(from1.iter().all(|r| r.voter == 1));
        assert_eq!(cert.votes_from(5).count(), 0);
    }

    #[test]
    fn structural_validation_catches_out_of_range() {
        let good = CertData::build(3, 0, vec![v(1, 2, 50)], 100);
        assert!(good.structurally_valid(10, 100, 5));
        // k out of range
        let mut bad = good.clone();
        bad.k = 100;
        assert!(!bad.structurally_valid(10, 100, 5));
        // voter out of range
        let bad = CertData::build(3, 0, vec![v(99, 2, 50)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // round out of range
        let bad = CertData::build(3, 0, vec![v(1, 9, 50)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // value out of range
        let bad = CertData::build(3, 0, vec![v(1, 2, 100)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // owner out of range
        let bad = CertData::build(33, 0, vec![], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
    }

    #[test]
    fn arc_equality_compares_payloads() {
        let a: Certificate = Shared::new(CertData::build(1, 2, vec![v(0, 0, 3)], 10));
        let b: Certificate = Shared::new(CertData::build(1, 2, vec![v(0, 0, 3)], 10));
        assert_eq!(a, b);
        let c: Certificate = Shared::new(CertData::build(1, 3, vec![v(0, 0, 3)], 10));
        assert_ne!(a, c);
    }
}
