//! Votes and certificates.
//!
//! After the Voting phase every agent `u` owns a **certificate**
//! `CE_u = (k_u, W_u, c_u, u)` where `W_u` is the multiset of votes `u`
//! received and `k_u = Σ_{h ∈ W_u} h mod m`. The Find-Min phase spreads
//! the certificate with the minimum `k`; Verification later re-derives
//! `k` from `W` and cross-checks `W` against the Commitment declarations.
//!
//! Each vote is recorded as `(voter, round, value)` — the `round` is the
//! index of the vote inside the voter's declared intention list `H_v`,
//! which is what lets Verification match votes against declarations
//! *exactly* (the paper keeps `W` abstract; tagging votes by their
//! intention index is the deterministic refinement that makes the
//! consistency check well-defined even when the same voter targets the
//! same agent twice).

use gossip_net::ids::{AgentId, ColorId};
use crate::sharing::Shared;

/// One received vote: `voter` sent `value` as the `round`-th entry of its
/// declared intention list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VoteRec {
    /// The authenticated sender of the vote.
    pub voter: AgentId,
    /// Index of this vote in the voter's intention list `H_voter`.
    pub round: u16,
    /// The vote value `h ∈ [m]`.
    pub value: u64,
}

/// Certificate payload `CE = (k, W, c, owner)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertData {
    /// Accumulated vote value `k = Σ value mod m`, as declared by `owner`.
    pub k: u64,
    /// The votes `W` the owner claims to have received, in canonical
    /// `(voter, round)` order.
    pub votes: Vec<VoteRec>,
    /// The owner's initial color `c_owner`.
    pub color: ColorId,
    /// The owner's label.
    pub owner: AgentId,
}

/// A shareable certificate. `Shared` because Find-Min and Coherence clone the
/// same payload `Θ(n log n)` times; sharing makes those clones O(1) and
/// equality still compares payloads.
pub type Certificate = Shared<CertData>;

impl CertData {
    /// Build the honest certificate from received votes: sorts the votes
    /// into canonical order and accumulates `k = Σ value mod m`.
    pub fn build(
        owner: AgentId,
        color: ColorId,
        mut votes: Vec<VoteRec>,
        m: u64,
    ) -> CertData {
        votes.sort_unstable_by_key(|v| (v.voter, v.round));
        let k = sum_votes_mod(&votes, m);
        CertData {
            k,
            votes,
            color,
            owner,
        }
    }

    /// Re-derive `k` from the contained votes; Verification's first check
    /// is `self.k == self.derived_k(m)`.
    pub fn derived_k(&self, m: u64) -> u64 {
        sum_votes_mod(&self.votes, m)
    }

    /// All votes claimed to come from `voter`, in declaration order.
    pub fn votes_from(&self, voter: AgentId) -> impl Iterator<Item = &VoteRec> {
        self.votes.iter().filter(move |v| v.voter == voter)
    }

    /// Structural sanity for a certificate circulating among `n` agents
    /// with vote space `m` and `q` voting rounds: field ranges only (the
    /// paper's agents accept any *plausible* certificate during Find-Min
    /// and defer semantic checks to Verification).
    pub fn structurally_valid(&self, n: usize, m: u64, q: usize) -> bool {
        self.k < m
            && (self.owner as usize) < n
            && self
                .votes
                .iter()
                .all(|v| (v.voter as usize) < n && v.value < m && (v.round as usize) < q)
    }
}

/// `Σ value mod m` over a vote slice (the order is irrelevant because
/// addition mod m is commutative; we still keep votes canonically sorted
/// so certificate equality is syntactic).
pub fn sum_votes_mod(votes: &[VoteRec], m: u64) -> u64 {
    debug_assert!(m >= 1);
    // Accumulate exactly in u128 and reduce once: identical to reducing
    // after every addition ((Σ v) mod m == (Σ (v mod m)) mod m), but one
    // division instead of 2·|votes|. A u128 sum of u64 values cannot
    // overflow below 2^64 summands.
    let sum: u128 = votes.iter().map(|v| v.value as u128).sum();
    (sum % m as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(voter: AgentId, round: u16, value: u64) -> VoteRec {
        VoteRec {
            voter,
            round,
            value,
        }
    }

    #[test]
    fn build_sorts_and_accumulates() {
        let m = 1000;
        let cert = CertData::build(7, 3, vec![v(2, 1, 500), v(1, 0, 700)], m);
        assert_eq!(cert.votes[0].voter, 1);
        assert_eq!(cert.k, 200); // (500 + 700) mod 1000
        assert_eq!(cert.owner, 7);
        assert_eq!(cert.color, 3);
    }

    #[test]
    fn empty_vote_set_sums_to_zero() {
        let cert = CertData::build(0, 0, vec![], 997);
        assert_eq!(cert.k, 0);
        assert_eq!(cert.derived_k(997), 0);
    }

    #[test]
    fn derived_k_matches_build() {
        let m = 12345;
        let votes: Vec<_> = (0..50).map(|i| v(i, (i % 7) as u16, (i as u64) * 999)).collect();
        let cert = CertData::build(1, 1, votes, m);
        assert_eq!(cert.k, cert.derived_k(m));
    }

    #[test]
    fn sum_is_order_independent() {
        let m = 101;
        let a = vec![v(1, 0, 50), v(2, 0, 60), v(3, 0, 70)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(sum_votes_mod(&a, m), sum_votes_mod(&b, m));
    }

    #[test]
    fn sum_reduces_oversized_values() {
        // Values >= m are reduced before accumulation, so adversarial
        // values cannot overflow or escape the ring.
        let m = 10;
        assert_eq!(sum_votes_mod(&[v(0, 0, u64::MAX)], m), u64::MAX % 10);
    }

    #[test]
    fn votes_from_filters_by_voter() {
        let cert = CertData::build(
            9,
            0,
            vec![v(1, 0, 5), v(2, 0, 6), v(1, 3, 7)],
            100,
        );
        let from1: Vec<_> = cert.votes_from(1).collect();
        assert_eq!(from1.len(), 2);
        assert!(from1.iter().all(|r| r.voter == 1));
        assert_eq!(cert.votes_from(5).count(), 0);
    }

    #[test]
    fn structural_validation_catches_out_of_range() {
        let good = CertData::build(3, 0, vec![v(1, 2, 50)], 100);
        assert!(good.structurally_valid(10, 100, 5));
        // k out of range
        let mut bad = good.clone();
        bad.k = 100;
        assert!(!bad.structurally_valid(10, 100, 5));
        // voter out of range
        let bad = CertData::build(3, 0, vec![v(99, 2, 50)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // round out of range
        let bad = CertData::build(3, 0, vec![v(1, 9, 50)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // value out of range
        let bad = CertData::build(3, 0, vec![v(1, 2, 100)], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
        // owner out of range
        let bad = CertData::build(33, 0, vec![], 100);
        assert!(!bad.structurally_valid(10, 100, 5));
    }

    #[test]
    fn arc_equality_compares_payloads() {
        let a: Certificate = Shared::new(CertData::build(1, 2, vec![v(0, 0, 3)], 10));
        let b: Certificate = Shared::new(CertData::build(1, 2, vec![v(0, 0, 3)], 10));
        assert_eq!(a, b);
        let c: Certificate = Shared::new(CertData::build(1, 3, vec![v(0, 0, 3)], 10));
        assert_ne!(a, c);
    }
}
