//! The protocol state machine (`ProtocolCore`) and the honest agent.
//!
//! [`ProtocolCore`] holds the full local state of protocol `P` for one
//! agent — intentions `H_u`, ledger `L_u`, vote set `W_u`, accumulated
//! `k_u`, current minimum certificate — together with methods implementing
//! the *honest* behaviour of every phase. [`HonestAgent`] is the thin
//! [`Agent`] wrapper that always follows those methods.
//!
//! Deviating strategies (crate `adversary`) embed the same core and
//! override selected actions; this mirrors the paper's strategy space
//! where a coalition member may replace any subset of the local rules
//! while remaining subject to the GOSSIP constraints.
//!
//! ## Fidelity notes
//!
//! * **Fail semantics** — "make the protocol fail" (paper: the agent
//!   enters an invalid state, e.g. supports a color outside `Σ`). Here a
//!   failed agent sets [`ProtocolCore::failed`] and from then on behaves
//!   exactly like a faulty node (no actions, no replies): externally
//!   indistinguishable from a crash, and the run's outcome is already
//!   `Fail` whichever way the remaining rounds play out.
//! * **Query answering across phases** — honest agents answer `QIntent`
//!   in *any* phase (the list is already committed; this avoids spurious
//!   faulty-markings under the asynchronous schedule where per-agent
//!   phase boundaries are slightly skewed) and answer `QMinCert` only
//!   once their own certificate exists (from Find-Min on).
//! * **Vote acceptance** — votes are accepted only while the *receiver*
//!   is in its Voting phase; early or late vote injections by deviators
//!   are dropped, matching the paper's implicit synchrony.
//! * **Find-Min acceptance** — any structurally plausible certificate
//!   with a smaller `k` is adopted (semantic checks are deferred to
//!   Verification, exactly as in Algorithm 1). Ties on `k` keep the
//!   current certificate; if a tie ever splits the network the Coherence
//!   phase fails it, and Lemma 3(2) makes ties vanishing-rare.

use crate::certificate::{CertData, Certificate, VoteLanes, VoteRec};
use crate::ledger::{ConsistencyError, Ledger};
use crate::msg::{IntentEntry, IntentList, Msg};
use crate::params::{Params, Phase, PhaseSchedule};
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::DetRng;
use crate::sharing::Shared;

/// Why Verification rejected the winning certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyFailure {
    /// `k ≠ Σ W mod m`: the declared accumulator doesn't match the votes.
    BadSum,
    /// The certificate fails structural field-range checks.
    Structural,
    /// The vote set contradicts this agent's commitment ledger.
    Inconsistent(ConsistencyError),
    /// The vote set contradicts the agent's *own* declared votes.
    SelfVoteMismatch,
    /// The agent failed earlier (Coherence mismatch), before Verification.
    FailedEarlier,
}

/// Whether the agent follows the protocol or runs a named deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Follows protocol `P` exactly.
    Honest,
    /// Runs the named deviating strategy (see crate `adversary`).
    Deviator(&'static str),
}

/// Full local protocol state for one agent.
#[derive(Debug, Clone)]
pub struct ProtocolCore {
    /// This agent's label.
    pub id: AgentId,
    /// Shared protocol parameters.
    pub params: Params,
    /// Round→phase mapping (synchronous or asynchronous).
    pub schedule: PhaseSchedule,
    /// Initial color `c_u`.
    pub color: ColorId,
    /// Private randomness stream.
    pub rng: DetRng,
    /// Vote intentions `H_u` drawn in the Voting-Intention phase.
    pub intents: IntentList,
    /// Commitment ledger `L_u`.
    pub ledger: Ledger,
    /// Received votes `W_u`, in struct-of-arrays lanes (receipt order).
    /// This is a *receipt buffer*: [`ProtocolCore::ensure_certificate`]
    /// moves it into `own_cert` instead of cloning it, so after the
    /// certificate is built the lanes are empty — read
    /// [`ProtocolCore::votes_received`] for the count, which survives.
    pub votes: VoteLanes,
    /// Votes received during Voting (monotone; unlike `votes`, not
    /// consumed by certificate construction).
    pub votes_recv: u32,
    /// Next intention index to push during Voting.
    pub vote_idx: usize,
    /// Own certificate `CE_u` (built at the end of Voting).
    pub own_cert: Option<Certificate>,
    /// Current minimum certificate `CE_u^min`.
    pub min_cert: Option<Certificate>,
    /// Set when the agent makes the protocol fail.
    pub failed: bool,
    /// Diagnostic: why verification failed (if it did).
    pub verify_failure: Option<VerifyFailure>,
    /// Final decision (the winning color) if verification succeeded.
    pub decided: Option<ColorId>,
}

impl ProtocolCore {
    /// Initialize the agent: draws the vote-intention list `H_u`
    /// (`q` pairs, values u.a.r. in `[m]`, targets u.a.r. in `[n]`) —
    /// the paper's `Initialize` + `Voting-Intention` steps. This is the
    /// complete-graph constructor; see [`ProtocolCore::new_on`] for
    /// arbitrary topologies.
    pub fn new(
        id: AgentId,
        params: Params,
        schedule: PhaseSchedule,
        color: ColorId,
        mut rng: DetRng,
    ) -> Self {
        let intents: IntentList = (0..params.q)
            .map(|_| IntentEntry {
                value: rng.below(params.m),
                target: rng.index(params.n) as AgentId,
            })
            .collect::<Vec<_>>()
            .into();
        Self::with_intents(id, params, schedule, color, rng, intents)
    }

    /// Topology-aware constructor (the E12 extension): vote targets are
    /// drawn uniformly from the agent's *neighbors*, which coincides with
    /// the paper's u.a.r.-in-`[n]` rule on the complete graph.
    pub fn new_on(
        topology: &gossip_net::topology::Topology,
        id: AgentId,
        params: Params,
        schedule: PhaseSchedule,
        color: ColorId,
        mut rng: DetRng,
    ) -> Self {
        let intents: IntentList = (0..params.q)
            .map(|_| IntentEntry {
                value: rng.below(params.m),
                target: topology.sample_peer(id, &mut rng),
            })
            .collect::<Vec<_>>()
            .into();
        Self::with_intents(id, params, schedule, color, rng, intents)
    }

    /// Core constructor over an explicit intention list.
    pub fn with_intents(
        id: AgentId,
        params: Params,
        schedule: PhaseSchedule,
        color: ColorId,
        rng: DetRng,
        intents: IntentList,
    ) -> Self {
        ProtocolCore {
            id,
            params,
            schedule,
            color,
            rng,
            intents,
            ledger: Ledger::with_capacity(params.q + 1),
            votes: VoteLanes::with_capacity(params.q + 8),
            votes_recv: 0,
            vote_idx: 0,
            own_cert: None,
            min_cert: None,
            failed: false,
            verify_failure: None,
            decided: None,
        }
    }

    /// The phase this agent attributes to global round `round`.
    #[inline]
    pub fn phase(&self, round: usize) -> Phase {
        self.schedule.phase_of(round)
    }

    /// Enter the invalid state ("make the protocol fail").
    pub fn fail(&mut self, why: VerifyFailure) {
        if !self.failed {
            self.failed = true;
            self.verify_failure = Some(why);
        }
    }

    /// Build `CE_u` from the received votes if not yet built, and seed the
    /// minimum certificate with it. Idempotent.
    ///
    /// The receipt buffer is *moved* into the certificate, not cloned:
    /// vote acceptance is phase-gated to Voting and certificate
    /// construction happens at Find-Min entry, so no later push can miss
    /// the buffer. (This halves the per-agent vote footprint — the old
    /// clone kept both the receipt-order buffer and the sorted copy
    /// alive to the end of the run.) Deviator strategies that need the
    /// receipt-order votes must read them *before* this call.
    pub fn ensure_certificate(&mut self) {
        if self.own_cert.is_none() {
            let votes = std::mem::take(&mut self.votes);
            let cert: Certificate = Shared::new(CertData::build_lanes(
                self.id,
                self.color,
                votes,
                self.params.m,
            ));
            self.own_cert = Some(Shared::clone(&cert));
            if self.min_cert.is_none() {
                self.min_cert = Some(cert);
            }
        }
    }

    /// Total votes accepted during Voting — stable across certificate
    /// construction (which consumes the receipt buffer itself).
    #[inline]
    pub fn votes_received(&self) -> usize {
        self.votes_recv as usize
    }

    /// `k_u`, available from the end of the Voting phase.
    pub fn k(&self) -> Option<u64> {
        self.own_cert.as_ref().map(|c| c.k)
    }

    // ------------------------------------------------------------------
    // Honest per-phase behaviour
    // ------------------------------------------------------------------

    /// Honest action for the current round.
    pub fn act_honest(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        if self.failed {
            return None;
        }
        match self.phase(ctx.round) {
            Phase::Commitment => {
                let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
                Some(Op::pull(peer, Msg::QIntent))
            }
            Phase::Voting => {
                if self.vote_idx < self.intents.len() {
                    let e = self.intents[self.vote_idx];
                    let msg = Msg::Vote {
                        value: e.value,
                        round: self.vote_idx as u16,
                    };
                    self.vote_idx += 1;
                    Some(Op::push(e.target, msg))
                } else {
                    None
                }
            }
            Phase::FindMin => {
                self.ensure_certificate();
                let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
                Some(Op::pull(peer, Msg::QMinCert))
            }
            Phase::Coherence => {
                self.ensure_certificate();
                let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
                let cert = Shared::clone(self.min_cert.as_ref().expect("cert ensured"));
                Some(Op::push(peer, Msg::Cert(cert)))
            }
            Phase::Finished => None,
        }
    }

    /// Honest pull-answering (the query is borrowed from the engine).
    pub fn on_pull_honest(&mut self, _from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        if self.failed {
            return None;
        }
        match query {
            Msg::QIntent => Some(Msg::Intents(self.intents.clone())),
            Msg::QMinCert => {
                if self.phase(ctx.round) >= Phase::FindMin {
                    self.ensure_certificate();
                    self.min_cert.as_ref().map(|c| Msg::Cert(Shared::clone(c)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Honest push-handling (the message is borrowed from the engine;
    /// only the kept parts — a vote record — are copied out).
    pub fn on_push_honest(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        if self.failed {
            return;
        }
        match (self.phase(ctx.round), msg) {
            (Phase::Voting, Msg::Vote { value, round }) => {
                self.votes.push(VoteRec {
                    voter: from,
                    round: *round,
                    value: *value,
                });
                self.votes_recv += 1;
            }
            (Phase::Coherence, Msg::Cert(ce)) => {
                self.ensure_certificate();
                let mine = self.min_cert.as_ref().expect("cert ensured");
                // Pointer-equality fast path: the network minimum spreads
                // as clones of one Shared, so agreeing agents usually hold
                // the *same allocation* — skip the O(|W|) payload
                // comparison. `ptr_eq ⇒ payload_eq`, so the verdict is
                // unchanged.
                if !Shared::ptr_eq(mine, ce) && mine != ce {
                    self.fail(VerifyFailure::FailedEarlier);
                }
            }
            _ => {} // out-of-phase traffic is dropped
        }
    }

    /// Honest reply-handling.
    pub fn on_reply_honest(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        if self.failed {
            return;
        }
        match self.phase(ctx.round) {
            Phase::Commitment => match reply {
                Some(Msg::Intents(list)) if self.intents_plausible_cached(&list) => {
                    self.ledger.declare(from, ctx.round as u32, list);
                }
                // Silence or an unexpected reply: marked faulty, votes
                // pinned to zero (paper footnote 4). Overrides earlier
                // declarations.
                _ => self.ledger.mark_faulty(from, ctx.round as u32),
            },
            Phase::FindMin => {
                if let Some(Msg::Cert(ce)) = reply {
                    self.consider_certificate(ce);
                }
            }
            _ => {}
        }
    }

    /// Find-Min adoption rule: keep the certificate with the smaller `k`.
    pub fn consider_certificate(&mut self, ce: Certificate) {
        self.ensure_certificate();
        let current = self.min_cert.as_ref().expect("cert ensured");
        // Hot-path order: the k comparison first — a certificate that
        // would not be adopted anyway (the overwhelmingly common case
        // once the minimum has spread) never pays the O(|W|) structural
        // scan. Observationally identical to validating first: both
        // orders adopt exactly the structurally valid certificates with
        // smaller k.
        if ce.k >= current.k {
            return;
        }
        if !ce.structurally_valid(self.params.n, self.params.m, self.params.q) {
            return; // implausible garbage is ignored
        }
        self.min_cert = Some(ce);
    }

    /// Does a received intention list have the committed shape (`q`
    /// entries, all fields in range)? Anything else is "an unexpected
    /// reply" and gets the sender marked faulty.
    pub fn intents_plausible(&self, list: &[IntentEntry]) -> bool {
        entries_plausible(&self.params, list)
    }

    /// [`ProtocolCore::intents_plausible`] through the list's shared
    /// receiver-side memo: the verdict is a pure function of the entries
    /// and the run-wide parameters, so the first receiver's computation
    /// serves every later receiver of the same shared list.
    #[inline]
    pub fn intents_plausible_cached(&self, list: &IntentList) -> bool {
        let params = self.params;
        list.memo_plausible(|entries| entries_plausible(&params, entries))
    }

    /// The Verification phase (paper, last block of Algorithm 1): accept
    /// the winner's color iff the certificate checks out; otherwise fail.
    pub fn finalize_honest(&mut self) {
        if self.failed {
            return;
        }
        self.ensure_certificate();
        let win = Shared::clone(self.min_cert.as_ref().expect("cert ensured"));

        if !win.structurally_valid(self.params.n, self.params.m, self.params.q) {
            self.fail(VerifyFailure::Structural);
            return;
        }
        if win.k != win.derived_k(self.params.m) {
            self.fail(VerifyFailure::BadSum);
            return;
        }
        if let Err(e) = self.ledger.check_certificate(&win) {
            self.fail(VerifyFailure::Inconsistent(e));
            return;
        }
        if self.params.check_self_votes && !self.self_votes_consistent(&win) {
            self.fail(VerifyFailure::SelfVoteMismatch);
            return;
        }
        self.decided = Some(win.color);
    }

    /// Check the winner's vote set against this agent's *own* sent votes:
    /// every vote we pushed toward the winner must appear verbatim, and no
    /// extra votes may be attributed to us.
    fn self_votes_consistent(&self, win: &CertData) -> bool {
        let mut expected: Vec<(u16, u64)> = self
            .intents
            .iter()
            .take(self.vote_idx) // only votes actually sent
            .enumerate()
            .filter(|(_, e)| e.target == win.owner)
            .map(|(i, e)| (i as u16, e.value))
            .collect();
        let mut actual: Vec<(u16, u64)> = win
            .votes_from(self.id)
            .map(|r| (r.round, r.value))
            .collect();
        expected.sort_unstable();
        actual.sort_unstable();
        expected == actual
    }

    /// Final decision: `Some(color)` if this agent terminated in consensus.
    pub fn decision(&self) -> Option<ColorId> {
        if self.failed {
            None
        } else {
            self.decided
        }
    }
}

/// The single plausibility predicate both the cached and the uncached
/// paths share: `q` entries, every field in range. Branchless fold
/// instead of short-circuiting `all` — honest lists pass every entry, so
/// early exit never fires on the hot path, while the accumulator form
/// lets the compiler vectorize the range checks.
#[inline]
fn entries_plausible(params: &Params, list: &[IntentEntry]) -> bool {
    let m = params.m;
    let n = params.n as u32;
    list.len() == params.q
        && list
            .iter()
            .fold(true, |ok, e| ok & (e.value < m) & (e.target < n))
}

/// An agent that follows protocol `P` exactly.
#[derive(Debug, Clone)]
pub struct HonestAgent {
    core: ProtocolCore,
}

impl HonestAgent {
    /// Wrap a protocol core in honest behaviour.
    pub fn new(core: ProtocolCore) -> Self {
        HonestAgent { core }
    }

    /// Read access to the protocol state.
    pub fn core(&self) -> &ProtocolCore {
        &self.core
    }
}

impl Agent<Msg> for HonestAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        self.core.act_honest(ctx)
    }
    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        self.core.on_pull_honest(from, query, ctx)
    }
    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        self.core.on_push_honest(from, msg, ctx)
    }
    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        self.core.on_reply_honest(from, reply, ctx)
    }
    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

/// The common interface for every agent participating in protocol `P`,
/// honest or deviating — used by the runner and audits to inspect final
/// state regardless of the concrete strategy type.
///
/// `Send` is a supertrait: the staged round engine
/// (`gossip_net::network::staged`) shards one trial's agents across
/// worker threads, so every slot — including [`crate::AgentSlot::Custom`]
/// boxes — must be movable across threads. All built-in agents are
/// `Send` (Arc-shared payloads, Mutex-guarded coalition intel); an
/// out-of-tree agent just needs to avoid `Rc`/`RefCell` state.
pub trait ConsensusAgent: Agent<Msg> + Send {
    /// The protocol state (every strategy carries one, since deviators
    /// must still produce plausible protocol traffic).
    fn core(&self) -> &ProtocolCore;

    /// Honest or named deviator.
    fn role(&self) -> Role {
        Role::Honest
    }
}

impl ConsensusAgent for HonestAgent {
    fn core(&self) -> &ProtocolCore {
        HonestAgent::core(self)
    }
}

impl ConsensusAgent for Box<dyn ConsensusAgent> {
    fn core(&self) -> &ProtocolCore {
        (**self).core()
    }
    fn role(&self) -> Role {
        (**self).role()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::topology::Topology;

    fn mk_core(id: AgentId, n: usize, seed: u64) -> ProtocolCore {
        let params = Params::new(n, 1.0);
        let schedule = params.sync_schedule();
        ProtocolCore::new(id, params, schedule, id % 3, DetRng::seeded(seed, id as u64))
    }

    fn ctx_at(topo: &Topology, round: usize) -> RoundCtx<'_> {
        RoundCtx {
            round,
            topology: topo,
        }
    }

    #[test]
    fn intentions_have_q_entries_in_range() {
        let core = mk_core(0, 64, 7);
        assert_eq!(core.intents.len(), core.params.q);
        for e in core.intents.iter() {
            assert!(e.value < core.params.m);
            assert!((e.target as usize) < 64);
        }
    }

    #[test]
    fn commitment_phase_pulls_intents() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 1);
        let op = core.act_honest(&ctx_at(&topo, 0)).unwrap();
        match op {
            Op::Pull { query, .. } => assert_eq!(query, Msg::QIntent),
            _ => panic!("commitment must pull"),
        }
    }

    #[test]
    fn voting_phase_pushes_declared_votes_in_order() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 1);
        let q = core.params.q;
        let intents = core.intents.clone();
        for i in 0..q {
            let op = core.act_honest(&ctx_at(&topo, q + i)).unwrap();
            match op {
                Op::Push { to, msg: Msg::Vote { value, round } } => {
                    assert_eq!(to, intents[i].target);
                    assert_eq!(value, intents[i].value);
                    assert_eq!(round as usize, i);
                }
                other => panic!("expected vote push, got {other:?}"),
            }
        }
        // Intentions exhausted: no further votes.
        assert!(core.vote_idx == q);
    }

    #[test]
    fn find_min_phase_builds_cert_and_pulls() {
        let topo = Topology::complete(16);
        let mut core = mk_core(2, 16, 3);
        let q = core.params.q;
        let op = core.act_honest(&ctx_at(&topo, 2 * q)).unwrap();
        assert!(matches!(op, Op::Pull { query: Msg::QMinCert, .. }));
        assert!(core.own_cert.is_some());
        assert_eq!(core.min_cert, core.own_cert);
        // No votes received: k = 0 (empty modular sum).
        assert_eq!(core.k(), Some(0));
    }

    #[test]
    fn votes_accumulate_only_in_voting_phase() {
        let topo = Topology::complete(16);
        let mut core = mk_core(1, 16, 4);
        let q = core.params.q;
        let vote = Msg::Vote { value: 42, round: 0 };
        core.on_push_honest(3, &vote, &ctx_at(&topo, 0)); // commitment: dropped
        assert!(core.votes.is_empty());
        core.on_push_honest(3, &vote, &ctx_at(&topo, q)); // voting: kept
        assert_eq!(core.votes.len(), 1);
        core.on_push_honest(3, &vote, &ctx_at(&topo, 2 * q)); // find-min: dropped
        assert_eq!(core.votes.len(), 1);
        assert_eq!(core.votes.get(0).voter, 3);
        assert_eq!(core.votes_received(), 1);
    }

    #[test]
    fn k_is_sum_of_votes_mod_m() {
        let topo = Topology::complete(16);
        let mut core = mk_core(1, 16, 4);
        let q = core.params.q;
        let m = core.params.m;
        core.on_push_honest(2, &Msg::Vote { value: m - 1, round: 0 }, &ctx_at(&topo, q));
        core.on_push_honest(3, &Msg::Vote { value: 5, round: 1 }, &ctx_at(&topo, q));
        core.ensure_certificate();
        assert_eq!(core.k(), Some(4)); // (m-1+5) mod m
    }

    #[test]
    fn commitment_reply_declares_or_marks_faulty() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 5);
        let good: IntentList = (0..core.params.q)
            .map(|i| IntentEntry {
                value: i as u64,
                target: 1,
            })
            .collect::<Vec<_>>()
            .into();
        core.on_reply_honest(7, Some(Msg::Intents(good)), &ctx_at(&topo, 0));
        assert!(core.ledger.find(7).is_some());
        // Silence marks faulty.
        core.on_reply_honest(8, None, &ctx_at(&topo, 1));
        assert!(matches!(
            core.ledger.find(8).unwrap().decl,
            crate::ledger::Declaration::Faulty
        ));
        // Wrong-length list is "unexpected" → faulty.
        let short: IntentList = vec![IntentEntry { value: 0, target: 0 }].into();
        core.on_reply_honest(9, Some(Msg::Intents(short)), &ctx_at(&topo, 2));
        assert!(matches!(
            core.ledger.find(9).unwrap().decl,
            crate::ledger::Declaration::Faulty
        ));
    }

    #[test]
    fn later_silence_downgrades_declaration() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 5);
        let good: IntentList = (0..core.params.q)
            .map(|_| IntentEntry { value: 1, target: 1 })
            .collect::<Vec<_>>()
            .into();
        core.on_reply_honest(7, Some(Msg::Intents(good)), &ctx_at(&topo, 0));
        core.on_reply_honest(7, None, &ctx_at(&topo, 1));
        assert!(matches!(
            core.ledger.find(7).unwrap().decl,
            crate::ledger::Declaration::Faulty
        ));
    }

    #[test]
    fn find_min_adopts_smaller_k_only() {
        let mut core = mk_core(1, 16, 6);
        core.ensure_certificate();
        let my_k = core.k().unwrap();
        // A structurally valid cert with k = my_k + 1 is not adopted...
        let bigger = Shared::new(CertData {
            k: my_k + 1,
            votes: VoteLanes::new(),
            color: 5,
            owner: 2,
        });
        core.consider_certificate(bigger);
        assert_eq!(core.min_cert.as_ref().unwrap().owner, 1);
        // ...but any smaller k is (semantics checked later).
        // my_k is 0 here (no votes), so craft a smaller one via a fresh core
        // that has votes.
        let mut core2 = mk_core(2, 16, 7);
        let topo = Topology::complete(16);
        let q = core2.params.q;
        core2.on_push_honest(3, &Msg::Vote { value: 100, round: 0 }, &ctx_at(&topo, q));
        core2.ensure_certificate();
        assert_eq!(core2.k(), Some(100));
        let smaller = Shared::new(CertData {
            k: 50,
            votes: VoteLanes::new(),
            color: 9,
            owner: 4,
        });
        core2.consider_certificate(smaller);
        assert_eq!(core2.min_cert.as_ref().unwrap().owner, 4);
    }

    #[test]
    fn find_min_ignores_structurally_invalid() {
        let mut core = mk_core(1, 16, 8);
        core.ensure_certificate();
        let invalid = Shared::new(CertData {
            k: core.params.m, // out of range
            votes: VoteLanes::new(),
            color: 0,
            owner: 2,
        });
        core.consider_certificate(invalid);
        assert_eq!(core.min_cert.as_ref().unwrap().owner, 1);
    }

    #[test]
    fn coherence_mismatch_fails_protocol() {
        let topo = Topology::complete(16);
        let mut core = mk_core(1, 16, 9);
        let q = core.params.q;
        core.ensure_certificate();
        let other = Shared::new(CertData {
            k: 7,
            votes: VoteLanes::new(),
            color: 2,
            owner: 3,
        });
        core.on_push_honest(3, &Msg::Cert(other), &ctx_at(&topo, 3 * q));
        assert!(core.failed);
        assert_eq!(core.decision(), None);
    }

    #[test]
    fn coherence_match_keeps_running() {
        let topo = Topology::complete(16);
        let mut core = mk_core(1, 16, 10);
        let q = core.params.q;
        core.ensure_certificate();
        let same = Shared::clone(core.min_cert.as_ref().unwrap());
        core.on_push_honest(3, &Msg::Cert(same), &ctx_at(&topo, 3 * q));
        assert!(!core.failed);
    }

    #[test]
    fn failed_agent_goes_quiescent() {
        let topo = Topology::complete(16);
        let mut core = mk_core(1, 16, 11);
        core.fail(VerifyFailure::FailedEarlier);
        assert!(core.act_honest(&ctx_at(&topo, 0)).is_none());
        assert!(core
            .on_pull_honest(2, &Msg::QIntent, &ctx_at(&topo, 0))
            .is_none());
    }

    #[test]
    fn verification_accepts_own_consistent_cert() {
        // An agent whose min-cert is its own (no votes, empty ledger)
        // verifies trivially and decides its own color.
        let mut core = mk_core(1, 16, 12);
        core.finalize_honest();
        assert_eq!(core.decision(), Some(core.color));
    }

    #[test]
    fn verification_rejects_bad_sum() {
        let mut core = mk_core(1, 16, 13);
        core.ensure_certificate();
        core.min_cert = Some(Shared::new(CertData {
            k: 5, // but no votes: derived k = 0
            votes: VoteLanes::new(),
            color: 0,
            owner: 2,
        }));
        core.finalize_honest();
        assert!(core.failed);
        assert_eq!(core.verify_failure, Some(VerifyFailure::BadSum));
    }

    #[test]
    fn verification_rejects_ledger_inconsistency() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 14);
        // Agent 7 declared a vote (value 9, index 0) for agent 2.
        let mut entries = vec![
            IntentEntry {
                value: 9,
                target: 2,
            };
            core.params.q
        ];
        for (i, e) in entries.iter_mut().enumerate().skip(1) {
            e.target = 3; // only index 0 targets the winner
            e.value = i as u64;
        }
        core.on_reply_honest(
            7,
            Some(Msg::Intents(entries.into())),
            &ctx_at(&topo, 0),
        );
        // Winner cert from agent 2 omits 7's declared vote.
        core.ensure_certificate();
        core.min_cert = Some(Shared::new(CertData::build(2, 1, vec![], core.params.m)));
        core.finalize_honest();
        assert!(matches!(
            core.verify_failure,
            Some(VerifyFailure::Inconsistent(_))
        ));
    }

    #[test]
    fn verification_rejects_self_vote_tampering() {
        let topo = Topology::complete(16);
        let mut core = mk_core(0, 16, 15);
        let q = core.params.q;
        // Send all votes.
        for i in 0..q {
            let _ = core.act_honest(&ctx_at(&topo, q + i));
        }
        // Find my first intent's target; craft a winner cert from that
        // target that *drops* my vote.
        let target = core.intents[0].target;
        core.ensure_certificate();
        core.min_cert = Some(Shared::new(CertData::build(
            target,
            1,
            vec![],
            core.params.m,
        )));
        core.finalize_honest();
        // My declared vote for `target` is missing from W: self-check fails
        // (unless I never voted for the winner, but index 0 targets it).
        assert_eq!(core.verify_failure, Some(VerifyFailure::SelfVoteMismatch));
    }

    #[test]
    fn honest_agent_delegates() {
        let topo = Topology::complete(8);
        let params = Params::new(8, 1.0);
        let core = ProtocolCore::new(
            0,
            params,
            params.sync_schedule(),
            2,
            DetRng::seeded(1, 0),
        );
        let mut agent = HonestAgent::new(core);
        let ctx = ctx_at(&topo, 0);
        assert!(agent.act(&ctx).is_some());
        assert_eq!(ConsensusAgent::core(&agent).color, 2);
        assert_eq!(agent.role(), Role::Honest);
    }
}
