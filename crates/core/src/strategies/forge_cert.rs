//! Forged-minimum-certificate attacks.
//!
//! The coalition's most direct path to victory: since the minimum `k`
//! wins, claim a certificate with `k = 0`. The leader fabricates
//! `CE* = (0, W*, c_C, leader)` at the start of Find-Min; all members
//! advertise `CE*` in Find-Min replies, push it in Coherence, never adopt
//! honest certificates, and never fail on mismatches.
//!
//! Three fabrication modes, in increasing sophistication:
//!
//! * **zero-k** — keep the true received votes `W`, declare `k = 0`.
//!   `k ≠ Σ W mod m`, so every verifier rejects with `BadSum`.
//! * **tuned-vote** — append one fabricated vote from a fellow member
//!   with value `(m − Σ W) mod m`, making the sum check pass. Any honest
//!   agent that pulled the claimed voter during Commitment sees a vote
//!   that was never declared ⇒ `VoteMismatch` ⇒ fail (Def. 5(1) makes
//!   such an agent exist w.h.p.).
//! * **drop-votes** — claim `W* = ∅`, `k = 0` (sum check passes
//!   trivially). Any honest agent that pulled *any* agent which declared
//!   a vote for the leader sees a missing vote ⇒ fail.
//!
//! Per Claim 1, a good execution that does not fail can only crown the
//! *legitimate* winner, so these attacks convert would-be losses into
//! `⊥` — never into wins.

use crate::agent_plane::AgentSlot;
use crate::certificate::{CertData, VoteRec};
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::Msg;
use crate::params::Phase;
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;
use crate::sharing::Shared;

/// Fabrication mode for the forged certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgeMode {
    /// Keep true `W`, lie that `k = 0`.
    ZeroK,
    /// Add one fabricated balancing vote so `Σ W* ≡ 0 (mod m)`.
    TunedVote,
    /// Claim the empty vote set (`k = 0` consistently).
    DropVotes,
}

/// The forged-certificate strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct ForgeCert {
    mode: ForgeMode,
}

impl ForgeCert {
    /// `zero-k` mode.
    pub fn zero_k() -> Self {
        ForgeCert {
            mode: ForgeMode::ZeroK,
        }
    }
    /// `tuned-vote` mode.
    pub fn tuned_vote() -> Self {
        ForgeCert {
            mode: ForgeMode::TunedVote,
        }
    }
    /// `drop-votes` mode.
    pub fn drop_votes() -> Self {
        ForgeCert {
            mode: ForgeMode::DropVotes,
        }
    }
}

impl Strategy for ForgeCert {
    fn name(&self) -> &'static str {
        match self.mode {
            ForgeMode::ZeroK => "forge-zero-k",
            ForgeMode::TunedVote => "forge-tuned-vote",
            ForgeMode::DropVotes => "forge-drop-votes",
        }
    }

    fn description(&self) -> &'static str {
        match self.mode {
            ForgeMode::ZeroK => "claim k=0 over the true vote set (fails the sum check)",
            ForgeMode::TunedVote => {
                "forge a balancing vote so k=0 passes the sum check (fails ledger checks)"
            }
            ForgeMode::DropVotes => "claim an empty vote set with k=0 (fails ledger checks)",
        }
    }

    fn build(&self, core: ProtocolCore, coalition: Coalition) -> AgentSlot {
        AgentSlot::ForgeCert(ForgeAgent {
            core,
            coalition,
            mode: self.mode,
            strategy_name: self.name(),
        })
    }
}

/// The certificate-forging agent (one of the three fabrication modes).
pub struct ForgeAgent {
    core: ProtocolCore,
    coalition: Coalition,
    mode: ForgeMode,
    strategy_name: &'static str,
}

impl ForgeAgent {
    fn is_leader(&self) -> bool {
        self.core.id == self.coalition.leader
    }

    /// Leader-side: fabricate the coalition's certificate from the true
    /// received votes.
    ///
    /// Reads the receipt-order vote buffer, so it must run *before*
    /// `ensure_certificate` (which consumes the buffer into the honest
    /// own-certificate) — see the call-site ordering in `act`.
    fn forge(&mut self) -> crate::Certificate {
        let m = self.core.params.m;
        let (votes, k) = match self.mode {
            ForgeMode::ZeroK => (self.core.votes.clone(), 0),
            ForgeMode::DropVotes => (crate::certificate::VoteLanes::new(), 0),
            ForgeMode::TunedVote => {
                let mut votes = self.core.votes.clone();
                let sum = votes.sum_mod(m);
                // Attribute the balancing vote to a fellow member when one
                // exists (its declarations are also coalition-controlled),
                // else to ourselves.
                let accomplice: AgentId = self
                    .coalition
                    .members
                    .iter()
                    .copied()
                    .find(|&u| u != self.core.id)
                    .unwrap_or(self.core.id);
                votes.push(VoteRec {
                    voter: accomplice,
                    round: 0,
                    value: (m - sum) % m,
                });
                votes.sort_canonical();
                (votes, 0)
            }
        };
        let cert = Shared::new(CertData {
            k,
            votes,
            color: self.coalition.color,
            owner: self.core.id,
        });
        self.coalition.intel().promoted_cert = Some(Shared::clone(&cert));
        cert
    }

    /// The certificate this member currently advertises: the promoted
    /// forgery once it exists, else the honest minimum.
    fn advertised(&mut self) -> Option<crate::Certificate> {
        if let Some(ce) = self.coalition.intel().promoted_cert.as_ref() {
            return Some(Shared::clone(ce));
        }
        self.core.ensure_certificate();
        self.core.min_cert.clone()
    }
}

impl Agent<Msg> for ForgeAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            // Honest through Commitment and Voting: the coalition needs
            // its commitments to look legitimate.
            Phase::Commitment | Phase::Voting => self.core.act_honest(ctx),
            Phase::FindMin => {
                if self.is_leader()
                    && self.coalition.intel().promoted_cert.is_none()
                {
                    // Forge first (it reads the receipt-order vote
                    // buffer), build the honest own-certificate second
                    // (it consumes that buffer), then promote the
                    // forgery — the same final state as the historical
                    // ensure-then-forge order.
                    let forged = self.forge();
                    self.core.ensure_certificate();
                    self.core.min_cert = Some(forged);
                } else {
                    self.core.ensure_certificate();
                }
                // Keep pulling like honest agents (camouflage), but never
                // adopt what comes back (see on_reply).
                let peer = ctx.topology.sample_peer(self.core.id, &mut self.core.rng);
                Some(Op::pull(peer, Msg::QMinCert))
            }
            Phase::Coherence => {
                let cert = self.advertised()?;
                let peer = ctx.topology.sample_peer(self.core.id, &mut self.core.rng);
                Some(Op::push(peer, Msg::Cert(cert)))
            }
            Phase::Finished => None,
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        match query {
            // Commitment answers stay honest (the coalition's own votes
            // must verify).
            Msg::QIntent => self.core.on_pull_honest(from, query, ctx),
            Msg::QMinCert => {
                if self.core.phase(ctx.round) >= Phase::FindMin {
                    self.advertised().map(Msg::Cert)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        // Accept votes honestly; ignore Coherence mismatches (a deviator
        // never "fails itself").
        if self.core.phase(ctx.round) == Phase::Voting && matches!(msg, Msg::Vote { .. }) {
            self.core.on_push_honest(from, msg, ctx);
        }
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        // Find-Min replies are discarded (the coalition sticks to its
        // forged minimum); Commitment replies are processed honestly.
        if self.core.phase(ctx.round) == Phase::Commitment {
            self.core.on_reply_honest(from, reply, ctx);
        }
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        // A deviator "decides" its own color; the network outcome is
        // determined by the honest agents.
        self.core.decided = Some(self.coalition.color);
    }
}

impl ConsensusAgent for ForgeAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator(self.strategy_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use crate::params::Params;

    fn agent_with(mode: ForgeMode, members: Vec<AgentId>) -> ForgeAgent {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            members[0],
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(1, members[0] as u64),
        );
        let coalition = new_coalition(members, 1);
        ForgeAgent {
            core,
            coalition,
            mode,
            strategy_name: "test",
        }
    }

    #[test]
    fn zero_k_forges_inconsistent_sum() {
        let mut a = agent_with(ForgeMode::ZeroK, vec![0, 1]);
        a.core.votes.push(VoteRec {
            voter: 5,
            round: 0,
            value: 123,
        });
        let cert = a.forge();
        assert_eq!(cert.k, 0);
        assert_ne!(cert.derived_k(a.core.params.m), 0, "sum check must fail");
        assert_eq!(cert.color, 1);
        assert_eq!(cert.owner, 0);
    }

    #[test]
    fn tuned_vote_passes_sum_check() {
        let mut a = agent_with(ForgeMode::TunedVote, vec![0, 7]);
        a.core.votes.push(VoteRec {
            voter: 5,
            round: 0,
            value: 123,
        });
        let cert = a.forge();
        assert_eq!(cert.k, 0);
        assert_eq!(cert.derived_k(a.core.params.m), 0, "sum check must pass");
        // The balancing vote is attributed to the accomplice (id 7).
        assert!(cert.votes.iter().any(|v| v.voter == 7));
    }

    #[test]
    fn drop_votes_is_internally_consistent() {
        let mut a = agent_with(ForgeMode::DropVotes, vec![3, 9]);
        a.core.votes.push(VoteRec {
            voter: 5,
            round: 0,
            value: 99,
        });
        let cert = a.forge();
        assert_eq!(cert.k, 0);
        assert!(cert.votes.is_empty());
        assert_eq!(cert.derived_k(a.core.params.m), 0);
    }

    #[test]
    fn forged_cert_is_shared_via_intel() {
        let mut a = agent_with(ForgeMode::DropVotes, vec![0, 1]);
        assert!(a.coalition.intel().promoted_cert.is_none());
        let _ = a.forge();
        assert!(a.coalition.intel().promoted_cert.is_some());
    }

    #[test]
    fn solo_coalition_attributes_tuned_vote_to_self() {
        let mut a = agent_with(ForgeMode::TunedVote, vec![4]);
        a.core.votes.push(VoteRec {
            voter: 2,
            round: 1,
            value: 7,
        });
        let cert = a.forge();
        assert!(cert.votes.iter().any(|v| v.voter == 4));
    }
}
