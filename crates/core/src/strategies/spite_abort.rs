//! Spite-abort: force failure whenever the coalition is about to lose.
//!
//! The "scorched earth" deviation. Members follow the protocol until the
//! end of Find-Min; if the converged minimum's color is not the
//! coalition's, they spend the Coherence phase pushing a *fabricated
//! different* certificate, which makes every honest receiver fail
//! (Coherence compares certificates for equality).
//!
//! This attack reliably *works* — failure is trivially achievable in any
//! protocol where one agent can refuse to cooperate — but it is exactly
//! what the utility model prices in: turning a `0` (another color won)
//! into a `−χ` (everybody loses) can never increase a member's expected
//! utility for `χ ≥ 0`, and strictly decreases it for `χ > 0`. The
//! experiment measures the utility delta as a function of `χ`.

use crate::agent_plane::AgentSlot;
use crate::certificate::{CertData, VoteLanes};
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::Msg;
use crate::params::Phase;
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;
use crate::sharing::Shared;

/// The spite-abort strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct SpiteAbort;

impl Strategy for SpiteAbort {
    fn name(&self) -> &'static str {
        "spite-abort"
    }

    fn description(&self) -> &'static str {
        "sabotage Coherence with a fabricated certificate whenever the coalition color lost"
    }

    fn build(&self, core: ProtocolCore, coalition: Coalition) -> AgentSlot {
        AgentSlot::SpiteAbort(SpiteAgent {
            core,
            coalition,
            poison: None,
        })
    }
}

/// The spite-abort agent: sabotages Coherence when the coalition loses.
pub struct SpiteAgent {
    core: ProtocolCore,
    coalition: Coalition,
    /// Fabricated certificate used for sabotage (built lazily).
    poison: Option<crate::Certificate>,
}

impl SpiteAgent {
    fn losing(&self) -> bool {
        match &self.core.min_cert {
            Some(ce) => ce.color != self.coalition.color,
            None => false,
        }
    }

    fn poison_cert(&mut self) -> crate::Certificate {
        if let Some(p) = &self.poison {
            return Shared::clone(p);
        }
        // A structurally valid certificate that cannot equal the honest
        // minimum: claims our id as owner with an empty vote set.
        let p = Shared::new(CertData {
            k: 0,
            votes: VoteLanes::new(),
            color: self.coalition.color,
            owner: self.core.id,
        });
        self.poison = Some(Shared::clone(&p));
        p
    }
}

impl Agent<Msg> for SpiteAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            Phase::Coherence if self.losing() => {
                let poison = self.poison_cert();
                let peer = ctx.topology.sample_peer(self.core.id, &mut self.core.rng);
                Some(Op::push(peer, Msg::Cert(poison)))
            }
            _ => self.core.act_honest(ctx),
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        // Also answer Find-Min pulls with poison once losing is apparent
        // (harsher variant of the same sabotage).
        if matches!(query, Msg::QMinCert)
            && self.core.phase(ctx.round) == Phase::Coherence
            && self.losing()
        {
            let poison = self.poison_cert();
            return Some(Msg::Cert(poison));
        }
        self.core.on_pull_honest(from, query, ctx)
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        // Ignore Coherence mismatches against ourselves; stay honest
        // otherwise.
        if let (Phase::Coherence, Msg::Cert(_)) = (self.core.phase(ctx.round), msg) {
            return;
        }
        self.core.on_push_honest(from, msg, ctx)
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        self.core.on_reply_honest(from, reply, ctx)
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for SpiteAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("spite-abort")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use gossip_net::topology::Topology;
    use crate::params::Params;

    fn mk() -> SpiteAgent {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            3,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(7, 3),
        );
        SpiteAgent {
            core,
            coalition: new_coalition(vec![3], 1),
            poison: None,
        }
    }

    #[test]
    fn losing_detection() {
        let mut a = mk();
        a.core.ensure_certificate();
        assert!(!a.losing(), "own color == coalition color");
        a.core.min_cert = Some(Shared::new(CertData {
            k: 0,
            votes: VoteLanes::new(),
            color: 0, // not the coalition color
            owner: 9,
        }));
        assert!(a.losing());
    }

    #[test]
    fn pushes_poison_in_coherence_when_losing() {
        let mut a = mk();
        let q = a.core.params.q;
        a.core.ensure_certificate();
        a.core.min_cert = Some(Shared::new(CertData {
            k: 0,
            votes: VoteLanes::new(),
            color: 0,
            owner: 9,
        }));
        let topo = Topology::complete(32);
        let ctx = RoundCtx {
            round: 3 * q,
            topology: &topo,
        };
        match a.act(&ctx) {
            Some(Op::Push {
                msg: Msg::Cert(ce), ..
            }) => {
                assert_eq!(ce.owner, 3, "poison claims own ownership");
                assert_ne!(ce.color, 0);
            }
            other => panic!("expected poison push, got {other:?}"),
        }
    }

    #[test]
    fn behaves_honestly_when_winning() {
        let mut a = mk();
        let q = a.core.params.q;
        a.core.ensure_certificate();
        // min cert color == coalition color == 1 (own certificate).
        let topo = Topology::complete(32);
        let ctx = RoundCtx {
            round: 3 * q,
            topology: &topo,
        };
        match a.act(&ctx) {
            Some(Op::Push {
                msg: Msg::Cert(ce), ..
            }) => assert_eq!(ce, a.core.min_cert.clone().unwrap()),
            other => panic!("expected honest coherence push, got {other:?}"),
        }
    }

    #[test]
    fn poison_is_cached() {
        let mut a = mk();
        let p1 = a.poison_cert();
        let p2 = a.poison_cert();
        assert!(Shared::ptr_eq(&p1, &p2));
    }
}
