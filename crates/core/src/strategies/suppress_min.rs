//! Minimum suppression: censor the true minimum during Find-Min.
//!
//! Coalition members act as censors in the rumor-spreading phase: they
//! keep pulling (to track the true state), but when *answering* pulls
//! they advertise the best coalition-owned certificate they have seen
//! instead of the true minimum, hoping a member's `k` ends up winning.
//!
//! Lemma 6(2) and the Θ(log n) pull-broadcast analysis explain why this
//! cannot work for `t = o(n/log n)`: honest agents pull *each other*
//! `Θ(n log n)` times during the phase, so the true minimum spreads
//! through honest-only channels; censors only remove `o(n)` of those
//! channels. If suppression ever "succeeds" partially, the network splits
//! between two certificates and Coherence fails the run — a loss, not a
//! win.

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::Msg;
use crate::params::Phase;
use crate::strategies::Strategy;
use crate::Certificate;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;
use crate::sharing::Shared;

/// The minimum-suppression strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct SuppressMin;

impl Strategy for SuppressMin {
    fn name(&self) -> &'static str {
        "suppress-min"
    }

    fn description(&self) -> &'static str {
        "censor non-coalition minima while spreading the best coalition certificate"
    }

    fn build(&self, core: ProtocolCore, coalition: Coalition) -> AgentSlot {
        AgentSlot::SuppressMin(CensorAgent {
            core,
            coalition,
            best_coalition_cert: None,
        })
    }
}

/// The censoring agent: advertises coalition certificates over the truth.
pub struct CensorAgent {
    core: ProtocolCore,
    coalition: Coalition,
    /// Best (lowest-k) certificate owned by a coalition member seen so far.
    best_coalition_cert: Option<Certificate>,
}

impl CensorAgent {
    /// Track coalition-owned certificates passing by.
    fn observe(&mut self, ce: &Certificate) {
        if self.coalition.contains(ce.owner) {
            let better = match &self.best_coalition_cert {
                None => true,
                Some(cur) => ce.k < cur.k,
            };
            if better {
                self.best_coalition_cert = Some(Shared::clone(ce));
            }
        }
    }

    /// What this censor advertises: the best coalition certificate if any,
    /// else its own (it must answer *something* plausible to avoid being
    /// marked faulty-looking in a phase where silence is suspicious).
    fn advertised(&mut self) -> Option<Certificate> {
        self.core.ensure_certificate();
        if let Some(ce) = &self.best_coalition_cert {
            return Some(Shared::clone(ce));
        }
        self.core.min_cert.clone()
    }
}

impl Agent<Msg> for CensorAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            Phase::Coherence => {
                let cert = self.advertised()?;
                let peer = ctx.topology.sample_peer(self.core.id, &mut self.core.rng);
                Some(Op::push(peer, Msg::Cert(cert)))
            }
            // Everything else (incl. Find-Min pulls, to keep tracking the
            // true minimum) is honest-shaped.
            _ => self.core.act_honest(ctx),
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        if matches!(query, Msg::QMinCert) && self.core.phase(ctx.round) >= Phase::FindMin {
            // The censoring move: advertise coalition certs, not the truth.
            self.core.ensure_certificate();
            if let Some(own) = &self.core.min_cert {
                self.observe(&Shared::clone(own));
            }
            return self.advertised().map(Msg::Cert);
        }
        self.core.on_pull_honest(from, query, ctx)
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        match (self.core.phase(ctx.round), msg) {
            (Phase::Coherence, Msg::Cert(ce)) => {
                // Track, never fail ourselves.
                self.observe(ce);
            }
            _ => self.core.on_push_honest(from, msg, ctx),
        }
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        if let Some(Msg::Cert(ce)) = &reply {
            self.observe(ce);
        }
        // Keep the true minimum internally (honest adoption) so the censor
        // knows what the network will converge to.
        self.core.on_reply_honest(from, reply, ctx);
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for CensorAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("suppress-min")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use crate::certificate::{CertData, VoteLanes};
    use crate::params::Params;

    fn mk() -> CensorAgent {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            5,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(6, 5),
        );
        CensorAgent {
            core,
            coalition: new_coalition(vec![5, 9], 1),
            best_coalition_cert: None,
        }
    }

    fn cert(owner: AgentId, k: u64) -> Certificate {
        Shared::new(CertData {
            k,
            votes: VoteLanes::new(),
            color: 1,
            owner,
        })
    }

    #[test]
    fn tracks_best_coalition_cert_only() {
        let mut a = mk();
        a.observe(&cert(2, 1)); // honest-owned: ignored
        assert!(a.best_coalition_cert.is_none());
        a.observe(&cert(9, 500));
        assert_eq!(a.best_coalition_cert.as_ref().unwrap().k, 500);
        a.observe(&cert(9, 100));
        assert_eq!(a.best_coalition_cert.as_ref().unwrap().k, 100);
        a.observe(&cert(9, 300)); // worse: kept at 100
        assert_eq!(a.best_coalition_cert.as_ref().unwrap().k, 100);
    }

    #[test]
    fn advertises_coalition_cert_over_truth() {
        let mut a = mk();
        // Give the censor a nonzero own k so smaller honest certs can be
        // adopted internally.
        a.core.votes.push(crate::VoteRec {
            voter: 2,
            round: 0,
            value: 500,
        });
        a.core.ensure_certificate();
        // The censor knows a tiny honest minimum…
        a.core.consider_certificate(cert(2, 1));
        assert_eq!(a.core.min_cert.as_ref().unwrap().owner, 2);
        // …but advertises the (worse) coalition one.
        a.observe(&cert(9, 100));
        let adv = a.advertised().unwrap();
        assert_eq!(adv.owner, 9);
    }

    #[test]
    fn falls_back_to_own_when_no_coalition_cert() {
        let mut a = mk();
        let adv = a.advertised().unwrap();
        assert_eq!(adv.owner, 5, "own certificate is the fallback");
    }
}
