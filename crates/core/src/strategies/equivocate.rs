//! Equivocation: declare different intention lists to different pullers.
//!
//! A coalition member keeps two independently drawn intention lists. The
//! first puller (and every odd-numbered one) receives version A; even
//! ones receive version B. Actual votes follow version A.
//!
//! The paper's machinery pins this down through *first declarations*
//! (`h*` in the Theorem 7 proof): the analysis only credits the earliest
//! declaration made to an honest agent, and Verification makes any
//! divergence lethal — if the eventual winner is targeted by entries
//! where A and B differ, the B-holding verifiers see votes that do not
//! match their ledgers and fail the protocol. The deviator cannot even
//! tell which version a given verifier holds.

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::{IntentEntry, IntentList, Msg};
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;

/// The equivocation strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Equivocate;

impl Strategy for Equivocate {
    fn name(&self) -> &'static str {
        "equivocate"
    }

    fn description(&self) -> &'static str {
        "answer different intention lists to different pullers (caught via first-declaration binding)"
    }

    fn build(&self, mut core: ProtocolCore, _coalition: Coalition) -> AgentSlot {
        // Version A: the core's own list (votes follow it).
        // Version B: an independent draw from the same distribution.
        let m = core.params.m;
        let n = core.params.n;
        let version_b: IntentList = (0..core.params.q)
            .map(|_| IntentEntry {
                value: core.rng.below(m),
                target: core.rng.index(n) as AgentId,
            })
            .collect::<Vec<_>>()
            .into();
        AgentSlot::Equivocate(EquivocatorAgent {
            core,
            version_b,
            pulls_seen: 0,
        })
    }
}

/// The equivocating agent: version A to odd pullers, B to even ones.
pub struct EquivocatorAgent {
    core: ProtocolCore,
    version_b: IntentList,
    pulls_seen: usize,
}

impl Agent<Msg> for EquivocatorAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        self.core.act_honest(ctx)
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        if matches!(query, Msg::QIntent) {
            self.pulls_seen += 1;
            if self.pulls_seen.is_multiple_of(2) {
                return Some(Msg::Intents(self.version_b.clone()));
            }
            return Some(Msg::Intents(self.core.intents.clone()));
        }
        self.core.on_pull_honest(from, query, ctx)
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        self.core.on_push_honest(from, msg, ctx)
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        self.core.on_reply_honest(from, reply, ctx)
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for EquivocatorAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("equivocate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use gossip_net::topology::Topology;
    use crate::params::Params;

    fn extract(reply: Option<Msg>) -> IntentList {
        match reply {
            Some(Msg::Intents(l)) => l,
            other => panic!("expected intents, got {other:?}"),
        }
    }

    #[test]
    fn alternates_between_two_versions() {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            1,
            params,
            params.sync_schedule(),
            0,
            DetRng::seeded(4, 1),
        );
        let mut agent = Equivocate.build(core, new_coalition(vec![1], 0));
        let topo = Topology::complete(32);
        let ctx = RoundCtx {
            round: 0,
            topology: &topo,
        };
        let first = extract(agent.on_pull(3, &Msg::QIntent, &ctx));
        let second = extract(agent.on_pull(4, &Msg::QIntent, &ctx));
        let third = extract(agent.on_pull(5, &Msg::QIntent, &ctx));
        assert_ne!(first.to_vec(), second.to_vec(), "A and B must differ");
        assert_eq!(first.to_vec(), third.to_vec(), "odd pulls get version A");
    }

    #[test]
    fn both_versions_are_plausible() {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            1,
            params,
            params.sync_schedule(),
            0,
            DetRng::seeded(4, 1),
        );
        let agent_box = Equivocate.build(core, new_coalition(vec![1], 0));
        let c = agent_box.core();
        assert_eq!(c.intents.len(), params.q);
        // Version A (core) passes the same plausibility test honest
        // verifiers apply.
        assert!(c.intents_plausible(&c.intents));
    }
}
