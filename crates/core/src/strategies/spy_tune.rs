//! Spy-and-tune: the adaptive commitment attack of Definition 5(3).
//!
//! The strongest information-based attack the model allows. During the
//! Commitment phase each coalition member:
//!
//! 1. **spies** — spends its pulls harvesting honest intention lists,
//!    accumulating (into the shared blackboard) the sum of all *known*
//!    votes addressed to the coalition leader;
//! 2. **delays** — keeps its own intention list undeclared for as long as
//!    possible (a declaration binds; silence would get it marked faulty,
//!    which backfires in Verification);
//! 3. **tunes** — at the moment of its first incoming pull (or at the
//!    start of Voting if nobody asked), finalizes an intention list whose
//!    every entry targets the leader, with the last value chosen so that
//!
//!    `known_honest_sum + planned_coalition_sum ≡ 0 (mod m)`.
//!
//! If the coalition knew *every* vote addressed to the leader this would
//! pin `k_leader = 0` — an unbeatable minimum that passes all checks. The
//! paper's Lemma 6(3) says exactly why it cannot: w.h.p. at least one
//! honest agent outside the spied set `M` votes for the leader, and by
//! deferred decision that single unknown uniform summand keeps `k_leader`
//! uniform on `[m]`. Expected measurement: win rate `≈ 1/|A|` per member,
//! flat in `t` until `t` approaches `n` itself.

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::{IntentEntry, IntentList, Msg};
use crate::params::Phase;
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;

/// The spy-and-tune strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct SpyAndTune;

impl Strategy for SpyAndTune {
    fn name(&self) -> &'static str {
        "spy-tune"
    }

    fn description(&self) -> &'static str {
        "harvest honest intentions, then tune own votes to drive the leader's k toward 0"
    }

    fn build(&self, core: ProtocolCore, coalition: Coalition) -> AgentSlot {
        AgentSlot::SpyTune(SpyAgent {
            core,
            coalition,
            declared: false,
            spy_cursor: 0,
        })
    }
}

/// The spy-and-tune agent (see module docs).
pub struct SpyAgent {
    core: ProtocolCore,
    coalition: Coalition,
    /// Whether our intention list has been finalized (bound).
    declared: bool,
    /// Round-robin cursor over spy targets.
    spy_cursor: usize,
}

impl SpyAgent {
    /// Finalize (and bind) the tuned intention list. Idempotent.
    fn finalize_intents(&mut self) {
        if self.declared {
            return;
        }
        let m = self.core.params.m;
        let q = self.core.params.q;
        let leader = self.coalition.leader;
        let mut intel = self.coalition.intel();
        // Our q votes all target the leader. The first q-1 carry random
        // values; the last balances everything known so far toward 0.
        let mut entries: Vec<IntentEntry> = (0..q - 1)
            .map(|_| IntentEntry {
                value: self.core.rng.below(m),
                target: leader,
            })
            .collect();
        let own_partial: u64 = entries.iter().fold(0, |acc, e| (acc + e.value) % m);
        let known = (intel.known_sum_for_leader + intel.planned_tuned_votes) % m;
        let balance = (m - (known + own_partial) % m) % m;
        entries.push(IntentEntry {
            value: balance,
            target: leader,
        });
        let total: u64 = entries.iter().fold(0, |acc, e| (acc + e.value) % m);
        intel.planned_tuned_votes = (intel.planned_tuned_votes + total) % m;
        self.core.intents = entries.into();
        self.declared = true;
    }

    /// Record a harvested intention list into the shared blackboard.
    fn harvest(&mut self, owner: AgentId, list: &IntentList) {
        if self.coalition.contains(owner) {
            return; // our own plans are tracked separately
        }
        let m = self.core.params.m;
        let leader = self.coalition.leader;
        let mut intel = self.coalition.intel();
        if intel.learned_intents.iter().any(|(o, _)| *o == owner) {
            return; // already harvested — avoid double counting
        }
        let contribution: u64 = list
            .iter()
            .filter(|e| e.target == leader)
            .fold(0, |acc, e| (acc + e.value) % m);
        intel.known_sum_for_leader = (intel.known_sum_for_leader + contribution) % m;
        intel.coverage += 1;
        intel.learned_intents.push((owner, list.clone()));
    }

    /// Next spy target: sweep all non-member ids round-robin, starting
    /// from a per-agent offset so members cover different ranges.
    fn next_spy_target(&mut self, n: usize) -> AgentId {
        loop {
            let idx =
                (self.core.id as usize + 1 + self.spy_cursor * 131) % n;
            self.spy_cursor += 1;
            let candidate = idx as AgentId;
            if !self.coalition.contains(candidate) || self.spy_cursor > 4 * n {
                return candidate;
            }
        }
    }
}

impl Agent<Msg> for SpyAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            Phase::Commitment => {
                // Spy instead of sampling uniformly. (Both are legal pull
                // patterns; honest agents cannot tell.)
                let target = self.next_spy_target(ctx.n());
                Some(Op::pull(target, Msg::QIntent))
            }
            Phase::Voting => {
                self.finalize_intents(); // bind at the latest possible moment
                self.core.act_honest(ctx)
            }
            // From Find-Min on: fully honest (the attack is already done).
            _ => self.core.act_honest(ctx),
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        if matches!(query, Msg::QIntent) {
            // A pull binds us: finalize now, then answer consistently.
            self.finalize_intents();
        }
        self.core.on_pull_honest(from, query, ctx)
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        self.core.on_push_honest(from, msg, ctx)
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        if self.core.phase(ctx.round) == Phase::Commitment {
            if let Some(Msg::Intents(list)) = &reply {
                if self.core.intents_plausible(list) {
                    self.harvest(from, list);
                }
            }
            // Also keep the honest ledger (deviators verify too — they
            // prefer a consensus they might win over a failure).
            self.core.on_reply_honest(from, reply, ctx);
        } else {
            self.core.on_reply_honest(from, reply, ctx);
        }
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for SpyAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("spy-tune")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use crate::params::Params;

    fn mk_spy(id: AgentId, members: Vec<AgentId>) -> SpyAgent {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            id,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(5, id as u64),
        );
        SpyAgent {
            core,
            coalition: new_coalition(members, 1),
            declared: false,
            spy_cursor: 0,
        }
    }

    #[test]
    fn tuned_intents_sum_to_minus_known(
    ) {
        let mut spy = mk_spy(3, vec![3, 8]);
        spy.coalition.intel().known_sum_for_leader = 1000;
        spy.finalize_intents();
        let m = spy.core.params.m;
        let own: u64 = spy.core.intents.iter().fold(0, |a, e| (a + e.value) % m);
        assert_eq!((1000 + own) % m, 0, "known + own ≡ 0 (mod m)");
        assert!(spy.core.intents.iter().all(|e| e.target == 3));
    }

    #[test]
    fn two_members_tune_jointly() {
        let coalition = new_coalition(vec![3, 8], 1);
        let params = Params::new(32, 2.0);
        let mk = |id: AgentId| SpyAgent {
            core: ProtocolCore::new(
                id,
                params,
                params.sync_schedule(),
                1,
                DetRng::seeded(5, id as u64),
            ),
            coalition: Coalition::clone(&coalition),
            declared: false,
            spy_cursor: 0,
        };
        let mut a = mk(3);
        let mut b = mk(8);
        coalition.intel().known_sum_for_leader = 777;
        a.finalize_intents();
        b.finalize_intents();
        let m = params.m;
        let sum_a: u64 = a.core.intents.iter().fold(0, |x, e| (x + e.value) % m);
        let sum_b: u64 = b.core.intents.iter().fold(0, |x, e| (x + e.value) % m);
        assert_eq!((777 + sum_a + sum_b) % m, 0, "joint tuning nets to zero");
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut spy = mk_spy(3, vec![3]);
        spy.finalize_intents();
        let first: Vec<_> = spy.core.intents.to_vec();
        spy.finalize_intents();
        assert_eq!(first, spy.core.intents.to_vec());
    }

    #[test]
    fn harvest_ignores_members_and_duplicates() {
        let mut spy = mk_spy(3, vec![3, 8]);
        let list: IntentList = (0..spy.core.params.q)
            .map(|_| IntentEntry {
                value: 10,
                target: 3,
            })
            .collect::<Vec<_>>()
            .into();
        spy.harvest(8, &list); // member: ignored
        assert_eq!(spy.coalition.intel().coverage, 0);
        spy.harvest(5, &list);
        assert_eq!(spy.coalition.intel().coverage, 1);
        let expected = (10 * spy.core.params.q as u64) % spy.core.params.m;
        assert_eq!(
            spy.coalition.intel().known_sum_for_leader,
            expected
        );
        spy.harvest(5, &list); // duplicate: ignored
        assert_eq!(spy.coalition.intel().coverage, 1);
    }

    #[test]
    fn spy_targets_avoid_members() {
        let mut spy = mk_spy(3, vec![3, 8]);
        for _ in 0..50 {
            let t = spy.next_spy_target(32);
            assert_ne!(t, 8, "should not waste pulls on fellow members");
        }
    }

    #[test]
    fn full_knowledge_pins_k_to_zero() {
        // If the coalition harvests EVERY honest vote for the leader, the
        // tuned sum makes k_leader = 0 — demonstrating what Lemma 6(3)
        // must (and does) prevent at scale.
        let mut spy = mk_spy(3, vec![3]);
        let m = spy.core.params.m;
        // Simulate total knowledge: honest votes for leader sum to 5555.
        spy.coalition.intel().known_sum_for_leader = 5555;
        spy.finalize_intents();
        let own: u64 = spy.core.intents.iter().fold(0, |a, e| (a + e.value) % m);
        assert_eq!((5555 + own) % m, 0);
    }
}
