//! Vote-rigging: concentrate all declared votes on the coalition leader.
//!
//! Coalition members replace their uniformly-drawn intention lists with
//! lists whose every entry targets the leader. This is *undetectable* —
//! Verification checks that votes match declarations, not that
//! declarations were drawn uniformly — and it is the cleanest test of
//! Claim 2's deferred-decision argument: the leader's `k` picks up `t·q`
//! coalition-controlled summands plus at least one unknown honest vote
//! (Def. 5(3)), so it remains uniform on `[m]` and the leader's win
//! probability stays `1/|A|`. Expected measurement: neutral, within
//! confidence intervals of the honest arm.

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::{IntentEntry, Msg};
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;

/// The vote-rigging strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct VoteRig;

impl Strategy for VoteRig {
    fn name(&self) -> &'static str {
        "vote-rig"
    }

    fn description(&self) -> &'static str {
        "declare every vote for the coalition leader (undetectable, provably neutral)"
    }

    fn build(&self, mut core: ProtocolCore, coalition: Coalition) -> AgentSlot {
        // Re-draw the intention list: same uniform values, but every
        // target is the leader. Done at construction time — i.e. in the
        // Voting-Intention phase, before any communication.
        let leader = coalition.leader;
        let m = core.params.m;
        core.intents = (0..core.params.q)
            .map(|_| IntentEntry {
                value: core.rng.below(m),
                target: leader,
            })
            .collect::<Vec<_>>()
            .into();
        AgentSlot::VoteRig(VoteRigAgent { core })
    }
}

/// Behaviourally honest agent over a rigged intention list.
pub struct VoteRigAgent {
    core: ProtocolCore,
}

impl Agent<Msg> for VoteRigAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        self.core.act_honest(ctx)
    }
    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        self.core.on_pull_honest(from, query, ctx)
    }
    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        self.core.on_push_honest(from, msg, ctx)
    }
    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        self.core.on_reply_honest(from, reply, ctx)
    }
    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for VoteRigAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator("vote-rig")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use crate::params::Params;

    #[test]
    fn all_intents_target_the_leader() {
        let params = Params::new(64, 2.0);
        let core = ProtocolCore::new(
            9,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(3, 9),
        );
        let coalition = new_coalition(vec![4, 9, 20], 1);
        let agent = VoteRig.build(core, coalition);
        let c = agent.core();
        assert_eq!(c.intents.len(), params.q);
        assert!(c.intents.iter().all(|e| e.target == 4));
        assert!(c.intents.iter().all(|e| e.value < params.m));
    }

    #[test]
    fn rigged_values_are_not_constant() {
        let params = Params::new(64, 3.0);
        let core = ProtocolCore::new(
            9,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(3, 9),
        );
        let agent = VoteRig.build(core, new_coalition(vec![9], 1));
        let values: Vec<u64> = agent.core().intents.iter().map(|e| e.value).collect();
        let first = values[0];
        assert!(
            values.iter().any(|&v| v != first),
            "values should still be random draws"
        );
    }
}
