//! Play-dead: pretend to be a permanently faulty node.
//!
//! The paper highlights this deviation explicitly (§1): "a rational
//! active agent can pretend to be a faulty node in some rounds, and hence
//! the protocol must be robust also against this kind of (potentially
//! profitable) deviations." A member that stays silent during Commitment
//! is marked faulty by every agent that pulls it — those agents pin its
//! votes to zero.
//!
//! Two variants:
//!
//! * **silent** — also abstains from Voting. Externally a perfect crash:
//!   harmless, but the member forfeits all influence while its color
//!   keeps only its proportional chance. Strictly nothing gained.
//! * **voting** — stays "dead" in Commitment but *does* vote. If any of
//!   its votes lands in the eventual winner's `W_min`, every verifier
//!   that marked it faulty sees a vote from a "faulty" agent ⇒
//!   `VoteFromFaulty` ⇒ fail. Pure sabotage risk, no win path.

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::Msg;
use crate::params::Phase;
use crate::strategies::Strategy;
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::ids::AgentId;

/// The play-dead strategy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct PlayDead {
    vote_anyway: bool,
}

impl PlayDead {
    /// Fully silent variant (perfect crash emulation).
    pub fn silent() -> Self {
        PlayDead { vote_anyway: false }
    }

    /// Dead-in-Commitment but votes in Voting (triggers `VoteFromFaulty`).
    pub fn voting() -> Self {
        PlayDead { vote_anyway: true }
    }
}

impl Strategy for PlayDead {
    fn name(&self) -> &'static str {
        if self.vote_anyway {
            "play-dead-voting"
        } else {
            "play-dead-silent"
        }
    }

    fn description(&self) -> &'static str {
        if self.vote_anyway {
            "silent in Commitment but votes anyway (caught as VoteFromFaulty)"
        } else {
            "perfect crash emulation: silent in Commitment, abstains from Voting"
        }
    }

    fn build(&self, core: ProtocolCore, _coalition: Coalition) -> AgentSlot {
        AgentSlot::PlayDead(DeadAgent {
            core,
            vote_anyway: self.vote_anyway,
            name: self.name(),
        })
    }
}

/// The play-dead agent (silent or voting variant).
pub struct DeadAgent {
    core: ProtocolCore,
    vote_anyway: bool,
    name: &'static str,
}

impl Agent<Msg> for DeadAgent {
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<Msg>> {
        match self.core.phase(ctx.round) {
            // Stays quiet in Commitment (gathers nothing, asks nothing —
            // a faulty node would not pull either).
            Phase::Commitment => None,
            Phase::Voting => {
                if self.vote_anyway {
                    self.core.act_honest(ctx)
                } else {
                    None
                }
            }
            // Rejoins the protocol from Find-Min on: it wants to know the
            // outcome, and participating there is indistinguishable from
            // having been slow.
            _ => self.core.act_honest(ctx),
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &Msg, ctx: &RoundCtx) -> Option<Msg> {
        match (self.core.phase(ctx.round), query) {
            // The defining move: never answer intention pulls.
            (_, Msg::QIntent) => None,
            _ => self.core.on_pull_honest(from, query, ctx),
        }
    }

    fn on_push(&mut self, from: AgentId, msg: &Msg, ctx: &RoundCtx) {
        self.core.on_push_honest(from, msg, ctx)
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<Msg>, ctx: &RoundCtx) {
        self.core.on_reply_honest(from, reply, ctx)
    }

    fn finalize(&mut self, _ctx: &RoundCtx) {
        self.core.finalize_honest();
    }
}

impl ConsensusAgent for DeadAgent {
    fn core(&self) -> &ProtocolCore {
        &self.core
    }
    fn role(&self) -> Role {
        Role::Deviator(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::new_coalition;
    use gossip_net::rng::DetRng;
    use gossip_net::topology::Topology;
    use crate::params::Params;

    fn mk(variant: PlayDead) -> crate::agent_plane::AgentSlot {
        let params = Params::new(32, 2.0);
        let core = ProtocolCore::new(
            2,
            params,
            params.sync_schedule(),
            1,
            DetRng::seeded(8, 2),
        );
        variant.build(core, new_coalition(vec![2], 1))
    }

    #[test]
    fn never_answers_intent_pulls() {
        let mut a = mk(PlayDead::voting());
        let topo = Topology::complete(32);
        let ctx = RoundCtx {
            round: 0,
            topology: &topo,
        };
        assert!(a.on_pull(5, &Msg::QIntent, &ctx).is_none());
    }

    #[test]
    fn silent_variant_never_votes() {
        let mut a = mk(PlayDead::silent());
        let topo = Topology::complete(32);
        let q = Params::new(32, 2.0).q;
        for r in 0..2 * q {
            let ctx = RoundCtx {
                round: r,
                topology: &topo,
            };
            assert!(
                a.act(&ctx).is_none(),
                "silent agent acted in round {r}"
            );
        }
    }

    #[test]
    fn voting_variant_votes() {
        let mut a = mk(PlayDead::voting());
        let topo = Topology::complete(32);
        let q = Params::new(32, 2.0).q;
        let ctx = RoundCtx {
            round: q,
            topology: &topo,
        };
        match a.act(&ctx) {
            Some(Op::Push {
                msg: Msg::Vote { .. },
                ..
            }) => {}
            other => panic!("expected a vote push, got {other:?}"),
        }
    }

    #[test]
    fn rejoins_find_min() {
        let mut a = mk(PlayDead::silent());
        let topo = Topology::complete(32);
        let q = Params::new(32, 2.0).q;
        let ctx = RoundCtx {
            round: 2 * q,
            topology: &topo,
        };
        assert!(matches!(
            a.act(&ctx),
            Some(Op::Pull {
                query: Msg::QMinCert,
                ..
            })
        ));
    }
}
