//! The deviation-strategy suite.
//!
//! Theorem 7 quantifies over *every* restricted protocol `P'_C`; no finite
//! suite can cover them all, but the proof's case analysis identifies the
//! attack surfaces, and this suite implements the strongest concrete
//! attack against each one:
//!
//! | strategy | attack surface | expected outcome (per the proofs) |
//! |---|---|---|
//! | [`forge_cert::ForgeCert`] | lie about `k` / fabricate `W` in Find-Min | caught by Verification (`BadSum` / ledger) ⇒ fail, no gain |
//! | [`vote_rig::VoteRig`] | choose intentions non-randomly | undetectable but *neutral*: `k` stays uniform (Claim 2) |
//! | [`spy_tune::SpyAndTune`] | adaptive commitment (the set `M` of Def. 5(3)) | one unknown honest vote keeps `k_leader` uniform ⇒ no gain |
//! | [`play_dead::PlayDead`] | pretend to be a faulty node (§1) | votes from "faulty" agents fail Verification ⇒ sabotage only |
//! | [`equivocate::Equivocate`] | different declarations to different pullers | first-declaration binding + Coherence ⇒ fail, no gain |
//! | [`suppress_min::SuppressMin`] | censor the true minimum during Find-Min | honest pull-spreading routes around `o(n/log n)` censors |
//! | [`spite_abort::SpiteAbort`] | force `⊥` when losing | turns losses (0) into failures (−χ): weakly worse |
//!
//! Every strategy implements [`Strategy`]: a factory that wraps a
//! [`ProtocolCore`] (deviators still carry full protocol state — they must
//! produce plausible traffic) plus the shared [`Coalition`] blackboard.

pub mod equivocate;
pub mod forge_cert;
pub mod play_dead;
pub mod spite_abort;
pub mod spy_tune;
pub mod suppress_min;
pub mod vote_rig;

use crate::agent_plane::AgentSlot;
use crate::coalition::Coalition;
use crate::engine::ProtocolCore;

/// A named coalition strategy: builds the deviating agent for each member.
///
/// `build` returns an [`AgentSlot`] — every built-in strategy maps onto
/// its dedicated enum variant, so coalition agents ride the same
/// jump-table dispatch as honest ones. Out-of-tree strategies return
/// [`AgentSlot::Custom`] (the boxed escape hatch).
pub trait Strategy: std::fmt::Debug + Send + Sync {
    /// Stable identifier used in tables and reports.
    fn name(&self) -> &'static str;

    /// One-line description of the attack for reports.
    fn description(&self) -> &'static str;

    /// Build the agent for coalition member `core.id`.
    fn build(&self, core: ProtocolCore, coalition: Coalition) -> AgentSlot;
}

/// The standard attack suite (one instance of every concrete attack),
/// in report order.
pub fn standard_attacks() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(forge_cert::ForgeCert::zero_k()),
        Box::new(forge_cert::ForgeCert::tuned_vote()),
        Box::new(forge_cert::ForgeCert::drop_votes()),
        Box::new(vote_rig::VoteRig),
        Box::new(spy_tune::SpyAndTune),
        Box::new(play_dead::PlayDead::silent()),
        Box::new(play_dead::PlayDead::voting()),
        Box::new(equivocate::Equivocate),
        Box::new(suppress_min::SuppressMin),
        Box::new(spite_abort::SpiteAbort),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_distinct_attacks() {
        let attacks = standard_attacks();
        assert_eq!(attacks.len(), 10);
        let mut names: Vec<_> = attacks.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "names must be unique");
    }

    #[test]
    fn descriptions_are_nonempty() {
        for a in standard_attacks() {
            assert!(!a.description().is_empty(), "{} lacks description", a.name());
        }
    }
}
