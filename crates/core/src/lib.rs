#![warn(missing_docs)]
//! # rfc-core — the Rational Fair Consensus protocol
//!
//! Implementation of protocol `P` from *Rational Fair Consensus in the
//! GOSSIP Model* (Clementi, Gualà, Proietti, Scornavacca; IPDPS 2017).
//!
//! Starting from any initial color configuration on the complete graph,
//! `P` reaches **fair consensus** — the probability that color `c` wins
//! equals the fraction of active agents initially supporting `c` — within
//! `O(log n)` rounds using messages of `O(log² n)` bits, w.h.p.; it
//! tolerates up to `αn` worst-case permanent faults (any constant
//! `α < 1`) and is a *whp t-strong equilibrium* against rational
//! coalitions of size `t = o(n / log n)`.
//!
//! ## Protocol structure (Algorithm 1)
//!
//! ```text
//! Voting-Intention  (local)  draw H_u = q pairs (h ~ U[m], z ~ U[n]), m = n³
//! Commitment        (q pull) collect others' H_v into the ledger L_u
//! Voting            (q push) send declared votes; accumulate W_u, k_u = ΣW mod m
//! Find-Min          (q pull) rumor-spread the minimum-k certificate
//! Coherence         (q push) cross-check certificates; mismatch ⇒ fail
//! Verification      (local)  recompute k, match W_min against L_u; accept color
//! ```
//!
//! The module map mirrors those phases: [`params`] (q, m, schedules),
//! [`msg`] (wire messages), [`certificate`] (`CE_u`), [`ledger`] (`L_u`),
//! [`engine`] (the per-agent state machine), [`runner`] (whole-run
//! orchestration and the reusable [`runner::TrialArena`]), [`audit`]
//! (good-execution checks, Definition 2), [`election`] (the
//! leader-election special case) and [`asynchronous`] (the
//! sequential-GOSSIP extension from the Conclusions). Around them sits
//! the agent plane: [`agent_plane`] (the monomorphic [`AgentSlot`] enum
//! every simulation dispatches through), [`coalition`] (the deviators'
//! shared blackboard) and [`strategies`] (the deviation suite — honest
//! and deviating agents share one jump table).
//!
//! ## Example
//!
//! ```
//! use rfc_core::prelude::*;
//!
//! let cfg = RunConfig::builder(64).colors(vec![40, 24]).gamma(3.0).build();
//! let report = run_protocol(&cfg, 7);
//! assert!(report.outcome.is_consensus());
//! // The winning color is always a color initially supported by an
//! // active agent (validity), and over many seeds color 0 wins ≈ 40/64
//! // of the time (fairness — see experiment E4).
//! ```

pub mod agent_plane;
pub mod asynchronous;
pub mod audit;
pub mod certificate;
pub mod checkpoint;
pub mod coalition;
pub mod codec;
pub mod election;
pub mod engine;
pub mod instances;
pub mod ledger;
pub mod msg;
pub mod outcome;
pub mod params;
pub mod runner;
pub mod sharing;
pub mod strategies;

pub use agent_plane::AgentSlot;
pub use asynchronous::{run_protocol_async, run_protocol_events, DELAY_STREAM, SCHEDULER_STREAM};
pub use certificate::{CertData, Certificate, VoteRec};
pub use checkpoint::{
    checkpoint_network, restore_network, resume_protocol, run_protocol_with_checkpoints,
    CheckpointError,
};
pub use coalition::{new_coalition, select_members, Coalition, CoalitionSelection};
pub use codec::{
    decode_frame, decode_msg, encode_frame, encode_msg, encode_msg_frame, encoded_msg_len,
    CodecError, FRAME_MAGIC, FRAME_VERSION,
};
pub use engine::{ConsensusAgent, HonestAgent, ProtocolCore, Role, VerifyFailure};
pub use instances::{
    run_plane, InstanceKind, InstancePlan, InstanceSpec, MuxAgent, PlaneReport, Priority,
};
pub use ledger::{ConsistencyError, Declaration, Ledger};
pub use msg::{Batch, BatchPart, IntentEntry, IntentList, Msg, INSTANCE_TAG_BITS};
pub use outcome::{combine_decisions, utility, Decision, Outcome};
pub use params::{Params, Phase, PhaseSchedule, ScheduleError};
pub use runner::{
    build_network, build_network_slots, collect_report, drive_network, honest_slot_factory,
    run_protocol, run_protocol_boxed, ColorSpec, RunConfig, RunConfigBuilder, RunReport,
    SlotFactory, TopologySpec, TrialArena,
};
pub use strategies::{standard_attacks, Strategy};

// The dynamic-adversity vocabulary (scenario scripts, loss schedules,
// partition cuts) is defined by the network layer; re-export it so
// experiment code can build dynamic `RunConfig`s from one crate.
pub use gossip_net::dynamics::{
    FaultState, LossSchedule, PartitionCut, ScenarioEvent, ScenarioScript,
};
// The staged engine's loss-draw discipline selector lives next to the
// network's RNG plumbing; re-exported so sharded `RunConfig`s build
// from one crate.
pub use gossip_net::rng::RngDiscipline;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::agent_plane::AgentSlot;
    pub use crate::asynchronous::run_protocol_async;
    pub use crate::runner::{TrialArena, run_protocol_boxed};
    pub use crate::audit::GoodExecutionReport;
    pub use crate::certificate::{CertData, Certificate, VoteRec};
    pub use crate::election::{elect_leader, election_config, ElectionResult};
    pub use crate::engine::{ConsensusAgent, HonestAgent, ProtocolCore, Role, VerifyFailure};
    pub use crate::msg::{IntentEntry, Msg};
    pub use crate::outcome::{utility, Decision, Outcome};
    pub use crate::params::{Params, Phase};
    pub use crate::runner::{run_protocol, ColorSpec, RunConfig, RunReport, TopologySpec};
    pub use gossip_net::dynamics::{LossSchedule, PartitionCut, ScenarioEvent, ScenarioScript};
    pub use gossip_net::rng::RngDiscipline;
}
