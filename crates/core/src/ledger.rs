//! The commitment ledger `L_u`.
//!
//! During the Commitment phase agent `u` pulls vote-intention lists from
//! random agents and stores what it learned. For every contacted agent
//! `v` the ledger holds one [`Declaration`]:
//!
//! * `Intents(H_v)` — the *first* complete list `v` sent back, tagged with
//!   the round it arrived (the paper's analysis keys the "legitimate
//!   winner" off first declarations, so equivocators are pinned to their
//!   earliest answer);
//! * `Faulty` — `v` did not answer, or answered with garbage. The paper
//!   (footnote 4) then fixes `h_{v,j} = 0` for all `j`, i.e. `u` expects
//!   **no** votes from `v` anywhere. A later non-answer *downgrades* an
//!   earlier good declaration: a rational agent that answers once and then
//!   plays dead is remembered as faulty.
//!
//! Verification (paper footnote 5) checks the winner's vote set `W_min`
//! against this ledger: for each `v` in the ledger, the votes `W_min`
//! attributes to `v` must be *exactly* the votes `v` declared for the
//! winner — same values, same intention indices, nothing missing, nothing
//! extra — and `Faulty` agents must contribute nothing.

use crate::certificate::CertData;
use crate::msg::IntentList;
use gossip_net::ids::AgentId;

/// What agent `u` knows about one contacted agent.
#[derive(Debug, Clone, PartialEq)]
pub enum Declaration {
    /// `v` never answered (or answered garbage): all of `v`'s votes are
    /// pinned to 0, i.e. `v` must not appear in any accepted vote set.
    Faulty,
    /// `v`'s first declared intention list.
    Intents(IntentList),
}

/// One ledger row: contacted agent, arrival round of the (first)
/// declaration, and the declaration itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The contacted agent.
    pub agent: AgentId,
    /// Global round at which this declaration was recorded.
    pub round: u32,
    /// What we learned.
    pub decl: Declaration,
}

/// The collected vote intentions `L_u` of one agent.
///
/// Backed by a plain vector: the ledger holds at most `q = O(log n)`
/// entries, so linear scans beat any hash structure.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

/// Outcome of checking a certificate's vote set against a ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyError {
    /// A ledger agent declared a vote for the winner that `W_min` lacks,
    /// or `W_min` contains a vote that differs from the declaration.
    VoteMismatch {
        /// The voter whose votes disagree.
        voter: AgentId,
    },
    /// `W_min` contains votes from an agent the verifier marked faulty.
    VoteFromFaulty {
        /// The allegedly faulty voter.
        voter: AgentId,
    },
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty ledger with room for `cap` entries. The ledger gains at
    /// most one entry per Commitment-phase round (plus one slot for a
    /// late `mark_faulty` straggler), so reserving `q + 1` up front
    /// keeps steady-state rounds entirely off the allocator — growth
    /// would otherwise double mid-phase, once per agent.
    pub fn with_capacity(cap: usize) -> Self {
        Ledger {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Record `v`'s first intention declaration (later declarations are
    /// ignored — first-declaration semantics). Returns whether the entry
    /// was newly inserted.
    pub fn declare(&mut self, v: AgentId, round: u32, intents: IntentList) -> bool {
        if self.find(v).is_some() {
            return false;
        }
        self.entries.push(LedgerEntry {
            agent: v,
            round,
            decl: Declaration::Intents(intents),
        });
        true
    }

    /// Mark `v` faulty. Overrides any earlier declaration (an agent that
    /// stops answering is treated as faulty from then on).
    pub fn mark_faulty(&mut self, v: AgentId, round: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.agent == v) {
            e.decl = Declaration::Faulty;
            e.round = e.round.min(round);
        } else {
            self.entries.push(LedgerEntry {
                agent: v,
                round,
                decl: Declaration::Faulty,
            });
        }
    }

    /// The declaration recorded for `v`, if any.
    pub fn find(&self, v: AgentId) -> Option<&LedgerEntry> {
        self.entries.iter().find(|e| e.agent == v)
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Number of contacted agents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no agent was contacted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verification core (paper footnote 5): check the winner certificate's
    /// vote set against every declaration in this ledger.
    ///
    /// For each ledger agent `v`:
    /// * `Faulty` ⇒ no vote in `cert.votes` may name `v` as voter;
    /// * `Intents(H_v)` ⇒ the votes `cert.votes` attributes to `v` must be
    ///   exactly `{(i, h) | H_v[i] = (h, winner)}` — matching intention
    ///   indices and values, with no omissions and no extras.
    pub fn check_certificate(&self, cert: &CertData) -> Result<(), ConsistencyError> {
        // Honest certificates keep `votes` in canonical (voter, round)
        // order (CertData::build sorts), so the votes of one voter form
        // a contiguous run findable by binary search over the flat voter
        // lane. Verify sortedness once; adversarially unsorted
        // certificates fall back to the linear scan. Verdicts are
        // identical on both paths.
        let votes = &cert.votes;
        let voters = votes.voters();
        let sorted = votes.is_canonically_sorted();
        for entry in &self.entries {
            let v = entry.agent;
            let (lo, hi) = if sorted {
                let lo = voters.partition_point(|&r| r < v);
                let hi = lo + voters[lo..].partition_point(|&r| r == v);
                (lo, hi)
            } else {
                (0, 0) // sentinel; unsorted path re-filters below
            };
            let actual_count = if sorted {
                hi - lo
            } else {
                cert.votes_from(v).count()
            };
            match &entry.decl {
                Declaration::Faulty => {
                    if actual_count > 0 {
                        return Err(ConsistencyError::VoteFromFaulty { voter: v });
                    }
                }
                Declaration::Intents(h_v) => {
                    // Fast path: most declarers sent *no* vote to the
                    // winner (targets are uniform over [n]) and most
                    // certificates attribute no vote to a given v — when
                    // both sides are empty the entry is consistent
                    // without building or sorting anything.
                    let expected_count = h_v.votes_for(cert.owner) as usize;
                    if expected_count != actual_count {
                        return Err(ConsistencyError::VoteMismatch { voter: v });
                    }
                    if expected_count == 0 {
                        continue;
                    }
                    // Expected: declared votes of v addressed to the winner.
                    let mut expected: Vec<(u16, u64)> = h_v
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.target == cert.owner)
                        .map(|(i, e)| (i as u16, e.value))
                        .collect();
                    // Actual: votes the certificate attributes to v.
                    let mut actual: Vec<(u16, u64)> = if sorted {
                        votes.rounds()[lo..hi]
                            .iter()
                            .zip(&votes.values()[lo..hi])
                            .map(|(&r, &val)| (r, val))
                            .collect()
                    } else {
                        cert.votes_from(v).map(|r| (r.round, r.value)).collect()
                    };
                    expected.sort_unstable();
                    actual.sort_unstable();
                    if expected != actual {
                        return Err(ConsistencyError::VoteMismatch { voter: v });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::VoteRec;
    use crate::msg::IntentEntry;

    fn intents(entries: &[(u64, AgentId)]) -> IntentList {
        entries
            .iter()
            .map(|&(value, target)| IntentEntry { value, target })
            .collect::<Vec<_>>()
            .into()
    }

    fn cert_with(owner: AgentId, votes: Vec<VoteRec>) -> CertData {
        CertData::build(owner, 0, votes, 1 << 40)
    }

    #[test]
    fn declare_keeps_first_only() {
        let mut l = Ledger::new();
        assert!(l.declare(3, 1, intents(&[(10, 0)])));
        assert!(!l.declare(3, 2, intents(&[(99, 0)])));
        match &l.find(3).unwrap().decl {
            Declaration::Intents(h) => assert_eq!(h[0].value, 10),
            _ => panic!("expected intents"),
        }
        assert_eq!(l.find(3).unwrap().round, 1);
    }

    #[test]
    fn mark_faulty_overrides_declaration() {
        let mut l = Ledger::new();
        l.declare(3, 1, intents(&[(10, 0)]));
        l.mark_faulty(3, 4);
        assert_eq!(l.find(3).unwrap().decl, Declaration::Faulty);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn consistent_certificate_passes() {
        // v=5 declared votes (7 -> agent 2) at index 0 and (9 -> agent 1) at 1.
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2), (9, 1)]));
        // Winner is agent 2; W contains exactly v's index-0 vote.
        let cert = cert_with(
            2,
            vec![VoteRec {
                voter: 5,
                round: 0,
                value: 7,
            }],
        );
        assert_eq!(l.check_certificate(&cert), Ok(()));
    }

    #[test]
    fn missing_declared_vote_is_caught() {
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2)]));
        let cert = cert_with(2, vec![]); // winner 2, but v5's vote absent
        assert_eq!(
            l.check_certificate(&cert),
            Err(ConsistencyError::VoteMismatch { voter: 5 })
        );
    }

    #[test]
    fn altered_vote_value_is_caught() {
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2)]));
        let cert = cert_with(
            2,
            vec![VoteRec {
                voter: 5,
                round: 0,
                value: 8,
            }],
        );
        assert!(l.check_certificate(&cert).is_err());
    }

    #[test]
    fn fabricated_extra_vote_is_caught() {
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2)]));
        let cert = cert_with(
            2,
            vec![
                VoteRec {
                    voter: 5,
                    round: 0,
                    value: 7,
                },
                VoteRec {
                    voter: 5,
                    round: 1,
                    value: 3,
                }, // never declared
            ],
        );
        assert_eq!(
            l.check_certificate(&cert),
            Err(ConsistencyError::VoteMismatch { voter: 5 })
        );
    }

    #[test]
    fn vote_from_faulty_agent_is_caught() {
        let mut l = Ledger::new();
        l.mark_faulty(5, 0);
        let cert = cert_with(
            2,
            vec![VoteRec {
                voter: 5,
                round: 0,
                value: 7,
            }],
        );
        assert_eq!(
            l.check_certificate(&cert),
            Err(ConsistencyError::VoteFromFaulty { voter: 5 })
        );
    }

    #[test]
    fn votes_from_unknown_agents_are_not_checked() {
        // u never pulled agent 9, so its votes are unverifiable here —
        // the paper relies on *some other* honest agent having pulled 9.
        let l = Ledger::new();
        let cert = cert_with(
            2,
            vec![VoteRec {
                voter: 9,
                round: 0,
                value: 1,
            }],
        );
        assert_eq!(l.check_certificate(&cert), Ok(()));
    }

    #[test]
    fn duplicate_targets_in_declaration_both_required() {
        // v declared two votes for the same winner at different indices.
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2), (8, 2)]));
        let full = cert_with(
            2,
            vec![
                VoteRec {
                    voter: 5,
                    round: 0,
                    value: 7,
                },
                VoteRec {
                    voter: 5,
                    round: 1,
                    value: 8,
                },
            ],
        );
        assert_eq!(l.check_certificate(&full), Ok(()));
        let partial = cert_with(
            2,
            vec![VoteRec {
                voter: 5,
                round: 0,
                value: 7,
            }],
        );
        assert!(l.check_certificate(&partial).is_err());
    }

    #[test]
    fn swapped_indices_are_a_mismatch() {
        // Same values but at the wrong intention indices must fail: the
        // index is part of the declaration.
        let mut l = Ledger::new();
        l.declare(5, 0, intents(&[(7, 2), (8, 2)]));
        let swapped = cert_with(
            2,
            vec![
                VoteRec {
                    voter: 5,
                    round: 1,
                    value: 7,
                },
                VoteRec {
                    voter: 5,
                    round: 0,
                    value: 8,
                },
            ],
        );
        assert!(l.check_certificate(&swapped).is_err());
    }

    #[test]
    fn empty_ledger_accepts_anything() {
        let l = Ledger::new();
        assert!(l.is_empty());
        let cert = cert_with(0, vec![]);
        assert_eq!(l.check_certificate(&cert), Ok(()));
    }

    #[test]
    fn shared_intent_lists_are_cheap() {
        // IntentList is an Shared<[..]>: cloning shares the allocation.
        let list = intents(&[(1, 1), (2, 2)]);
        let clone = list.clone();
        assert!(IntentList::ptr_eq(&list, &clone));
    }
}
